// Table 1: CRLs whose revoked certificates the corresponding OCSP responder
// does NOT report as revoked. Paper rows (Unknown / Good / Revoked):
//   camerfirma 0/7/369, quovadis 0/1/514, startssl 0/1/980,
//   symcd 0/1/28023, twca 0/1/122, globalsign-alphassl 5375/0/0,
//   firmaprofesional 11/0/0.
#include <cstdio>

#include "common.hpp"
#include "measurement/consistency.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Table 1: CRL vs OCSP revocation-status discrepancies",
                      "Table 1 (per responder/CRL pair; counts ~1:10)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  measurement::ConsistencyConfig audit_config;
  audit_config.revoked_population = 7283;
  util::Rng rng(config.seed ^ 0x7ab1eULL);
  measurement::ConsistencyAudit audit(ecosystem, audit_config);
  const measurement::ConsistencyReport report = audit.run(rng);

  std::vector<std::vector<std::string>> rows;
  for (const auto& row : report.table1) {
    rows.push_back({row.ocsp_url, row.crl_url,
                    std::to_string(row.answered_unknown),
                    std::to_string(row.answered_good),
                    std::to_string(row.answered_revoked)});
  }
  std::printf("%s\n",
              util::render_table({"OCSP URL", "CRL", "Unknown", "Good",
                                  "Revoked"},
                                 rows)
                  .c_str());
  std::printf(
      "[paper, 1:10 scale: camerfirma 0/~1/37, quovadis 0/~1/51, startssl "
      "0/~1/98,\n symantec 0/~1/2802, twca 0/~1/12, globalsign ~537/0/0, "
      "firmaprofesional 11/0/0]\n");
  std::printf("%zu CRLs audited; %zu responder/CRL pairs show discrepancies [paper: 1,193 CRLs, 7 pairs]\n",
              report.crls_downloaded, report.table1.size());
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
