// §4 "Status of OCSP Must-Staple": the headline deployment numbers.
// Paper values: 95.4% of valid certificates support OCSP; 29,709 (0.02%)
// carry Must-Staple, 97.3% of them from Let's Encrypt (rest: DFN 716,
// Comodo 73, UserTrust 1); only 100 (0.01%) of Alexa Top-1M certs.
#include <cstdio>
#include <map>

#include "common.hpp"
#include "ct/log.hpp"
#include "measurement/censys.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Section 4: deployment status of OCSP Must-Staple",
                      "paper section 4 (counts/fractions)");

  // A larger population sharpens the rare Must-Staple fractions.
  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.alexa_domains = 500'000;
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  const auto stats = ecosystem.deployment_stats();
  auto pct = [](std::size_t num, std::size_t den) {
    return den ? 100.0 * static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
  };

  std::printf("population (scaled Censys+Alexa): %zu HTTPS certificates\n",
              stats.total_certs);
  std::printf("  with OCSP responder (AIA):      %zu (%.1f%%)   [paper: 95.4%% of valid certs; 91.3%% of Alexa]\n",
              stats.ocsp_certs, pct(stats.ocsp_certs, stats.total_certs));
  std::printf("  with OCSP Must-Staple:          %zu (%.3f%%)  [paper: 29,709 = 0.02%%; Alexa: 100 = 0.01%%]\n",
              stats.must_staple_certs,
              pct(stats.must_staple_certs, stats.total_certs));
  std::printf("  Must-Staple from Let's Encrypt: %zu (%.1f%%)   [paper: 28,919 = 97.3%%]\n\n",
              stats.must_staple_lets_encrypt,
              pct(stats.must_staple_lets_encrypt, stats.must_staple_certs));

  // Must-Staple issuer breakdown (paper: LE 28,919 / DFN 716 / Comodo 73 /
  // UserTrust 1).
  std::map<std::string, std::size_t> by_ca;
  for (const auto& meta : ecosystem.domains()) {
    if (meta.must_staple) {
      ++by_ca[ecosystem.ca_shares()[meta.ca].name];
    }
  }
  std::printf("Must-Staple certificates by issuing CA:\n");
  for (const auto& [name, count] : by_ca) {
    std::printf("  %-18s %zu\n", name.c_str(), count);
  }

  // The corpus pipeline itself (paper §4 methodology): scan + CT logs,
  // deduplicated, validated against three root stores (footnote 7),
  // demonstrated over the instantiated certificate set.
  {
    util::Rng rng(config.seed ^ 0xce4575);
    ct::CtLog log_a("sim-argon-2018", rng);
    ct::CtLog log_b("sim-nessie-2018", rng);
    measurement::RootStoreTriple stores;
    for (std::size_t i = 0; i < ecosystem.authority_count(); ++i) {
      const auto& root = ecosystem.authority(i).root_cert();
      // Partial overlap: NSS carries everything, Apple ~90%, Microsoft ~85%.
      stores.nss.add(root);
      if (rng.chance(0.90)) stores.apple.add(root);
      if (rng.chance(0.85)) stores.microsoft.add(root);
    }
    measurement::CensysPipeline pipeline(std::move(stores));
    const util::SimTime when = config.campaign_start;
    for (const auto& target : ecosystem.scan_targets()) {
      auto& authority = ecosystem.authority(target.ca_index);
      // Every cert is CT-logged (post-2018 norm); ~70% also seen by scan.
      (rng.chance(0.5) ? log_a : log_b).submit(target.cert, when);
      if (rng.chance(0.70)) {
        pipeline.ingest_scan(authority.chain_for(target.cert));
      }
    }
    // CT ingestion verifies the STH and every entry's inclusion proof.
    pipeline.ingest_log(log_a, when,
                        {ecosystem.authority(0).intermediate_cert()});
    pipeline.ingest_log(log_b, when,
                        {ecosystem.authority(0).intermediate_cert()});
    const auto snap = pipeline.snapshot(when);
    std::printf(
        "\nCensys-style corpus pipeline (scan + 2 CT logs, STH/inclusion "
        "verified):\n"
        "  observations %zu -> unique %zu (scan-only %zu, ct-only %zu, both "
        "%zu)\n"
        "  dropped CT entries: %zu\n",
        snap.observations, snap.unique_certificates, snap.from_scan_only,
        snap.from_ct_only, snap.from_both, snap.dropped_ct_entries);
  }
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
