// Figure 9: CDF (over responders) of T_received - thisUpdate. Paper shape:
// 85 (17.2%) responders return responses with NO margin (thisUpdate equals
// the receipt instant); 15 (3%) even return FUTURE thisUpdate values that a
// well-clocked client must reject as not-yet-valid; the curves coincide
// across vantage points (NTP-synchronized clients).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 9: thisUpdate margin at receipt (CDF)",
                      "Fig 9 (T_received - thisUpdate, per responder)");

  measurement::EcosystemConfig config = bench::quality_ecosystem();
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  const util::Cdf cdf = scanner.cdf_margin(net::Region::kVirginia);
  util::ChartOptions options;
  options.title = "CDF: T_received - thisUpdate, seconds (Virginia)";
  options.x_label = "margin (s)";
  options.y_label = "CDF";
  std::printf("%s\n", util::render_cdf(cdf, options).c_str());

  std::printf("measured (paper in brackets):\n");
  std::printf("  zero/near-zero margin (<=1s):   %.1f%%  [17.2%%]\n",
              100.0 * (cdf.fraction_at_most(1.0) - cdf.fraction_at_most(-1.0)));
  std::printf("  FUTURE thisUpdate (negative):   %.1f%%  [3%%]\n",
              100.0 * cdf.fraction_at_most(-1.0));
  std::printf("  median margin:                  %.0f s\n\n", cdf.median());

  std::printf("cross-region consistency (paper: identical curves):\n");
  for (net::Region region : net::all_regions()) {
    const util::Cdf r = scanner.cdf_margin(region);
    std::printf("  %-10s zero-margin %.1f%%, future %.1f%%\n",
                net::to_string(region),
                100.0 * (r.fraction_at_most(1.0) - r.fraction_at_most(-1.0)),
                100.0 * r.fraction_at_most(-1.0));
  }

  std::printf("\nexpired nextUpdate responses observed [paper: none found]:\n");
  std::size_t expired = 0;
  for (std::size_t r = 0; r < scanner.responder_count(); ++r) {
    for (net::Region region : net::all_regions()) {
      expired += scanner.stats(r, region).expired_next_update;
    }
  }
  std::printf("  %zu\n", expired);
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
