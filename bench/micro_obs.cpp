// Microbenchmarks for the obs layer itself: what one instrumented call site
// costs in the hot paths (logger pre-flight and emit, counter/histogram
// updates, span open/close), and — via micro_obs_off.cpp, a TU compiled with
// MUSTAPLE_OBS_OFF — what the same sites cost when the layer is compiled
// out. The disabled path must stay at ~0 ns so instrumentation never taxes
// a bench binary that opts out.
#include <benchmark/benchmark.h>

#include <memory>

#include "micro_obs_sites.hpp"
#include "obs/obs.hpp"

namespace {

using namespace mustaple;

// ------------------------------------------------------------- enabled ----

void BM_LogFilteredOut(benchmark::State& state) {
  obs::Logger logger;
  logger.add_sink(std::make_shared<obs::RingBufferSink>(8));
  logger.set_level(obs::Level::kWarn);
  for (auto _ : state) {
    if (logger.enabled(obs::Level::kDebug)) {
      logger.log(obs::Level::kDebug, "bench", "never emitted");
    }
  }
}
BENCHMARK(BM_LogFilteredOut);

void BM_LogToRingBuffer(benchmark::State& state) {
  obs::Logger logger;
  logger.add_sink(std::make_shared<obs::RingBufferSink>(1024));
  std::int64_t i = 0;
  for (auto _ : state) {
    logger.log(obs::Level::kInfo, "bench", "emitted",
               {obs::field("i", i++)});
  }
}
BENCHMARK(BM_LogToRingBuffer);

void BM_CounterIncCachedRef(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("mustaple_bench_total");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncCachedRef);

void BM_CounterIncByLookup(benchmark::State& state) {
  obs::Registry registry;
  for (auto _ : state) {
    registry.counter("mustaple_bench_total").inc();
  }
}
BENCHMARK(BM_CounterIncByLookup);

void BM_CounterIncLabelledLookup(benchmark::State& state) {
  obs::Registry registry;
  for (auto _ : state) {
    registry.counter("mustaple_bench_errors_total", {{"kind", "dns"}}).inc();
  }
}
BENCHMARK(BM_CounterIncLabelledLookup);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram("mustaple_bench_ms");
  double x = 0.0;
  for (auto _ : state) {
    histogram.observe(x);
    x += 0.37;
    if (x > 2000) x = 0;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanOpenClose(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::Span span("bench", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanOpenClose);

void BM_RenderPrometheus(benchmark::State& state) {
  obs::Registry registry;
  for (int i = 0; i < 50; ++i) {
    registry.counter("mustaple_bench_total",
                     {{"cell", std::to_string(i)}}).inc();
  }
  registry.histogram("mustaple_bench_ms").observe(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.render_prometheus());
  }
}
BENCHMARK(BM_RenderPrometheus);

// --------------------------------------------- compiled out (OBS_OFF TU) --

void BM_DisabledLogSite(benchmark::State& state) {
  std::int64_t i = 0;
  for (auto _ : state) {
    bench_obs::off_log_site(i++);
  }
}
BENCHMARK(BM_DisabledLogSite);

void BM_DisabledCounterSite(benchmark::State& state) {
  for (auto _ : state) {
    bench_obs::off_count_site();
    bench_obs::off_count_labelled_site();
  }
}
BENCHMARK(BM_DisabledCounterSite);

void BM_DisabledHistogramSite(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    bench_obs::off_observe_site(x);
    x += 1.0;
  }
}
BENCHMARK(BM_DisabledHistogramSite);

void BM_DisabledSpanSite(benchmark::State& state) {
  for (auto _ : state) {
    bench_obs::off_span_site();
  }
}
BENCHMARK(BM_DisabledSpanSite);

}  // namespace

BENCHMARK_MAIN();
