// Ablation: quantifying §8 recommendation 1 — "CAs should bolster the
// availability and reliability of their OCSP responders". Runs the same
// two-week scan campaign over three worlds:
//   (a) the measured 2018 world (full fault schedule + pathologies),
//   (b) outages fixed, pathologies kept,
//   (c) everything fixed,
// and reports request failure rate and unusable-response rate for each.
#include <cstdio>

#include "common.hpp"

using namespace mustaple;

namespace {

struct Variant {
  const char* label;
  bool faults;
  bool pathologies;
};

}  // namespace

int main() {
  bench::print_header("Ablation: what if CAs fixed their responders?",
                      "section 8 recommendation 1, quantified");

  const Variant variants[] = {
      {"2018 world (as measured)", true, true},
      {"outages fixed, malformed responses kept", false, true},
      {"everything fixed", false, false},
  };

  bench::Stopwatch watch;
  std::printf("%-44s %10s %12s\n", "world", "failure%", "unusable%");
  for (const Variant& variant : variants) {
    measurement::EcosystemConfig config = bench::paper_ecosystem();
    config.campaign_end = util::make_time(2018, 5, 9);  // two weeks
    config.certs_per_responder = 2;
    config.apply_fault_schedule = variant.faults;
    config.apply_pathologies = variant.pathologies;

    net::EventLoop loop(config.campaign_start - util::Duration::days(1));
    measurement::Ecosystem ecosystem(config, loop);
    measurement::ScanConfig scan;
    scan.interval = util::Duration::hours(6);
    measurement::HourlyScanner scanner(ecosystem, scan);
    scanner.run();

    double failure = 0.0;
    for (net::Region region : net::all_regions()) {
      failure += scanner.failure_rate(region);
    }
    failure /= net::kRegionCount;

    std::size_t responses = 0;
    std::size_t unusable = 0;
    for (const auto& step : scanner.steps()) {
      responses += step.responses_200;
      unusable += step.unparseable + step.serial_mismatch + step.bad_signature;
    }
    std::printf("  %-42s %9.2f%% %11.2f%%\n", variant.label, 100.0 * failure,
                responses ? 100.0 * static_cast<double>(unusable) /
                                static_cast<double>(responses)
                          : 0.0);
  }

  std::printf(
      "\n[reading: the entire §5 readiness gap on the CA side is the fault\n"
      " schedule plus response pathologies — with both fixed, the substrate\n"
      " meets the paper's bar ('OCSP responders would not be a barrier')]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
