// Shared scaffolding for the per-figure/table bench binaries: the standard
// scaled-down "paper campaign" configurations and small printing helpers.
//
// Scale notes (see EXPERIMENTS.md): the paper probes 14,634 certificates
// hourly from 6 vantage points for 4.3 months (~280M lookups). These benches
// keep the full responder population (536), all vantage points, and the
// complete fault schedule, but sample fewer certificates per responder and a
// coarser cadence. Every knob is printed so runs are self-describing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

namespace mustaple::bench {

inline measurement::EcosystemConfig paper_ecosystem(std::uint64_t seed = 2018) {
  measurement::EcosystemConfig config;
  config.seed = seed;
  config.responder_count = 536;      // paper: 536 responders
  config.alexa_domains = 100'000;    // paper: 1M (1:10)
  config.certs_per_responder = 3;    // paper: <=50 (scaled)
  config.campaign_start = util::make_time(2018, 4, 25);
  config.campaign_end = util::make_time(2018, 9, 4);
  return config;
}

/// Quality-figure campaigns (Figs 5-9) need responder-level statistics, not
/// long time series: four weeks at 6-hour cadence gives dozens of samples
/// per responder per vantage point.
inline measurement::EcosystemConfig quality_ecosystem(std::uint64_t seed = 2018) {
  measurement::EcosystemConfig config = paper_ecosystem(seed);
  config.campaign_end = util::make_time(2018, 5, 23);
  return config;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

inline void print_campaign(const measurement::EcosystemConfig& config,
                           const measurement::ScanConfig& scan) {
  std::printf(
      "campaign: %s .. %s | responders=%zu | certs/responder<=%zu | "
      "cadence=%ldh | seed=%llu\n\n",
      util::format_time(config.campaign_start).c_str(),
      util::format_time(config.campaign_end).c_str(), config.responder_count,
      config.certs_per_responder, scan.interval.seconds / 3600,
      static_cast<unsigned long long>(config.seed));
}

}  // namespace mustaple::bench
