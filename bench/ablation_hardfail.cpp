// Ablation: "what if browsers hard-failed today?" — the §8 question. The
// paper argues browsers have little incentive to hard-fail until servers
// prefetch and responders deliver valid staples. Here we quantify it:
// a population of Must-Staple domains served by the 2018 server mix
// (Apache/Nginx, no prefetch, buggy caching) vs the paper's recommended
// server behaviour, visited by a hard-fail client across responder outages.
//
// Output: connection-failure rate a hard-failing browser would experience,
// per server software, plus the RFC 6961 multi-staple variant.
#include <cstdio>

#include "browser/browser.hpp"
#include "common.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

namespace {

struct Deployment {
  webserver::Software software;
  bool multi_staple = false;
  const char* label;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: hard-fail readiness by server software",
      "section 8 discussion (browsers' incentive to hard-fail)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.alexa_domains = 10'000;
  config.campaign_end = util::make_time(2018, 5, 9);  // two weeks
  bench::Stopwatch watch;

  const Deployment deployments[] = {
      {webserver::Software::kApache, false, "Apache 2.4 (2018 behaviour)"},
      {webserver::Software::kNginx, false, "Nginx 1.13 (2018 behaviour)"},
      {webserver::Software::kIdeal, false, "Ideal (prefetch + retain)"},
      {webserver::Software::kIdeal, true, "Ideal + RFC 6961 multi-staple"},
  };

  // One domain per responder (spreads the outage exposure the way real
  // Must-Staple deployment would).
  std::printf(
      "%zu Must-Staple domains (one per responder), hard-fail client "
      "visiting every 4h\nfor two simulated weeks (includes the Comodo and "
      "sheca incidents):\n\n",
      config.responder_count);

  browser::BrowserProfile hard_fail;
  hard_fail.name = "HardFail";
  hard_fail.os = "any";
  hard_fail.respects_must_staple = true;

  for (const Deployment& deployment : deployments) {
    // Each deployment replays the identical world from scratch (same seed,
    // fresh clock) so the comparison is apples-to-apples.
    net::EventLoop loop(config.campaign_start - util::Duration::days(1));
    measurement::Ecosystem ecosystem(config, loop);
    tls::TlsDirectory directory;
    std::vector<std::unique_ptr<webserver::WebServer>> servers;
    util::Rng issue_rng(config.seed ^ 0xabcdef);
    for (std::size_t r = 0; r < ecosystem.responders().size(); ++r) {
      const auto& info = ecosystem.responders()[r];
      const std::string domain = "d" + std::to_string(r) + ".example";
      ca::LeafRequest request;
      request.domain = domain;
      request.not_before = config.campaign_start - util::Duration::days(30);
      request.lifetime = util::Duration::days(365);
      request.must_staple = true;
      request.ocsp_urls = {"http://" + info.host + "/"};
      auto& authority = ecosystem.authority(info.ca_index);
      webserver::WebServerConfig server_config;
      server_config.software = deployment.software;
      servers.push_back(std::make_unique<webserver::WebServer>(
          domain, authority.chain_for(authority.issue(request, issue_rng)),
          server_config, ecosystem.network()));
      if (deployment.multi_staple) {
        servers.back()->enable_multi_staple(authority.root_cert());
      }
      servers.back()->install(directory);
      servers.back()->start(config.campaign_start - util::Duration::hours(2));
    }
    browser::BrowserProfile client = hard_fail;
    client.requests_multi_staple = deployment.multi_staple;

    std::size_t visits = 0;
    std::size_t hard_failures = 0;
    for (util::SimTime t = config.campaign_start; t < config.campaign_end;
         t = t + util::Duration::hours(4)) {
      loop.run_until(t);
      for (const auto& server : servers) {
        const auto visit = browser::visit(client, directory, server->domain(),
                                          ecosystem.roots(), t);
        ++visits;
        if (visit.verdict == browser::Verdict::kHardFail) ++hard_failures;
      }
    }
    std::printf("  %-32s %7zu / %zu visits hard-fail (%.2f%%)\n",
                deployment.label, hard_failures, visits,
                100.0 * static_cast<double>(hard_failures) /
                    static_cast<double>(visits));
  }

  std::printf(
      "\n[reading: Apache loses the most (drops staples on every responder "
      "hiccup and\n serves expired/error responses); Nginx loses every "
      "domain's FIRST client plus\n outage windows; prefetch+retain (the "
      "paper's section 8 recommendation) removes\n the server-side failures "
      "entirely — the residual rate is domains whose\n responders "
      "persistently serve garbage (never-reachable or malformed, section 5),"
      "\n which no server behaviour can fix. That residual is the paper's "
      "CA-side\n readiness gap.]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
