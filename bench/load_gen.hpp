// Loopback OCSP load generation, shared by the standalone bench/ocsp_load
// binary and perf_suite's "serving" section: a net::SocketServer serving a
// pre-generated OcspResponder over real TCP, hammered by client threads
// speaking pipelined keep-alive HTTP/1.1 with the RFC 6960 GET/POST mix.
//
// The clock is a FIXED SimTime: every request lands in the same
// pre-generation cycle, so after warm-up the responder serves one cached
// DER per serial and the wire-level ResponseCache serves one cached
// HttpResponse per distinct request — the configuration whose sustained
// throughput the serving acceptance target (>=100k req/s loopback) is
// defined against.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "net/socket_server.hpp"
#include "ocsp/request.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mustaple::bench {

struct LoadGenConfig {
  std::size_t certs = 64;          ///< distinct serials in the request corpus
  std::size_t client_threads = 4;  ///< one pipelined connection per thread
  std::size_t pipeline_depth = 32; ///< requests per batched write
  double get_fraction = 0.5;       ///< RFC 6960 A.1 GETs vs POSTs
  double seconds = 2.0;            ///< measured duration (after warm-up)
  std::size_t server_workers = 4;
  bool response_cache = true;      ///< wrap the handler in a ResponseCache
};

struct LoadGenResult {
  std::uint64_t requests = 0;  ///< client-side completed responses
  std::uint64_t errors = 0;    ///< non-200 or unparseable framing
  double seconds = 0.0;
  double rps = 0.0;
  net::SocketServerStats server;
  util::ShardedCacheStats cache;  ///< zeroed when response_cache is off
};

namespace loadgen_detail {

/// RFC 6960 A.1 says clients URL-encode the base64 path: escape the three
/// base64 characters that are reserved in a URL. This is what real GET
/// clients send, so the server-side percent-decode runs on the hot path.
inline std::string percent_encode_base64(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '+') {
      out += "%2B";
    } else if (c == '/') {
      out += "%2F";
    } else if (c == '=') {
      out += "%3D";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Counts complete HTTP/1.1 responses in a client read buffer, consuming
/// them; flags anything that is not a 200. Returns false on framing garbage.
inline bool consume_responses(std::string& buffer, std::uint64_t* completed,
                              std::uint64_t* errors) {
  for (;;) {
    const std::size_t head_end = buffer.find("\r\n\r\n");
    if (head_end == std::string::npos) return true;
    if (buffer.compare(0, 5, "HTTP/") != 0) return false;
    std::size_t body_len = 0;
    const std::size_t cl = util::to_lower(buffer.substr(0, head_end))
                               .find("content-length:");
    if (cl != std::string::npos) {
      std::size_t i = cl + std::strlen("content-length:");
      while (i < head_end && buffer[i] == ' ') ++i;
      while (i < head_end && buffer[i] >= '0' && buffer[i] <= '9') {
        body_len = body_len * 10 + static_cast<std::size_t>(buffer[i] - '0');
        ++i;
      }
    }
    const std::size_t total = head_end + 4 + body_len;
    if (buffer.size() < total) return true;  // body still arriving
    if (buffer.compare(0, 12, "HTTP/1.1 200") != 0) ++*errors;
    ++*completed;
    buffer.erase(0, total);
  }
}

#if defined(__linux__)
inline int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}
#endif

}  // namespace loadgen_detail

/// Owns the CA, the pre-generated responder, the socket server, and the
/// pre-serialized request corpus. Construct once, run() as often as needed.
class OcspLoadHarness {
 public:
  explicit OcspLoadHarness(const LoadGenConfig& config)
      : config_(config), now_(util::make_time(2018, 5, 1, 12)) {
    util::Rng rng{2018};
    ca_ = std::make_unique<ca::CertificateAuthority>(
        "LoadCA", now_ - util::Duration::days(2000), rng);
    ca::ResponderBehavior behavior;  // defaults: pre-generated, 24h cycle
    responder_ = std::make_unique<ca::OcspResponder>(
        *ca_, behavior, "ocsp.load.example", rng);

    // Request corpus: one GET and one POST wire per issued certificate.
    // GETs percent-encode the base64 path the way real clients do.
    for (std::size_t i = 0; i < config_.certs; ++i) {
      ca::LeafRequest leaf_request;
      leaf_request.domain = "load" + std::to_string(i) + ".example";
      leaf_request.not_before = now_ - util::Duration::days(30);
      leaf_request.lifetime = util::Duration::days(365);
      leaf_request.ocsp_urls = {"http://ocsp.load.example/"};
      const x509::Certificate leaf = ca_->issue(leaf_request, rng);
      const auto id =
          ocsp::CertId::for_certificate(leaf, ca_->intermediate_cert());
      const auto request = ocsp::OcspRequest::single(id);

      net::HttpRequest get;
      get.method = "GET";
      get.path = "/" + loadgen_detail::percent_encode_base64(
                           util::base64_encode(request.encode_der()));
      get.headers.set("host", "ocsp.load.example");
      get_wires_.push_back(get.serialize());

      net::HttpRequest post;
      post.method = "POST";
      post.path = "/";
      post.headers.set("host", "ocsp.load.example");
      post.headers.set("content-type", "application/ocsp-request");
      post.body = request.encode_der();
      post_wires_.push_back(post.serialize());
    }

    net::SocketServer::Options options;
    options.worker_threads = config_.server_workers;
    server_ = std::make_unique<net::SocketServer>(options);
    const util::SimTime now = now_;
    net::WireHandler handler =
        responder_->wire_handler([now] { return now; });
    if (config_.response_cache) {
      cache_ = std::make_unique<net::ResponseCache>(16, 4096);
      handler = cache_->wrap(std::move(handler));
    }
    server_->add_listener("ocsp", 0, std::move(handler));
  }

  util::Status start() { return server_->start(); }
  void stop() { server_->stop(); }
  std::uint16_t port() const { return server_->port(std::size_t{0}); }
  const net::SocketServer& server() const { return *server_; }

  /// Runs the timed load. start() must have succeeded.
  LoadGenResult run() {
#if !defined(__linux__)
    return LoadGenResult{};
#else
    LoadGenResult result;
    const std::uint16_t target_port = port();
    std::vector<std::uint64_t> completed(config_.client_threads, 0);
    std::vector<std::uint64_t> errors(config_.client_threads, 0);
    std::atomic<bool> running{true};

    // Warm-up outside the timer: touch every corpus entry once so the
    // responder's signing and the wire cache's misses are paid up front.
    {
      std::uint64_t warm_done = 0;
      std::uint64_t warm_errors = 0;
      const int fd = loadgen_detail::connect_loopback(target_port);
      if (fd < 0) return result;
      std::string in;
      for (std::size_t i = 0; i < get_wires_.size(); ++i) {
        send_wire(fd, get_wires_[i]);
        send_wire(fd, post_wires_[i]);
      }
      while (warm_done < 2 * get_wires_.size()) {
        if (!read_some(fd, in)) break;
        loadgen_detail::consume_responses(in, &warm_done, &warm_errors);
      }
      ::close(fd);
      if (warm_done < 2 * get_wires_.size()) return result;  // server broken
    }

    Stopwatch watch;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < config_.client_threads; ++t) {
      clients.emplace_back([this, t, target_port, &running, &completed,
                            &errors] {
        client_loop(t, target_port, running, completed[t], errors[t]);
      });
    }
    while (watch.seconds() < config_.seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    running.store(false, std::memory_order_release);
    for (auto& thread : clients) thread.join();
    result.seconds = watch.seconds();
    for (std::size_t t = 0; t < config_.client_threads; ++t) {
      result.requests += completed[t];
      result.errors += errors[t];
    }
    result.rps = result.seconds > 0
                     ? static_cast<double>(result.requests) / result.seconds
                     : 0.0;
    result.server = server_->stats();
    if (cache_) result.cache = cache_->stats();
    return result;
#endif
  }

 private:
#if defined(__linux__)
  static bool send_wire(int fd, const util::Bytes& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t sent = ::send(fd, wire.data() + off, wire.size() - off,
                                  MSG_NOSIGNAL);
      if (sent > 0) {
        off += static_cast<std::size_t>(sent);
        continue;
      }
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }

  static bool read_some(int fd, std::string& in) {
    char buf[16384];
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got <= 0) return false;
    in.append(buf, static_cast<std::size_t>(got));
    return true;
  }

  void client_loop(std::size_t thread_index, std::uint16_t target_port,
                   const std::atomic<bool>& running, std::uint64_t& completed,
                   std::uint64_t& errors) {
    const int fd = loadgen_detail::connect_loopback(target_port);
    if (fd < 0) return;
    // Deterministic per-thread GET/POST interleave matching get_fraction.
    const std::size_t corpus = get_wires_.size();
    std::string in;
    std::uint64_t sent_total = 0;
    std::uint64_t done = 0;
    double get_credit = 0.0;
    while (running.load(std::memory_order_acquire)) {
      // Batch-write one pipeline window, then drain its responses.
      for (std::size_t i = 0; i < config_.pipeline_depth; ++i) {
        const std::size_t pick =
            (thread_index * 7919 + sent_total) % corpus;
        get_credit += config_.get_fraction;
        const bool use_get = get_credit >= 1.0;
        if (use_get) get_credit -= 1.0;
        if (!send_wire(fd, use_get ? get_wires_[pick] : post_wires_[pick])) {
          ::close(fd);
          return;
        }
        ++sent_total;
      }
      while (done < sent_total) {
        if (!read_some(fd, in)) {
          ::close(fd);
          return;
        }
        if (!loadgen_detail::consume_responses(in, &done, &errors)) {
          ++errors;
          ::close(fd);
          return;
        }
      }
    }
    completed = done;
    ::close(fd);
  }
#else
  void client_loop(std::size_t, std::uint16_t, const std::atomic<bool>&,
                   std::uint64_t&, std::uint64_t&) {}
#endif

  LoadGenConfig config_;
  util::SimTime now_;
  std::unique_ptr<ca::CertificateAuthority> ca_;
  std::unique_ptr<ca::OcspResponder> responder_;
  std::unique_ptr<net::ResponseCache> cache_;
  std::unique_ptr<net::SocketServer> server_;
  std::vector<util::Bytes> get_wires_;
  std::vector<util::Bytes> post_wires_;
};

}  // namespace mustaple::bench
