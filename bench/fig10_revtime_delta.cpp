// Figure 10: CDF of the difference between the revocation time reported by
// OCSP and by the CRL, over revoked certificates supporting both. Paper
// shape: only 863 responses (0.15%) differ at all; of those, 127 (14.7%)
// are negative (OCSP earlier); the ocsp.msocsp.com responder lags its CRL
// by 7 hours to 9 days; the positive tail exceeds 137M seconds (4+ years).
#include <cstdio>

#include "common.hpp"
#include "measurement/consistency.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 10: OCSP vs CRL revocation-time deltas",
                      "Fig 10 (revoked certificates on both channels)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  measurement::ConsistencyConfig audit_config;
  audit_config.revoked_population = 7283;  // paper: 728,261 (1:100)
  std::printf("revoked population: %zu certificates (paper: 728,261; 1:100 scale)\n\n",
              audit_config.revoked_population);

  util::Rng rng(config.seed ^ 0xf16a10ULL);
  measurement::ConsistencyAudit audit(ecosystem, audit_config);
  const measurement::ConsistencyReport report = audit.run(rng);

  util::ChartOptions options;
  options.title = "CDF: |OCSP revocation time - CRL revocation time| (s, log x)";
  options.x_label = "|delta| seconds";
  options.y_label = "CDF of differing pairs";
  options.log_x = true;
  std::printf("%s\n",
              util::render_cdf(report.time_delta_seconds, options).c_str());

  std::printf("measured (paper in brackets):\n");
  std::printf("  OCSP responses collected:  %zu / %zu (%.1f%%)  [99.9%%]\n",
              report.responses_collected, report.probed,
              100.0 * static_cast<double>(report.responses_collected) /
                  static_cast<double>(report.probed));
  std::printf("  pairs with differing time: %zu / %zu (%.2f%%)  [863 = 0.15%%]\n",
              report.time_differing, report.time_compared,
              report.time_compared
                  ? 100.0 * static_cast<double>(report.time_differing) /
                        static_cast<double>(report.time_compared)
                  : 0.0);
  std::printf("  negative deltas (OCSP earlier): %zu (%.1f%% of differing)  [127 = 14.7%%]\n",
              report.time_negative,
              report.time_differing
                  ? 100.0 * static_cast<double>(report.time_negative) /
                        static_cast<double>(report.time_differing)
                  : 0.0);
  std::printf("  max positive delta: %.0f days  [>4 years; msocsp lag 7h..9d]\n\n",
              report.max_positive_delta_seconds / 86400.0);

  std::printf("revocation REASON comparison (section 5.4):\n");
  std::printf("  differing reasons: %zu / %zu (%.1f%%)  [~15%%]\n",
              report.reason_differing, report.reason_compared,
              report.reason_compared
                  ? 100.0 * static_cast<double>(report.reason_differing) /
                        static_cast<double>(report.reason_compared)
                  : 0.0);
  std::printf("  of which CRL-has-reason / OCSP-does-not: %zu (%.2f%%)  [99.99%%]\n",
              report.reason_crl_only,
              report.reason_differing
                  ? 100.0 * static_cast<double>(report.reason_crl_only) /
                        static_cast<double>(report.reason_differing)
                  : 0.0);
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
