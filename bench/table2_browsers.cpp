// Table 2: browser support for OCSP Must-Staple. Methodology as in §6:
// a valid Must-Staple certificate served WITHOUT a staple; observe whether
// each browser (1) solicited a staple, (2) rejected the certificate,
// (3) fell back to its own OCSP request. Paper: all request; only Firefox
// on desktop + Android respect; nobody falls back.
// Plus the security ablation: a REVOKED Must-Staple cert behind a
// staple-stripping attacker.
#include <cstdio>

#include "analysis/browser_suite.hpp"
#include "common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Table 2: browser Must-Staple conformance",
                      "Table 2 (16 browser/OS combinations)");

  bench::Stopwatch watch;
  const analysis::BrowserSuiteResult result = analysis::run_browser_suite(2018);

  auto mark = [](bool v) { return v ? std::string("yes") : std::string("NO"); };
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : result.rows) {
    rows.push_back({row.profile.display_name(),
                    mark(row.requested_ocsp_response),
                    mark(row.respected_must_staple),
                    mark(row.sent_own_ocsp_request),
                    browser::to_string(row.verdict_revoked_attacked)});
  }
  std::printf("%s\n",
              util::render_table({"Browser", "Requests staple",
                                  "Respects Must-Staple", "Own OCSP",
                                  "Revoked+stripped verdict"},
                                 rows)
                  .c_str());

  std::printf("summary (paper in brackets):\n");
  std::printf("  request OCSP response:   %zu/%zu  [16/16]\n",
              result.count_requesting(), result.rows.size());
  std::printf("  respect Must-Staple:     %zu/%zu  [4/16: Firefox desktop x3 + Android]\n",
              result.count_respecting(), result.rows.size());
  std::printf("  send own OCSP request:   %zu/%zu  [0/16]\n",
              result.count_own_ocsp(), result.rows.size());
  std::printf(
      "\nablation - staple-stripping attack on a REVOKED Must-Staple cert:\n"
      "  attack succeeds against %zu/%zu browsers (all non-respecting ones)\n"
      "  [the soft-failure problem of section 2.3: Must-Staple only protects\n"
      "   users of the %zu hard-failing browsers]\n",
      result.count_attack_succeeds(), result.rows.size(),
      result.count_respecting());
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
