// Ablation: short-lived certificates vs OCSP Must-Staple (the alternative
// the paper cites from Topalovic et al., §3): after a key compromise, for
// how long can an attacker still get the certificate accepted?
//
// Scenario: the key is compromised at T0 and the CA revokes at T0+6h. The
// attacker serves the certificate from a hostile network (strips staples,
// blocks OCSP). We sweep clients over time and measure the acceptance
// window under each regime.
#include <cstdio>

#include "browser/browser.hpp"
#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "common.hpp"
#include "webserver/webserver.hpp"

using namespace mustaple;

namespace {

struct Regime {
  const char* label;
  util::Duration cert_lifetime;
  bool must_staple;
  bool client_respects;
  bool attacker_strips;  ///< attacker can strip staples / block OCSP
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation: short-lived certificates vs OCSP Must-Staple",
      "section 3 related work (Topalovic et al.) vs the paper's mechanism");

  const util::SimTime t0 = util::make_time(2018, 6, 1);  // compromise instant
  const util::Duration revocation_delay = util::Duration::hours(6);
  const util::Duration staple_validity = util::Duration::days(7);

  const Regime regimes[] = {
      {"90-day cert, soft-fail client (2018 default)", util::Duration::days(90),
       false, false, true},
      {"90-day cert + Must-Staple, hard-fail client", util::Duration::days(90),
       true, true, true},
      {"3-day short-lived cert, no revocation at all", util::Duration::days(3),
       false, false, true},
      {"3-day short-lived + Must-Staple + hard-fail", util::Duration::days(3),
       true, true, true},
  };

  std::printf("compromise at T0; CA revokes at T0+6h; stapled responses are valid %ldd;\n",
              staple_validity.seconds / 86400);
  std::printf("attacker strips staples and blocks OCSP. Acceptance window per regime:\n\n");

  bench::Stopwatch watch;
  for (const Regime& regime : regimes) {
    util::Rng rng(99);
    net::EventLoop loop(t0 - util::Duration::days(10));
    net::Network network(loop, 99);
    ca::CertificateAuthority authority("AblCA", t0 - util::Duration::days(900),
                                       rng);
    ca::ResponderBehavior behavior;
    behavior.pre_generate = false;
    behavior.validity = staple_validity;
    behavior.this_update_margin = util::Duration::hours(1);
    ca::OcspResponder responder(authority, behavior, "ocsp.abl.example", rng);
    responder.install(network);
    x509::RootStore roots;
    roots.add(authority.root_cert());

    ca::LeafRequest request;
    request.domain = "victim.example";
    request.not_before = t0 - util::Duration::days(1);
    request.lifetime = regime.cert_lifetime;
    request.must_staple = regime.must_staple;
    request.ocsp_urls = {"http://ocsp.abl.example/"};
    const x509::Certificate leaf = authority.issue(request, rng);

    // The attacker's server: has the key + certificate, staples nothing.
    webserver::WebServerConfig config;
    config.stapling_enabled = !regime.attacker_strips;
    webserver::WebServer attacker("victim.example", authority.chain_for(leaf),
                                  config, network);
    tls::TlsDirectory directory;
    attacker.install(directory);
    if (regime.attacker_strips) {
      net::FaultRule block;
      block.canonical_host = "ocsp.abl.example";
      block.mode = net::FaultMode::kTcpConnectFailure;
      block.window_start = t0;
      network.faults().add(block);
    }

    authority.revoke(leaf.serial(), t0 + revocation_delay,
                     crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});

    browser::BrowserProfile client;
    client.name = "Client";
    client.os = "any";
    client.respects_must_staple = regime.client_respects;

    // Sweep hourly for 100 days; record the last hour the attacker wins.
    util::Duration window = util::Duration::secs(0);
    for (int hour = 0; hour <= 100 * 24; ++hour) {
      const util::SimTime when = t0 + util::Duration::hours(hour);
      loop.run_until(when);
      const auto visit = browser::visit(client, directory, "victim.example",
                                        roots, when, &network);
      const bool attacker_wins =
          visit.verdict == browser::Verdict::kAccept ||
          visit.verdict == browser::Verdict::kAcceptSoftFail;
      if (attacker_wins) window = util::Duration::hours(hour + 1);
    }
    std::printf("  %-48s %6.1f days\n", regime.label,
                static_cast<double>(window.seconds) / 86400.0);
  }

  std::printf(
      "\n[reading: soft-fail leaves the full remaining lifetime exposed "
      "(~89d);\n Must-Staple + hard-fail cuts exposure to zero under staple-"
      "stripping;\n short-lived certificates bound exposure by lifetime "
      "(~2d) even without\n revocation — the two mechanisms the paper "
      "compares in section 3]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
