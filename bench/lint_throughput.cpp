// lint_throughput: artifacts/second for lint::run_batch across thread
// counts, over a mixed population of certificates and CRLs drawn from the
// generated ecosystem. The point is not raw speed but the determinism
// contract: the rendered report must be BIT-IDENTICAL at every thread count
// (same two-phase discipline as the scan campaign, DESIGN.md §7).
//
// Usage: lint_throughput [artifact_count]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "lint/lint.hpp"

int main(int argc, char** argv) {
  using namespace mustaple;
  bench::print_header("Lint throughput by thread count",
                      "determinism contract: bit-identical reports");

  const std::size_t artifact_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);
  const lint::RuleRegistry& registry = lint::RuleRegistry::builtin();

  // Source pool: every scan-target certificate plus one CRL per CA.
  struct Source {
    lint::ArtifactKind kind;
    std::string id;
    util::Bytes der;
  };
  std::vector<Source> pool;
  for (const measurement::ScanTarget& target : ecosystem.scan_targets()) {
    pool.push_back({lint::ArtifactKind::kCertificate,
                    target.cert.serial_hex(), target.cert.encode_der()});
  }
  const util::SimTime published = config.campaign_start;
  for (std::size_t i = 0; i < ecosystem.authority_count(); ++i) {
    const crl::Crl crl = ecosystem.authority(i).publish_crl(
        published, util::Duration::days(7));
    pool.push_back({lint::ArtifactKind::kCrl, "crl:" + std::to_string(i),
                    crl.encode_der()});
  }
  std::printf("source pool: %zu artifacts; replicating to %zu\n\n",
              pool.size(), artifact_count);

  auto make_batch = [&] {
    std::vector<lint::Artifact> artifacts;
    artifacts.reserve(artifact_count);
    for (std::size_t i = 0; i < artifact_count; ++i) {
      const Source& source = pool[i % pool.size()];
      artifacts.push_back(
          lint::Artifact::deferred(source.kind, source.id, source.der));
    }
    return artifacts;
  };

  std::string reference_json;
  std::printf("%-8s %-12s %-14s %s\n", "threads", "seconds", "artifacts/s",
              "report");
  for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
    std::vector<lint::Artifact> artifacts = make_batch();
    bench::Stopwatch watch;
    const lint::LintReport report =
        lint::run_batch(registry, artifacts, threads);
    const double seconds = watch.seconds();
    const std::string json = report.render_json();
    const bool identical = reference_json.empty() || json == reference_json;
    if (reference_json.empty()) reference_json = json;
    std::printf("%-8zu %-12.3f %-14.0f %s (%s)\n", threads, seconds,
                static_cast<double>(artifact_count) / seconds,
                identical ? "bit-identical" : "DIVERGED", report.summary().c_str());
    if (!identical) {
      std::printf("\nFAILURE: report at %zu threads differs from 1 thread\n",
                  threads);
      return 1;
    }
  }
  std::printf("\nreports bit-identical across all thread counts\n");
  return 0;
}
