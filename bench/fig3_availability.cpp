// Figure 3: fraction of successful OCSP requests per vantage point over the
// campaign. Paper shape: ~1.7% average failure rate; Sao Paulo the worst
// (~5.7%) and Virginia the best (~2.2%); a gradual decline in the first
// month (the wayport.net deaths); sharp dips at the scripted outages
// (Comodo Apr 25, Certum Aug 9, Digicert Aug 27 from Seoul, wosign Aug 3).
// Also reports the CDN perspective of §5.2: a cache-fronted consumer
// contacting ~20 responders sees ~100% success.
#include <cstdio>
#include <cstdlib>
#include <set>

#include "analysis/export.hpp"
#include "common.hpp"
#include "obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace mustaple;
  const std::string csv_dir = argc > 1 ? argv[1] : "";
  // argv[2]: scan worker threads (0/absent = auto via MUSTAPLE_SCAN_THREADS).
  // Outputs are bit-identical for every value; only wall-clock changes.
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;
  bench::print_header("Figure 3: OCSP responder availability per vantage point",
                      "Fig 3 + section 5.2 failure taxonomy + CDN view");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.certs_per_responder = 1;  // availability needs responders, not certs
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(2);  // catches the 1-5h outage windows
  scan.validate_responses = false;           // availability only
  scan.threads = threads;
  bench::print_campaign(config, scan);

  // Sequential reference run for the speedup report (only when a parallel
  // campaign was requested).
  double baseline_seconds = 0.0;
  if (threads > 1) {
    net::EventLoop base_loop(config.campaign_start - util::Duration::days(1));
    measurement::Ecosystem base_ecosystem(config, base_loop);
    measurement::ScanConfig base_scan = scan;
    base_scan.threads = 1;
    measurement::HourlyScanner base_scanner(base_ecosystem, base_scan);
    bench::Stopwatch base_watch;
    base_scanner.run();
    baseline_seconds = base_watch.seconds();
  }

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  bench::Stopwatch scan_watch;
#if MUSTAPLE_OBS_ENABLED
  // The series below are read back from the campaign timeline (per-window
  // deltas of the scanner's region-labelled counters) rather than from the
  // scanner's own StepTotals: one window per scan step makes the two
  // identical, and the same timeline.csv reproduces this figure offline.
  obs::Timeline timeline(config.campaign_start, scan.interval);
  obs::Timeline* previous_timeline = obs::install_timeline(&timeline);
  scanner.run();
  timeline.flush(config.campaign_end);  // close the final step's window
  obs::install_timeline(previous_timeline);
#else
  scanner.run();
#endif
  const double scan_seconds = scan_watch.seconds();

  // Success-rate series per region (percent), x in days since campaign start.
  std::vector<util::Series> series;
  for (net::Region region : net::all_regions()) {
    util::Series s;
    s.label = net::to_string(region);
#if MUSTAPLE_OBS_ENABLED
    const util::Series raw = timeline.ratio_series(
        "mustaple_scan_successes_total", "mustaple_scan_requests_total",
        {{"region", net::to_string(region)}});
    for (std::size_t i = 0; i < raw.x.size(); ++i) {
      const double day =
          (raw.x[i] -
           static_cast<double>(config.campaign_start.unix_seconds)) /
          86400.0;
      s.add(day, raw.y[i]);
    }
#else
    const std::size_t g = static_cast<std::size_t>(region);
    for (std::size_t i = 0; i < scanner.steps().size(); ++i) {
      const auto& step = scanner.steps()[i];
      if (step.requests[g] == 0) continue;
      const double pct = 100.0 * static_cast<double>(step.successes[g]) /
                         static_cast<double>(step.requests[g]);
      const double day =
          static_cast<double>(
              (step.when - config.campaign_start).seconds) /
          86400.0;
      s.add(day, pct);
    }
#endif
    series.push_back(std::move(s));
  }
  util::ChartOptions options;
  options.title = "Successful requests (%) per scan step";
  options.x_label = "days since Apr 25";
  options.y_label = "% success";
  options.height = 18;
  std::printf("%s\n", util::render_chart(series, options).c_str());
  if (!csv_dir.empty()) {
    analysis::write_export(csv_dir, "fig3_availability.csv",
                           analysis::csv_from_series(series, "day"));
    std::printf("(CSV written to %s/fig3_availability.csv)\n\n",
                csv_dir.c_str());
  }

  std::printf("failure rate by vantage point [paper: avg 1.7%%, Virginia ~2.2%%, Sao Paulo ~5.7%%]:\n");
  double total = 0;
  for (net::Region region : net::all_regions()) {
    const double rate = 100.0 * scanner.failure_rate(region);
    total += rate;
    std::printf("  %-10s %.2f%%\n", net::to_string(region), rate);
  }
  std::printf("  average    %.2f%%\n\n", total / net::kRegionCount);

  std::printf("outage census [paper: 211 (36.8%%) responders with >=1 outage; 2 never reachable;\n");
  std::printf("               29 more persistently unreachable from >=1 vantage point]:\n");
  std::printf("  responders with >=1 transient outage: %zu / %zu (%.1f%%)\n",
              scanner.responders_with_outage(), scanner.responder_count(),
              100.0 * static_cast<double>(scanner.responders_with_outage()) /
                  static_cast<double>(scanner.responder_count()));
  std::printf("  never reachable from anywhere:        %zu\n",
              scanner.responders_never_reachable());
  std::printf("  dead from >=1 region (alive elsewhere): %zu\n",
              scanner.responders_region_persistent_fail());
  const auto taxonomy = scanner.persistent_failure_taxonomy();
  std::printf(
      "  persistent-failure causes [paper: 16 DNS, 4 TCP, 8 HTTP 4xx/5xx, "
      "1 bad HTTPS cert]:\n"
      "    DNS NXDOMAIN %zu | TCP connect %zu | HTTP error %zu | invalid "
      "HTTPS cert %zu\n\n",
      taxonomy.dns, taxonomy.tcp, taxonomy.http, taxonomy.tls);

  // CDN perspective: a cache-fronted consumer in one region touching the ~20
  // busiest responders. Cache hits mean it rarely observes transient faults;
  // here we report its success rate over the same campaign.
  {
    std::set<std::size_t> busiest;
    std::vector<std::pair<std::size_t, std::size_t>> by_domains;
    for (std::size_t i = 0; i < ecosystem.responders().size(); ++i) {
      by_domains.emplace_back(ecosystem.responders()[i].alexa_domain_count, i);
    }
    std::sort(by_domains.rbegin(), by_domains.rend());
    for (std::size_t i = 0; i < 20 && i < by_domains.size(); ++i) {
      busiest.insert(by_domains[i].second);
    }
    std::size_t requests = 0;
    std::size_t successes = 0;
    for (std::size_t r : busiest) {
      const auto& stats = scanner.stats(r, net::Region::kVirginia);
      requests += stats.requests;
      successes += stats.http_successes;
    }
    std::printf("CDN perspective (top-20 responders from one region) [paper: ~20 responders, 100%% success]:\n");
    std::printf("  %zu requests, %.2f%% success\n", requests,
                requests ? 100.0 * static_cast<double>(successes) /
                               static_cast<double>(requests)
                         : 0.0);
  }
  if (threads > 1) {
    std::printf("\n[scan: %zu threads %.2fs vs 1 thread %.2fs -> %.2fx "
                "speedup, identical outputs]\n",
                threads, scan_seconds, baseline_seconds,
                scan_seconds > 0.0 ? baseline_seconds / scan_seconds : 0.0);
  }
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
