// Table 3: web-server OCSP Stapling correctness. Methodology as in §7.2:
// a controlled OCSP responder plus fault injection against each server
// model. Paper: neither Apache nor Nginx is fully correct — no prefetch
// (Apache pauses the handshake, Nginx gives the first client nothing);
// Apache ignores nextUpdate and discards/serves error responses on failure;
// Nginx has the 5-minute refresh floor.
// Plus the DESIGN.md ablation: client-visible staple availability under a
// 24h responder outage per server model.
#include <cstdio>

#include "analysis/webserver_suite.hpp"
#include "common.hpp"
#include "util/ascii_chart.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Table 3: web-server stapling correctness",
                      "Table 3 + outage-availability ablation");

  bench::Stopwatch watch;
  const analysis::WebServerSuiteResult result =
      analysis::run_webserver_suite(2018);

  auto mark = [](bool v) { return v ? std::string("yes") : std::string("NO"); };
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : result.rows) {
    rows.push_back({webserver::to_string(row.software),
                    mark(row.prefetches) + " (" + row.first_client_note + ")",
                    mark(row.caches), mark(row.respects_next_update),
                    mark(row.retains_on_error),
                    mark(row.serves_error_response)});
  }
  std::printf("%s\n",
              util::render_table({"Server", "Prefetch", "Cache",
                                  "Respect nextUpdate", "Retain on error",
                                  "Staples error resp"},
                                 rows)
                  .c_str());
  std::printf(
      "[paper Table 3: Apache: prefetch NO (pauses conn), cache yes, "
      "nextUpdate NO, retain NO;\n"
      " Nginx: prefetch NO (no response), cache yes, nextUpdate yes, retain "
      "yes]\n\n");

  std::printf("ablation: staple availability to a hard-fail client across a 24h\n");
  std::printf("responder outage starting at t+1h (12h response validity):\n");
  for (const auto& [software, availability] : result.outage_availability) {
    std::printf("  %-7s %.1f%% of handshakes had a valid staple\n",
                webserver::to_string(software), 100.0 * availability);
  }
  std::printf(
      "\n[the paper's section 8 point: with correct caching + prefetch, "
      "outages far\n shorter than the validity period are survivable; "
      "Apache's delete-on-error\n behaviour forfeits that]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
