// Figure 8: CDF (over responders) of the OCSP response validity period
// (nextUpdate - thisUpdate). Paper shape: median about a week; 45 (9.1%)
// responders always send a BLANK nextUpdate (infinite validity); 11 (2%)
// use validity over one month, with a tail reaching 108,130,800 seconds
// (1,251 days). Also reproduces the §5.4 producedAt analysis: 51.7% of
// responders serve pre-generated responses, 7 with validity equal to their
// update period ("non-overlapping", the hinet/cnnic pattern).
#include <cstdio>

#include "analysis/export.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace mustaple;
  const std::string csv_dir = argc > 1 ? argv[1] : "";
  bench::print_header("Figure 8: OCSP validity periods (CDF) + section 5.4 producedAt analysis",
                      "Fig 8 + non-overlapping validity windows");

  measurement::EcosystemConfig config = bench::quality_ecosystem();
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  const util::Cdf cdf = scanner.cdf_validity(net::Region::kVirginia);
  util::ChartOptions options;
  options.title = "CDF: validity period, seconds (Virginia, log x)";
  options.x_label = "nextUpdate - thisUpdate (s)";
  options.y_label = "CDF";
  options.log_x = true;
  std::printf("%s\n", util::render_cdf(cdf, options).c_str());
  if (!csv_dir.empty()) {
    analysis::write_export(csv_dir, "fig8_validity_cdf.csv",
                           analysis::csv_from_cdf(cdf));
  }

  std::printf("measured (paper in brackets):\n");
  std::printf("  median validity:        %.1f days  [~7 days]\n",
              cdf.quantile(0.5) / 86400.0);
  std::printf("  blank nextUpdate:       %.1f%%  [9.1%%]\n",
              100.0 * cdf.infinite_fraction());
  std::printf("  validity > 1 month:     %.1f%%  [2%%]\n",
              100.0 * (1.0 - cdf.fraction_at_most(31.0 * 86400.0) -
                       cdf.infinite_fraction()));
  const auto finite = cdf.sorted_finite();
  std::printf("  longest finite:         %.0f days  [1,251 days]\n\n",
              finite.empty() ? 0.0 : finite.back() / 86400.0);

  std::printf("producedAt analysis (section 5.4):\n");
  std::printf("  responders serving pre-generated responses: %zu / %zu = %.1f%%  [51.7%%]\n",
              scanner.responders_pre_generated(), scanner.responder_count(),
              100.0 * static_cast<double>(scanner.responders_pre_generated()) /
                  static_cast<double>(scanner.responder_count()));
  std::printf("  with validity <= update period (non-overlap hazard): %zu  [7]\n",
              scanner.responders_non_overlapping());
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
