// Compiled with MUSTAPLE_OBS_OFF (see bench/CMakeLists.txt): these bodies
// are what every instrumented call site in the codebase becomes when the
// observability layer is compiled out.
#include "micro_obs_sites.hpp"

#include "obs/obs.hpp"

namespace mustaple::bench_obs {

void off_log_site([[maybe_unused]] std::int64_t i) {
  MUSTAPLE_LOG_INFO("bench", "disabled", ::mustaple::obs::field("i", i));
}

void off_count_site() { MUSTAPLE_COUNT("mustaple_bench_off_total"); }

void off_count_labelled_site() {
  MUSTAPLE_COUNT_L("mustaple_bench_off_errors_total", "kind", "dns");
}

void off_observe_site([[maybe_unused]] double x) {
  MUSTAPLE_OBSERVE("mustaple_bench_off_ms", x);
}

void off_span_site() { MUSTAPLE_SPAN(span, "disabled"); }

}  // namespace mustaple::bench_obs
