// Loopback load test for the real-socket serving mode: net::SocketServer
// serving a pre-generated OcspResponder, driven by pipelined keep-alive
// HTTP/1.1 clients with the RFC 6960 GET/POST mix. Acceptance target:
// >=100k requests/sec sustained with pre-generated responses and the wire
// ResponseCache on (the numbers recorded in BENCH_perf.json "serving").
//
//   ocsp_load [--seconds N] [--threads N] [--workers N] [--pipeline N]
//             [--certs N] [--get-fraction F] [--no-cache] [--smoke]
//
// --smoke runs a sub-second burst and exits nonzero unless the server
// answered at least one request cleanly — the CI liveness gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load_gen.hpp"

namespace {

using mustaple::bench::LoadGenConfig;
using mustaple::bench::LoadGenResult;
using mustaple::bench::OcspLoadHarness;

double arg_double(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::size_t arg_size(int argc, char** argv, const char* flag,
                     std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return static_cast<std::size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = arg_flag(argc, argv, "--smoke");

  LoadGenConfig config;
  config.seconds = arg_double(argc, argv, "--seconds", smoke ? 0.3 : 3.0);
  config.client_threads = arg_size(argc, argv, "--threads", smoke ? 2 : 4);
  config.server_workers = arg_size(argc, argv, "--workers", smoke ? 2 : 4);
  config.pipeline_depth = arg_size(argc, argv, "--pipeline", 32);
  config.certs = arg_size(argc, argv, "--certs", 64);
  config.get_fraction = arg_double(argc, argv, "--get-fraction", 0.5);
  config.response_cache = !arg_flag(argc, argv, "--no-cache");

  mustaple::bench::print_header(
      "ocsp_load: real-socket OCSP serving throughput",
      "serving mode (ROADMAP \"serve real traffic\"); RFC 6960 App. A wire "
      "formats");
  std::printf(
      "seconds=%.1f client_threads=%zu server_workers=%zu pipeline=%zu "
      "certs=%zu get_fraction=%.2f cache=%s%s\n\n",
      config.seconds, config.client_threads, config.server_workers,
      config.pipeline_depth, config.certs, config.get_fraction,
      config.response_cache ? "on" : "off", smoke ? " [smoke]" : "");

  OcspLoadHarness harness(config);
  const auto status = harness.start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", harness.port());

  const LoadGenResult result = harness.run();
  harness.stop();

  std::printf("\nrequests   %llu in %.2fs\n",
              static_cast<unsigned long long>(result.requests),
              result.seconds);
  std::printf("throughput %.0f req/s\n", result.rps);
  std::printf("errors     %llu\n",
              static_cast<unsigned long long>(result.errors));
  std::printf(
      "server     accepted=%llu requests=%llu bytes_in=%llu bytes_out=%llu\n",
      static_cast<unsigned long long>(result.server.connections_accepted),
      static_cast<unsigned long long>(result.server.requests),
      static_cast<unsigned long long>(result.server.bytes_in),
      static_cast<unsigned long long>(result.server.bytes_out));
  if (config.response_cache) {
    std::printf("wire cache lookups=%llu hits=%llu (%.1f%%)\n",
                static_cast<unsigned long long>(result.cache.lookups),
                static_cast<unsigned long long>(result.cache.hits),
                result.cache.lookups > 0
                    ? 100.0 * static_cast<double>(result.cache.hits) /
                          static_cast<double>(result.cache.lookups)
                    : 0.0);
  }

  if (result.errors > 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(result.errors));
    return 1;
  }
  if (smoke) {
    if (result.requests == 0) {
      std::fprintf(stderr, "FAIL: smoke burst completed zero requests\n");
      return 1;
    }
    std::printf("\nsmoke OK\n");
    return 0;
  }
  std::printf("\ntarget     >=100000 req/s: %s\n",
              result.rps >= 100000.0 ? "MET" : "NOT MET (see docs/PERF.md)");
  return 0;
}
