// Figure 12: OCSP and OCSP Stapling adoption over time (monthly Censys
// snapshots, May 2016 - Sep 2018). Paper shape: both steadily growing;
// a sharp stapling jump in June 2017 when Cloudflare's "cruise-liner"
// certificates flipped stapling on for ~67k domains at once.
#include <cstdio>

#include "analysis/adoption.hpp"
#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 12: OCSP & stapling adoption over time",
                      "Fig 12 (monthly snapshots, 2016-05 .. 2018-09)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  const auto series = analysis::adoption_over_time(ecosystem);
  util::Series ocsp;
  ocsp.label = "Certificates with OCSP responder (% of HTTPS)";
  util::Series staple;
  staple.label = "Domains with OCSP Stapling (% of OCSP)";
  for (std::size_t i = 0; i < series.month_index.size(); ++i) {
    ocsp.add(series.month_index[i], series.ocsp_pct[i]);
    staple.add(series.month_index[i], series.staple_pct[i]);
  }
  util::ChartOptions options;
  options.title = "Adoption over time (month 0 = May 2016)";
  options.x_label = "months since 2016-05";
  options.y_label = "percent";
  std::printf("%s\n", util::render_chart({ocsp, staple}, options).c_str());

  std::printf("monthly stapling series (month 13 = June 2017, the Cloudflare jump):\n");
  for (std::size_t i = 0; i < series.month_index.size(); ++i) {
    std::printf("  m%02d %5.1f%%%s", series.month_index[i],
                series.staple_pct[i],
                series.month_index[i] == 13 ? "  <-- Cloudflare cruise-liner flip\n"
                                            : "\n");
  }
  const double jump = series.staple_pct[13] - series.staple_pct[12];
  std::printf("\nmeasured: stapling %.1f%% -> %.1f%% across the window; June-2017 jump +%.1f points\n",
              series.staple_pct.front(), series.staple_pct.back(), jump);
  std::printf("[paper: Cloudflare-stapled domains 11,675 (May 18 2017) -> 78,907 (Jun 15 2017)]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
