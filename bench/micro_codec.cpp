// Microbenchmarks for the wire-format substrates: DER encode/decode, X.509
// build/parse, CRL round trips, HTTP message handling.
#include <benchmark/benchmark.h>

#include "crl/crl.hpp"
#include "net/http.hpp"
#include "x509/certificate.hpp"

namespace {

using namespace mustaple;

const crypto::KeyPair& key() {
  static const crypto::KeyPair k = [] {
    util::Rng rng(1);
    return crypto::KeyPair::generate_sim(rng);
  }();
  return k;
}

x509::Certificate make_cert() {
  util::Rng rng(2);
  return x509::CertificateBuilder()
      .serial_number(123456789)
      .subject(x509::DistinguishedName{"bench.example", "", ""})
      .issuer(x509::DistinguishedName{"Bench CA", "Bench", "US"})
      .validity(util::make_time(2018, 1, 1), util::make_time(2019, 1, 1))
      .public_key(crypto::KeyPair::generate_sim(rng).public_key())
      .add_ocsp_url("http://ocsp.bench.example/")
      .add_crl_url("http://crl.bench.example/ca.crl")
      .must_staple(true)
      .sign(key());
}

void BM_CertificateBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_cert());
  }
}
BENCHMARK(BM_CertificateBuild);

void BM_CertificateEncode(benchmark::State& state) {
  const x509::Certificate cert = make_cert();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cert.encode_der());
  }
}
BENCHMARK(BM_CertificateEncode);

void BM_CertificateParse(benchmark::State& state) {
  const util::Bytes der = make_cert().encode_der();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x509::Certificate::parse(der));
  }
}
BENCHMARK(BM_CertificateParse);

void BM_CrlRoundTrip(benchmark::State& state) {
  crl::CrlBuilder builder;
  builder.issuer(x509::DistinguishedName{"Bench CA", "", ""})
      .this_update(util::make_time(2018, 5, 1))
      .next_update(util::make_time(2018, 5, 8));
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    builder.add_entry(crl::RevokedEntry{
        {static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i)},
        util::make_time(2018, 4, 1),
        crl::ReasonCode::kKeyCompromise});
  }
  const crl::Crl crl = builder.sign(key());
  const util::Bytes der = crl.encode_der();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crl::Crl::parse(der));
  }
  state.SetLabel(std::to_string(der.size()) + " bytes");
}
BENCHMARK(BM_CrlRoundTrip)->Arg(10)->Arg(1000)->Arg(10000);

void BM_HttpParse(benchmark::State& state) {
  net::HttpRequest request;
  request.method = "POST";
  request.path = "/";
  request.headers.set("content-type", "application/ocsp-request");
  request.body.assign(120, 0x30);
  const util::Bytes wire = request.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::HttpRequest::parse(wire));
  }
}
BENCHMARK(BM_HttpParse);

}  // namespace

BENCHMARK_MAIN();
