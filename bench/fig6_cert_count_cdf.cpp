// Figure 6: CDF (over responders) of the average number of certificates per
// OCSP response. Paper shape: ~85.5% of responders send <=1 certificate;
// 79 (15%) always send more than one; the ocsp.cpc.gov.ae analogue sends a
// whole 4-certificate chain.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 6: certificates per OCSP response (CDF)",
                      "Fig 6 (per-responder averages, all vantage points)");

  measurement::EcosystemConfig config = bench::quality_ecosystem();
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  for (net::Region region :
       {net::Region::kVirginia, net::Region::kSaoPaulo, net::Region::kSeoul}) {
    const util::Cdf cdf = scanner.cdf_certs(region);
    std::printf("%s: %zu responders, fraction sending <=1 cert: %.1f%%, <=2: %.1f%%, max avg: %.1f\n",
                net::to_string(region), cdf.count(),
                100.0 * cdf.fraction_at_most(1.0),
                100.0 * cdf.fraction_at_most(2.0),
                cdf.count() ? cdf.quantile(1.0) : 0.0);
  }
  std::printf("\n");

  const util::Cdf cdf = scanner.cdf_certs(net::Region::kVirginia);
  util::ChartOptions options;
  options.title = "CDF: avg certificates per response (Virginia)";
  options.x_label = "avg # certificates";
  options.y_label = "CDF";
  std::printf("%s\n", util::render_cdf(cdf, options).c_str());
  std::printf("[paper: 14.5%% of responders send >1 certificate; curves identical across regions]\n");
  std::printf("measured: %.1f%% send >1 certificate\n",
              100.0 * (1.0 - cdf.fraction_at_most(1.0)));
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
