// Microbenchmarks for the crypto substrate: SHA-256, HMAC, BigInt modexp,
// RSA sign/verify, and the simulation-grade signer.
#include <benchmark/benchmark.h>

#include "crypto/bigint.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"

namespace {

using namespace mustaple;

void BM_Sha256(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const util::Bytes key(32, 0x11);
  util::Bytes data(256, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_BigIntMul(benchmark::State& state) {
  util::Rng rng(1);
  const auto a = crypto::BigInt::random_bits(
      static_cast<std::size_t>(state.range(0)), rng);
  const auto b = crypto::BigInt::random_bits(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(256)->Arg(512)->Arg(1024);

void BM_BigIntModExp(benchmark::State& state) {
  util::Rng rng(2);
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto base = crypto::BigInt::random_bits(bits - 1, rng);
  const auto exp = crypto::BigInt::random_bits(bits - 1, rng);
  auto mod = crypto::BigInt::random_bits(bits, rng);
  if (!mod.is_odd()) mod = mod + crypto::BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::mod_exp(base, exp, mod));
  }
}
BENCHMARK(BM_BigIntModExp)->Arg(256)->Arg(512);

void BM_RsaSign(benchmark::State& state) {
  util::Rng rng(3);
  const auto kp = crypto::RsaKeyPair::generate(512, rng);
  const util::Bytes msg = util::bytes_of("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign_sha256(kp, msg));
  }
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
  util::Rng rng(4);
  const auto kp = crypto::RsaKeyPair::generate(512, rng);
  const util::Bytes msg = util::bytes_of("benchmark message");
  const util::Bytes sig = crypto::rsa_sign_sha256(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify_sha256(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_SimSign(benchmark::State& state) {
  util::Rng rng(5);
  const auto kp = crypto::KeyPair::generate_sim(rng);
  const util::Bytes msg(300, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sign(msg));
  }
}
BENCHMARK(BM_SimSign);

}  // namespace

BENCHMARK_MAIN();
