// Figure 4: the number of Alexa Top-1M domains whose certificate's OCSP
// responder was unreachable, per vantage point over time. Paper shape:
// ~163K domains (25%) unable during the Comodo outage (Oregon/Sydney/Seoul,
// Apr 25); ~77K (13%) during the Digicert outage from Seoul (Aug 27); Sao
// Paulo persistently unable for 318 domains (the digitalcertvalidation /
// wellsfargo.com story).
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "measurement/alexa_scan.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 4: Alexa domains impacted by responder outages",
                      "Fig 4 (domains unable to fetch OCSP, per region)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.certs_per_responder = 1;
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(2);
  scan.validate_responses = false;
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  std::size_t ocsp_domains = 0;
  for (const auto& meta : ecosystem.domains()) {
    if (meta.ocsp) ++ocsp_domains;
  }

  // Chart: log-ish domain counts per step per region.
  std::vector<util::Series> series;
  for (net::Region region : net::all_regions()) {
    util::Series s;
    s.label = net::to_string(region);
    const std::size_t g = static_cast<std::size_t>(region);
    for (const auto& step : scanner.steps()) {
      const double day =
          static_cast<double>((step.when - config.campaign_start).seconds) /
          86400.0;
      s.add(day, static_cast<double>(step.domains_unable[g]));
    }
    series.push_back(std::move(s));
  }
  util::ChartOptions options;
  options.title = "Domains unable to fetch OCSP (count, scaled 1:10 Alexa)";
  options.x_label = "days since Apr 25";
  options.y_label = "# domains";
  options.height = 18;
  std::printf("%s\n", util::render_chart(series, options).c_str());

  // Peak impact per region and the headline events.
  std::printf("population: %zu Alexa domains with OCSP (scaled 1:10 from ~906k)\n\n",
              ocsp_domains);
  std::printf("peak domains unable, by vantage point:\n");
  for (net::Region region : net::all_regions()) {
    const std::size_t g = static_cast<std::size_t>(region);
    std::size_t peak = 0;
    std::size_t floor = SIZE_MAX;
    for (const auto& step : scanner.steps()) {
      peak = std::max(peak, step.domains_unable[g]);
      floor = std::min(floor, step.domains_unable[g]);
    }
    std::printf("  %-10s peak %6zu (%.1f%% of OCSP domains)   baseline %zu\n",
                net::to_string(region), peak,
                100.0 * static_cast<double>(peak) /
                    static_cast<double>(ocsp_domains),
                floor == SIZE_MAX ? 0 : floor);
  }
  std::printf(
      "\n[paper: Comodo outage ~25%% of domains from Oregon/Sydney/Seoul;\n"
      " Digicert outage ~13%% from Seoul; Sao Paulo baseline 318 domains "
      "(0.05%%)]\n");

  // The paper's one-shot Alexa1M snapshot (May 1st, 2018).
  measurement::AlexaScanConfig snapshot;
  const measurement::AlexaScanResult alexa =
      measurement::run_alexa_scan(ecosystem, snapshot);
  std::printf(
      "\nAlexa one-shot snapshot (May 1st) [paper: 606,367 certs, 128 "
      "responders]:\n  %zu domains via %zu responders\n",
      alexa.domains_probed, alexa.responders_touched);
  for (net::Region region : net::all_regions()) {
    const std::size_t g = static_cast<std::size_t>(region);
    std::printf("  %-10s unreachable %5zu   unusable-response %5zu\n",
                net::to_string(region), alexa.domains_unreachable[g],
                alexa.domains_unusable[g]);
  }
  std::printf("  dark from every vantage point: %zu domains\n",
              alexa.domains_dark_everywhere);
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
