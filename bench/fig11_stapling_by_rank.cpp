// Figure 11: OCSP Stapling adoption as a function of website popularity.
// Paper shape: roughly 35% of OCSP-enabled domains staple, with popular
// domains noticeably more likely (top bins ~40%+, tail below 30%).
// Measured the paper's way: actual TLS handshakes against a sampled set of
// simulated web servers, not just metadata counting.
#include <cstdio>

#include "analysis/adoption.hpp"
#include "common.hpp"
#include "webserver/webserver.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 11: OCSP Stapling adoption vs Alexa rank",
                      "Fig 11 (% of OCSP domains that staple, per rank bin)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  // Metadata view over the full population.
  const auto adoption = analysis::adoption_by_rank(ecosystem, 100);
  util::Series staple;
  staple.label = "OCSP domains that support OCSP Stapling";
  for (std::size_t i = 0; i < adoption.bin_centers.size(); ++i) {
    staple.add(adoption.bin_centers[i], adoption.staple_pct[i]);
  }
  util::ChartOptions options;
  options.title = "Stapling adoption vs Alexa rank (scaled 1:10)";
  options.x_label = "Alexa rank";
  options.y_label = "% of OCSP domains";
  std::printf("%s\n", util::render_chart({staple}, options).c_str());

  double avg = 0;
  for (double v : adoption.staple_pct) avg += v;
  avg /= static_cast<double>(adoption.staple_pct.size());
  std::printf("measured: average %.1f%% (paper ~35%%); top bin %.1f%% vs tail bin %.1f%%\n\n",
              avg, adoption.staple_pct.front(), adoption.staple_pct.back());

  // Handshake-scan cross-check: drive real TLS handshakes against a sample
  // of instantiated web servers, as Censys does, and compare.
  util::Rng rng(config.seed ^ 0x5ca9);
  tls::TlsDirectory directory;
  std::vector<std::unique_ptr<webserver::WebServer>> servers;
  std::size_t sampled = 0;
  std::size_t staplers = 0;
  const util::SimTime when = config.campaign_start + util::Duration::days(5);
  loop.run_until(when - util::Duration::days(1));
  for (const auto& meta : ecosystem.domains()) {
    if (!meta.ocsp || !rng.chance(0.01)) continue;  // 1% handshake sample
    const std::string domain = "rank" + std::to_string(meta.rank) + ".example";
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = config.campaign_start - util::Duration::days(30);
    request.lifetime = util::Duration::days(365);
    request.must_staple = meta.must_staple != 0;
    request.ocsp_urls = {"http://" +
                         ecosystem.responders()[meta.responder].host + "/"};
    auto& authority = ecosystem.authority(meta.ca);
    webserver::WebServerConfig server_config;
    server_config.software = webserver::Software::kIdeal;
    server_config.stapling_enabled = meta.staples != 0;
    servers.push_back(std::make_unique<webserver::WebServer>(
        domain, authority.chain_for(authority.issue(request, rng)),
        server_config, ecosystem.network()));
    servers.back()->install(directory);
    servers.back()->start(when - util::Duration::hours(2));
    ++sampled;
  }
  loop.run_until(when);
  for (const auto& server : servers) {
    tls::ClientHello hello;
    hello.server_name = server->domain();
    hello.status_request = true;
    tls::ServerHello server_hello;
    const auto obs = tls::observe_handshake(directory, hello, ecosystem.roots(),
                                            when, server_hello);
    if (obs.staple_present) ++staplers;
  }
  std::printf("handshake cross-check: %zu sampled domains, %.1f%% stapled in a live TLS handshake\n",
              sampled,
              sampled ? 100.0 * static_cast<double>(staplers) /
                            static_cast<double>(sampled)
                      : 0.0);
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
