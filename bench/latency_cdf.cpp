// OCSP lookup latency CDF per vantage point — context for the paper's §3
// related-work numbers (Stark et al. 2012: 291ms median; Zhu et al. 2016:
// 20ms median thanks to CDN fronting). Our latency model is geographic
// RTT-based; the point is the per-vantage ORDERING and spread, which drive
// the argument that client-side OCSP lookups add real handshake latency —
// the cost stapling removes.
#include <cstdio>

#include "common.hpp"
#include "ocsp/request.hpp"

using namespace mustaple;

int main() {
  bench::print_header("OCSP lookup latency by vantage point",
                      "section 3 context (Stark 2012 / Zhu 2016 latencies)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.certs_per_responder = 1;
  config.campaign_end = util::make_time(2018, 4, 27);
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  loop.run_until(config.campaign_start);

  std::printf("%-10s %10s %10s %10s\n", "vantage", "p50 (ms)", "p90 (ms)",
              "p99 (ms)");
  for (net::Region region : net::all_regions()) {
    util::Cdf latency;
    for (const auto& target : ecosystem.scan_targets()) {
      if (!target.cert.extensions().supports_ocsp()) continue;
      const x509::Certificate& issuer =
          ecosystem.authority(target.ca_index).intermediate_cert();
      const auto id = ocsp::CertId::for_certificate(target.cert, issuer);
      auto url = net::parse_url(target.cert.extensions().ocsp_urls.front());
      if (!url.ok()) continue;
      const auto result = ecosystem.network().http_post(
          region, url.value(), ocsp::OcspRequest::single(id).encode_der(),
          "application/ocsp-request");
      if (result.error == net::TransportError::kNone) {
        latency.add(result.latency_ms);
      }
    }
    std::printf("%-10s %10.0f %10.0f %10.0f\n", net::to_string(region),
                latency.quantile(0.5), latency.quantile(0.9),
                latency.quantile(0.99));
  }
  std::printf(
      "\n[context: the paper's motivation — every one of these round trips "
      "is paid\n by a client checking OCSP itself, and eliminated by "
      "stapling. Absolute\n values are the simulator's RTT model; the "
      "geographic ordering is the shape.]\n");
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
