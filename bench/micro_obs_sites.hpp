// Call-site functions for the obs overhead benchmark. The _off variants are
// defined in micro_obs_off.cpp, which is compiled with MUSTAPLE_OBS_OFF so
// every macro in that TU genuinely expands to nothing — the benchmark
// measures the real disabled-path cost, not a hand-written stand-in.
#pragma once

#include <cstdint>

namespace mustaple::bench_obs {

void off_log_site(std::int64_t i);
void off_count_site();
void off_count_labelled_site();
void off_observe_site(double x);
void off_span_site();

}  // namespace mustaple::bench_obs
