// perf_suite: the repo's hot-path performance program in one binary.
//
// Measures, in dependency order (crypto -> codec -> services -> campaign):
//   - SHA-256 compression throughput for EVERY dispatchable implementation
//     (scalar reference, unrolled, AVX2, SHA-NI where the CPU has them)
//   - certificate DER parses/sec over the generated ecosystem population
//   - OCSP response parses/sec over real responder-built bodies
//   - responder lookups/sec (build_response_der, the server hot path)
//   - probe round trips/sec (http_request_probe, the scanner hot path)
//   - a scaled Fig-3-style campaign's wall time at 1 thread and N threads,
//     with an output fingerprint proving the runs are bit-identical
//   - the memory story: kernel peak RSS plus the per-subsystem allocation
//     counters (util/alloc.hpp) the campaign charged
//
// Output: human-readable text on stdout always; `--json [path]` additionally
// writes a schema-versioned JSON document (default BENCH_perf.json) so CI
// can archive a trajectory of numbers and diff runs, and `--history <path>`
// appends a one-line summary record (schema mustaple-perf-history/1) to a
// JSONL trajectory file. Schema documented in docs/PERF.md; bump kSchema
// when fields change meaning.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "crypto/sha256.hpp"
#include "load_gen.hpp"
#include "net/url.hpp"
#include "obs/resource.hpp"
#include "ocsp/request.hpp"
#include "ocsp/response.hpp"
#include "util/alloc.hpp"
#include "util/hash.hpp"
#include "x509/certificate.hpp"

namespace {

// v2 added the "memory" section (peak RSS + per-subsystem allocator stats);
// v3 added the "meta" provenance block (git SHA, compiler, CPU model) so a
// BENCH_perf.json archived from CI says exactly what produced it;
// v4 added the "serving" section (real-socket OCSP throughput over
// net::SocketServer, measured by the bench/load_gen.hpp loopback harness).
constexpr const char* kSchema = "mustaple-perf/4";

#if !defined(MUSTAPLE_GIT_SHA)
#define MUSTAPLE_GIT_SHA "unknown"
#endif

std::string compiler_version() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// First "model name" line from /proc/cpuinfo (Linux); "unknown" elsewhere.
std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

/// Runs `fn` (one "item" of work per call) until at least `min_seconds` of
/// wall clock has elapsed, in geometrically growing batches so the clock is
/// read rarely. Returns items/second.
template <typename Fn>
double throughput(Fn&& fn, double min_seconds = 0.25) {
  // Warm-up: one call outside the timed region (page-in, lazy dispatch).
  fn();
  std::size_t batch = 1;
  std::size_t done = 0;
  mustaple::bench::Stopwatch watch;
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    for (std::size_t i = 0; i < batch; ++i) fn();
    done += batch;
    elapsed = watch.seconds();
    if (batch < (std::size_t{1} << 20)) batch *= 2;
  }
  return static_cast<double>(done) / elapsed;
}

/// Minimal JSON writer: the repo's obs/lint emitters hand-roll JSON per
/// file, and this suite's output is flat enough to do the same.
class Json {
 public:
  void open(const char* key) { pad_(); buf_ += '"'; buf_ += key; buf_ += "\": {\n"; ++depth_; first_ = true; }
  void close() { --depth_; buf_ += '\n'; pad_close_(); buf_ += '}'; first_ = false; }
  void str(const char* key, const std::string& value) {
    pad_(); buf_ += '"'; buf_ += key; buf_ += "\": \""; buf_ += value; buf_ += '"';
  }
  void num(const char* key, double value) {
    char tmp[64];
    std::snprintf(tmp, sizeof(tmp), "%.3f", value);
    pad_(); buf_ += '"'; buf_ += key; buf_ += "\": "; buf_ += tmp;
  }
  void integer(const char* key, unsigned long long value) {
    pad_(); buf_ += '"'; buf_ += key; buf_ += "\": "; buf_ += std::to_string(value);
  }
  void boolean(const char* key, bool value) {
    pad_(); buf_ += '"'; buf_ += key; buf_ += "\": "; buf_ += value ? "true" : "false";
  }
  std::string finish() { return "{\n" + buf_ + "\n}\n"; }

 private:
  void pad_() {
    if (!first_) buf_ += ",\n";
    first_ = false;
    buf_.append(static_cast<std::size_t>(2 * (depth_ + 1)), ' ');
  }
  void pad_close_() { buf_.append(static_cast<std::size_t>(2 * (depth_ + 1)), ' '); }
  std::string buf_;
  int depth_ = 0;
  bool first_ = true;
};

/// Order-independent-free fingerprint of a finished campaign: folds every
/// scanner output a bench consumer reads (step totals, per-responder stats,
/// derived censuses) into one 64-bit value. Two runs with different thread
/// counts must produce the same fingerprint — that is the determinism
/// contract perf_suite re-checks on every CI run.
std::uint64_t campaign_fingerprint(
    const mustaple::measurement::HourlyScanner& scanner) {
  using namespace mustaple;
  std::uint64_t h = util::fnv1a64("campaign");
  auto fold = [&h](std::uint64_t v) { h = util::hash_combine(h, util::mix64(v)); };
  for (const auto& step : scanner.steps()) {
    fold(static_cast<std::uint64_t>(step.when.unix_seconds));
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      fold(step.requests[g]);
      fold(step.successes[g]);
      fold(step.domains_unable[g]);
    }
    fold(step.responses_200);
    fold(step.unparseable);
    fold(step.serial_mismatch);
    fold(step.bad_signature);
  }
  for (std::size_t r = 0; r < scanner.responder_count(); ++r) {
    for (net::Region region : net::all_regions()) {
      const auto& s = scanner.stats(r, region);
      fold(s.requests);
      fold(s.http_successes);
      fold(s.usable_responses);
      fold(s.dns_failures + s.tcp_failures + s.http_errors + s.tls_failures);
      fold(s.produced_regressions);
      fold(s.cached_observations);
    }
  }
  fold(scanner.responders_with_outage());
  fold(scanner.responders_never_reachable());
  fold(scanner.responders_pre_generated());
  for (const auto& [rule, count] : scanner.lint_report().by_rule()) {
    h = util::hash_combine(h, util::fnv1a64(rule));
    fold(count);
  }
  return h;
}

struct CampaignRun {
  double seconds = 0.0;
  std::uint64_t fingerprint = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

CampaignRun run_campaign(const mustaple::measurement::EcosystemConfig& config,
                         std::size_t threads) {
  using namespace mustaple;
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(12);
  scan.threads = threads;
  measurement::HourlyScanner scanner(ecosystem, scan);
  bench::Stopwatch watch;
  scanner.run();
  CampaignRun run;
  run.seconds = watch.seconds();
  run.fingerprint = campaign_fingerprint(scanner);
  const auto totals = scanner.validation_cache_stats();
  run.cache_lookups = totals.lookups;
  run.cache_hits = totals.hits;
  run.cache_misses = totals.misses;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mustaple;
  bool want_json = false;
  std::string json_path = "BENCH_perf.json";
  std::string history_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      want_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      history_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]] [--history <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::print_header("perf_suite: hot-path throughput program",
                      "measurement infrastructure (no paper figure)");

  const std::string git_sha = MUSTAPLE_GIT_SHA;
  const std::string compiler = compiler_version();
  const std::string cpu = cpu_model();
  std::printf("meta: %s, %s\n      %s\n\n", git_sha.c_str(), compiler.c_str(),
              cpu.c_str());

  Json json;
  json.str("schema", kSchema);
  json.open("meta");
  json.str("git_sha", git_sha);
  json.str("compiler", compiler);
  json.str("cpu_model", cpu);
  json.close();
  json.integer("threads_hw", std::thread::hardware_concurrency());

  // Carried out of the section scopes below for the --history summary line.
  double hist_cert_parse_per_s = 0.0;
  double hist_probe_per_s = 0.0;
  double hist_threads1_s = 0.0;
  double hist_threads_n_s = 0.0;
  unsigned long long hist_peak_rss_bytes = 0;

  // ---- 1. SHA-256: every dispatchable implementation on a 64 KiB buffer.
  constexpr std::size_t kShaBytes = 64 * 1024;
  util::Bytes sha_buf(kShaBytes);
  for (std::size_t i = 0; i < sha_buf.size(); ++i) {
    sha_buf[i] = static_cast<std::uint8_t>(i * 0x9e ^ (i >> 7));
  }
  const crypto::Sha256Impl best = crypto::sha256_active_impl();
  double scalar_mbs = 0.0;
  double best_mbs = 0.0;
  std::printf("SHA-256 (64 KiB buffer, one-shot):\n");
  json.open("sha256");
  json.integer("buffer_bytes", kShaBytes);
  json.str("active", crypto::to_string(best));
  json.open("mb_per_s");
  for (crypto::Sha256Impl impl : crypto::sha256_available_impls()) {
    if (!crypto::sha256_set_impl(impl)) continue;
    const double per_s =
        throughput([&] { (void)crypto::Sha256::hash(sha_buf); });
    const double mbs = per_s * static_cast<double>(kShaBytes) / (1024.0 * 1024.0);
    std::printf("  %-10s %9.1f MB/s\n", crypto::to_string(impl), mbs);
    json.num(crypto::to_string(impl), mbs);
    if (impl == crypto::Sha256Impl::kScalar) scalar_mbs = mbs;
    if (impl == best) best_mbs = mbs;
  }
  crypto::sha256_set_impl(best);  // restore the dispatcher's choice
  json.close();
  const double sha_speedup = scalar_mbs > 0.0 ? best_mbs / scalar_mbs : 0.0;
  json.num("speedup_vs_scalar", sha_speedup);
  json.close();
  std::printf("  -> active=%s, %.2fx vs scalar\n\n", crypto::to_string(best),
              sha_speedup);

  // ---- Shared corpus: a mid-sized generated ecosystem.
  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.responder_count = 64;
  config.alexa_domains = 10'000;
  config.certs_per_responder = 3;
  config.campaign_end = util::make_time(2018, 5, 9);  // 2 weeks
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  measurement::Ecosystem ecosystem(config, loop);
  const auto& targets = ecosystem.scan_targets();

  // ---- 2. Certificate parses/sec over the population's DER.
  std::vector<util::Bytes> cert_ders;
  cert_ders.reserve(targets.size());
  for (const auto& t : targets) cert_ders.push_back(t.cert.encode_der());
  {
    std::size_t next = 0;
    const double per_s = throughput([&] {
      const auto parsed = x509::Certificate::parse(cert_ders[next]);
      if (!parsed.ok()) std::abort();
      next = (next + 1) % cert_ders.size();
    });
    hist_cert_parse_per_s = per_s;
    std::printf("certificate parse:   %10.0f certs/s  (corpus %zu)\n", per_s,
                cert_ders.size());
    json.open("cert_parse");
    json.num("certs_per_s", per_s);
    json.integer("corpus", cert_ders.size());
    json.close();
  }

  // ---- Per-target CertIds + responder-built response bodies.
  std::vector<ocsp::CertId> cert_ids;
  std::vector<std::size_t> responder_of;
  std::vector<util::Bytes> bodies;
  cert_ids.reserve(targets.size());
  for (const auto& t : targets) {
    if (!t.cert.extensions().supports_ocsp()) continue;
    const x509::Certificate& issuer =
        ecosystem.authority(t.ca_index).intermediate_cert();
    cert_ids.push_back(ocsp::CertId::for_certificate(t.cert, issuer));
    responder_of.push_back(t.responder_index);
  }
  const util::SimTime now = ecosystem.network().now();
  for (std::size_t i = 0; i < cert_ids.size(); ++i) {
    bodies.push_back(
        ecosystem.responder(responder_of[i]).build_response_der(cert_ids[i], now));
  }

  // ---- 3. OCSP response parses/sec.
  {
    std::size_t next = 0;
    const double per_s = throughput([&] {
      const auto parsed = ocsp::OcspResponse::parse(bodies[next]);
      if (!parsed.ok()) std::abort();
      next = (next + 1) % bodies.size();
    });
    std::printf("ocsp response parse: %10.0f responses/s  (corpus %zu)\n",
                per_s, bodies.size());
    json.open("ocsp_parse");
    json.num("responses_per_s", per_s);
    json.integer("corpus", bodies.size());
    json.close();
  }

  // ---- 4. Responder lookups/sec (the server-side hot path).
  {
    std::size_t next = 0;
    const double per_s = throughput([&] {
      (void)ecosystem.responder(responder_of[next])
          .build_response_der(cert_ids[next], now);
      next = (next + 1) % cert_ids.size();
    });
    std::printf("responder lookup:    %10.0f lookups/s\n", per_s);
    json.open("responder_lookup");
    json.num("lookups_per_s", per_s);
    json.close();
  }

  // ---- 5. Probe round trips/sec (the scanner-side hot path).
  {
    std::vector<net::Url> urls;
    std::vector<util::Bytes> request_ders;
    for (std::size_t i = 0; i < cert_ids.size(); ++i) {
      auto url = net::parse_url(
          ecosystem.responder(responder_of[i]).url());
      if (!url.ok()) std::abort();
      urls.push_back(url.value());
      request_ders.push_back(
          ocsp::OcspRequest::single(cert_ids[i]).encode_der());
    }
    std::size_t next = 0;
    std::uint64_t ordinal = 0;
    const double per_s = throughput([&] {
      net::HttpRequest request;
      request.method = "POST";
      request.body = request_ders[next];
      request.headers.set("content-type", "application/ocsp-request");
      const auto result = ecosystem.network().http_request_probe(
          net::Region::kVirginia, urls[next], std::move(request), ordinal++);
      (void)result;
      next = (next + 1) % urls.size();
    });
    hist_probe_per_s = per_s;
    std::printf("probe round trip:    %10.0f probes/s\n\n", per_s);
    json.open("probe");
    json.num("probes_per_s", per_s);
    json.close();
  }

  // ---- 6. Scaled campaign wall time, 1 thread vs N, identical outputs.
  {
    measurement::EcosystemConfig campaign_config = config;
    campaign_config.responder_count = 32;
    campaign_config.alexa_domains = 5'000;
    const std::size_t n_threads = 4;
    const CampaignRun one = run_campaign(campaign_config, 1);
    const CampaignRun many = run_campaign(campaign_config, n_threads);
    const bool identical = one.fingerprint == many.fingerprint;
    hist_threads1_s = one.seconds;
    hist_threads_n_s = many.seconds;
    std::printf("campaign (32 responders, 2 weeks, 12h cadence, validate+lint):\n");
    std::printf("  1 thread  %6.2fs   fingerprint %016llx\n", one.seconds,
                static_cast<unsigned long long>(one.fingerprint));
    std::printf("  %zu threads %6.2fs   fingerprint %016llx  -> %s\n",
                n_threads, many.seconds,
                static_cast<unsigned long long>(many.fingerprint),
                identical ? "identical" : "MISMATCH");
    std::printf("  validation cache: %llu lookups, %llu hits, %llu misses "
                "(hits+misses %s lookups)\n\n",
                static_cast<unsigned long long>(many.cache_lookups),
                static_cast<unsigned long long>(many.cache_hits),
                static_cast<unsigned long long>(many.cache_misses),
                many.cache_hits + many.cache_misses == many.cache_lookups
                    ? "=="
                    : "!=");
    json.open("campaign");
    json.num("threads1_s", one.seconds);
    json.num("threadsN_s", many.seconds);
    json.integer("threads_n", n_threads);
    json.boolean("outputs_identical", identical);
    json.integer("cache_lookups", many.cache_lookups);
    json.integer("cache_hits", many.cache_hits);
    json.integer("cache_misses", many.cache_misses);
    json.close();
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: campaign outputs differ across thread counts\n");
      return 1;
    }
    if (many.cache_hits + many.cache_misses != many.cache_lookups) {
      std::fprintf(stderr, "FATAL: cache conservation violated\n");
      return 1;
    }
  }

  // ---- 7. Serving: real-socket OCSP throughput (net::SocketServer +
  // pre-generated responder + wire ResponseCache) over loopback TCP, with
  // the pipelined RFC 6960 GET/POST mix. A short burst here keeps the suite
  // fast; bench/ocsp_load runs the same harness longer for the >=100k req/s
  // acceptance measurement.
  {
    bench::LoadGenConfig serve_config;
    serve_config.seconds = 1.0;
    serve_config.certs = 32;
    serve_config.client_threads = 2;
    serve_config.server_workers = 2;
    bench::OcspLoadHarness harness(serve_config);
    const auto status = harness.start();
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: serving harness failed to start: %s\n",
                   status.error().to_string().c_str());
      return 1;
    }
    const bench::LoadGenResult serve = harness.run();
    harness.stop();
    std::printf("serving (loopback, %zu client threads, %zu workers, "
                "pipeline %zu, GET/POST mix):\n",
                serve_config.client_threads, serve_config.server_workers,
                serve_config.pipeline_depth);
    std::printf("  %10.0f req/s  (%llu requests in %.2fs, %llu errors)\n",
                serve.rps, static_cast<unsigned long long>(serve.requests),
                serve.seconds, static_cast<unsigned long long>(serve.errors));
    std::printf("  wire cache: %llu lookups, %llu hits\n\n",
                static_cast<unsigned long long>(serve.cache.lookups),
                static_cast<unsigned long long>(serve.cache.hits));
    json.open("serving");
    json.num("requests_per_s", serve.rps);
    json.integer("requests", serve.requests);
    json.integer("errors", serve.errors);
    json.integer("client_threads", serve_config.client_threads);
    json.integer("server_workers", serve_config.server_workers);
    json.integer("pipeline_depth", serve_config.pipeline_depth);
    json.num("get_fraction", serve_config.get_fraction);
    json.integer("server_requests", serve.server.requests);
    json.integer("server_connections", serve.server.connections_accepted);
    json.integer("cache_lookups", serve.cache.lookups);
    json.integer("cache_hits", serve.cache.hits);
    json.close();
    if (serve.errors > 0 || serve.requests == 0) {
      std::fprintf(stderr, "FATAL: serving burst failed (%llu errors, "
                   "%llu requests)\n",
                   static_cast<unsigned long long>(serve.errors),
                   static_cast<unsigned long long>(serve.requests));
      return 1;
    }
  }

  // ---- 8. Memory: kernel peak RSS for the whole suite plus the named
  // allocation counters every wired subsystem charged (corpus build + both
  // campaigns). Conservation (allocated - freed == outstanding) is asserted
  // here at a quiescent point, at whatever thread count ran above.
  {
    const obs::ResourceUsage usage = obs::read_resource_usage();
    hist_peak_rss_bytes = usage.peak_rss_bytes;
    std::printf("memory (whole suite):\n");
    std::printf("  peak RSS %10.1f MiB\n",
                static_cast<double>(usage.peak_rss_bytes) / (1024.0 * 1024.0));
    json.open("memory");
    json.integer("peak_rss_bytes", usage.peak_rss_bytes);
    json.num("user_cpu_s", usage.user_cpu_seconds);
    json.num("system_cpu_s", usage.system_cpu_seconds);
    json.open("alloc");
    bool conserved = true;
    util::visit_alloc_counters([&](const std::string& name,
                                   const util::AllocCounter& counter) {
      std::printf("  alloc %-24s %9.1f KiB allocated, %9.1f KiB peak "
                  "outstanding\n",
                  name.c_str(),
                  static_cast<double>(counter.allocated_bytes()) / 1024.0,
                  static_cast<double>(counter.peak_outstanding_bytes()) /
                      1024.0);
      json.open(name.c_str());
      json.integer("allocated_bytes", counter.allocated_bytes());
      json.integer("freed_bytes", counter.freed_bytes());
      json.integer("outstanding_bytes", counter.outstanding_bytes());
      json.integer("peak_outstanding_bytes",
                   counter.peak_outstanding_bytes());
      json.close();
      if (counter.allocated_bytes() - counter.freed_bytes() !=
          counter.outstanding_bytes()) {
        conserved = false;
      }
    });
    json.close();
    json.close();
    std::printf("\n");
    if (!conserved) {
      std::fprintf(stderr, "FATAL: allocation conservation violated\n");
      return 1;
    }
  }

  if (want_json) {
    const std::string doc = json.finish();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("(JSON written to %s)\n", json_path.c_str());
  }

  if (!history_path.empty()) {
    // One self-contained record per run; CI appends these to
    // BENCH_history.jsonl and renders a delta table across commits.
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"schema\": \"mustaple-perf-history/1\", \"git_sha\": \"%s\", "
        "\"sha256_best_mb_s\": %.1f, \"cert_parse_per_s\": %.0f, "
        "\"probe_per_s\": %.0f, \"campaign_threads1_s\": %.3f, "
        "\"campaign_threadsN_s\": %.3f, \"peak_rss_bytes\": %llu}\n",
        git_sha.c_str(), best_mbs, hist_cert_parse_per_s, hist_probe_per_s,
        hist_threads1_s, hist_threads_n_s, hist_peak_rss_bytes);
    std::FILE* f = std::fopen(history_path.c_str(), "a");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", history_path.c_str());
      return 1;
    }
    std::fwrite(line, 1, std::strlen(line), f);
    std::fclose(f);
    std::printf("(history line appended to %s)\n", history_path.c_str());
  }
  return 0;
}
