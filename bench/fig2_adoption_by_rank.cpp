// Figure 2: OCSP adoption as a function of website popularity.
// Paper shape: HTTPS support ~75% across the whole rank range; of those,
// ~91.3% support OCSP; popular domains slightly more likely on both.
#include <cstdio>

#include "analysis/adoption.hpp"
#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 2: HTTPS & OCSP adoption vs Alexa rank",
                      "Fig 2 (percent per rank bin of 10,000)");

  measurement::EcosystemConfig config = bench::paper_ecosystem();
  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);

  const auto adoption = analysis::adoption_by_rank(ecosystem, 100);

  util::Series https;
  https.label = "Domains with certificate (HTTPS)";
  util::Series ocsp;
  ocsp.label = "Certificates with OCSP responder";
  for (std::size_t i = 0; i < adoption.bin_centers.size(); ++i) {
    https.add(adoption.bin_centers[i], adoption.https_pct[i]);
    ocsp.add(adoption.bin_centers[i], adoption.ocsp_pct[i]);
  }
  util::ChartOptions options;
  options.title = "Adoption vs Alexa rank (scaled 1:10)";
  options.x_label = "Alexa rank";
  options.y_label = "percent";
  std::printf("%s\n", util::render_chart({https, ocsp}, options).c_str());

  double https_avg = 0;
  double ocsp_avg = 0;
  for (std::size_t i = 0; i < adoption.bin_centers.size(); ++i) {
    https_avg += adoption.https_pct[i];
    ocsp_avg += adoption.ocsp_pct[i];
  }
  https_avg /= static_cast<double>(adoption.bin_centers.size());
  ocsp_avg /= static_cast<double>(adoption.bin_centers.size());
  std::printf("measured: HTTPS avg %.1f%% (paper ~75%%), OCSP-of-HTTPS avg %.1f%% (paper 91.3%%)\n",
              https_avg, ocsp_avg);
  std::printf("          top-bin HTTPS %.1f%% vs tail-bin %.1f%% (popular lean, as in the paper)\n",
              adoption.https_pct.front(), adoption.https_pct.back());
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
