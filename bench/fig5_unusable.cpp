// Figure 5: the percentage of HTTP-successful OCSP responses that are
// unusable, split by cause: malformed ASN.1 structure, serial mismatch, and
// signature failure. Paper shape: the vast majority of errors are malformed
// structure (8 persistently-malformed responders ~1.6%; spikes when the
// sheca "0"-body responders misbehave on Apr 29 and Jul 28, and the
// postsignum responders from May 1).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 5: unusable OCSP responses by cause",
                      "Fig 5 (percent of received responses, over time)");

  // Full campaign window so the Apr 29 / May 1 / Jul 28 spikes land, but
  // light per-responder sampling.
  measurement::EcosystemConfig config = bench::paper_ecosystem();
  config.certs_per_responder = 1;
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(3);  // the spikes last 3-17 hours
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  util::Series unparseable;
  unparseable.label = "ASN.1 Unparseable";
  util::Series serial;
  serial.label = "SerialUnmatch";
  util::Series signature;
  signature.label = "Signature";
  for (const auto& step : scanner.steps()) {
    if (step.responses_200 == 0) continue;
    const double day =
        static_cast<double>((step.when - config.campaign_start).seconds) /
        86400.0;
    const double denom = static_cast<double>(step.responses_200);
    unparseable.add(day, 100.0 * static_cast<double>(step.unparseable) / denom);
    serial.add(day, 100.0 * static_cast<double>(step.serial_mismatch) / denom);
    signature.add(day, 100.0 * static_cast<double>(step.bad_signature) / denom);
  }
  util::ChartOptions options;
  options.title = "Unusable responses (%) by cause";
  options.x_label = "days since Apr 25";
  options.y_label = "% of responses";
  options.height = 16;
  std::printf("%s\n",
              util::render_chart({unparseable, serial, signature}, options)
                  .c_str());

  std::size_t responses = 0;
  std::size_t bad_asn1 = 0;
  std::size_t bad_serial = 0;
  std::size_t bad_sig = 0;
  double peak_asn1 = 0;
  for (const auto& step : scanner.steps()) {
    responses += step.responses_200;
    bad_asn1 += step.unparseable;
    bad_serial += step.serial_mismatch;
    bad_sig += step.bad_signature;
    if (step.responses_200 > 0) {
      peak_asn1 = std::max(peak_asn1,
                           100.0 * static_cast<double>(step.unparseable) /
                               static_cast<double>(step.responses_200));
    }
  }
  std::printf("totals over campaign: %zu responses\n", responses);
  std::printf("  ASN.1 unparseable: %zu (%.2f%%), peak step %.2f%%   [paper: dominant cause; spikes to ~3%%]\n",
              bad_asn1, 100.0 * static_cast<double>(bad_asn1) / static_cast<double>(responses),
              peak_asn1);
  std::printf("  serial mismatch:   %zu (%.2f%%)                  [paper: ~0 among well-formed]\n",
              bad_serial,
              100.0 * static_cast<double>(bad_serial) / static_cast<double>(responses));
  std::printf("  bad signature:     %zu (%.2f%%)                  [paper: ~0 among well-formed]\n",
              bad_sig,
              100.0 * static_cast<double>(bad_sig) / static_cast<double>(responses));
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
