// Figure 7: CDF (over responders) of the average number of serial numbers
// per OCSP response. Paper shape: 96.2% of responders put exactly one
// serial in a response; 4.8% more than one; 17 (3.3%) always pack 20.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace mustaple;
  bench::print_header("Figure 7: serial numbers per OCSP response (CDF)",
                      "Fig 7 (per-responder averages; y axis from 90%)");

  measurement::EcosystemConfig config = bench::quality_ecosystem();
  measurement::ScanConfig scan;
  scan.interval = util::Duration::hours(6);
  bench::print_campaign(config, scan);

  net::EventLoop loop(config.campaign_start - util::Duration::days(1));
  bench::Stopwatch watch;
  measurement::Ecosystem ecosystem(config, loop);
  measurement::HourlyScanner scanner(ecosystem, scan);
  scanner.run();

  const util::Cdf cdf = scanner.cdf_serials(net::Region::kVirginia);
  util::ChartOptions options;
  options.title = "CDF: avg serial numbers per response (Virginia)";
  options.x_label = "avg # serials";
  options.y_label = "CDF";
  std::printf("%s\n", util::render_cdf(cdf, options).c_str());

  std::printf("measured (paper in brackets):\n");
  std::printf("  exactly one serial:  %.1f%%  [96.2%%]\n",
              100.0 * cdf.fraction_at_most(1.0));
  std::printf("  more than one:       %.1f%%  [4.8%%]\n",
              100.0 * (1.0 - cdf.fraction_at_most(1.0)));
  std::printf("  twenty serials:      %.1f%%  [3.3%%]\n",
              100.0 * (1.0 - cdf.fraction_at_most(19.0)));
  for (net::Region region : {net::Region::kParis, net::Region::kSydney}) {
    const util::Cdf other = scanner.cdf_serials(region);
    std::printf("  cross-check %-9s one-serial fraction: %.1f%%\n",
                net::to_string(region), 100.0 * other.fraction_at_most(1.0));
  }
  std::printf("\n[%.2fs]\n", watch.seconds());
  return 0;
}
