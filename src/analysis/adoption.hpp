// Adoption analyses over the domain population: Fig 2 (HTTPS & OCSP by
// Alexa rank), Fig 11 (OCSP Stapling by rank), Fig 12 (OCSP & stapling over
// time, May 2016 - Sep 2018).
#pragma once

#include <vector>

#include "measurement/ecosystem.hpp"
#include "util/stats.hpp"

namespace mustaple::analysis {

struct AdoptionByRank {
  std::vector<double> bin_centers;  ///< Alexa rank bin midpoints
  std::vector<double> https_pct;    ///< % of domains with a certificate
  std::vector<double> ocsp_pct;     ///< % of HTTPS domains whose cert has OCSP
  std::vector<double> staple_pct;   ///< % of OCSP domains that staple
};

/// Bins the population by rank (paper: bins of 10,000).
AdoptionByRank adoption_by_rank(const measurement::Ecosystem& ecosystem,
                                std::size_t bins = 100);

struct AdoptionOverTime {
  std::vector<int> month_index;     ///< months since 2016-05
  std::vector<double> ocsp_pct;     ///< certificates with OCSP responder
  std::vector<double> staple_pct;   ///< domains with OCSP Stapling
};

/// Monthly snapshots across the paper's Fig 12 window (28 months).
AdoptionOverTime adoption_over_time(const measurement::Ecosystem& ecosystem);

}  // namespace mustaple::analysis
