// The §6 browser test suite. Methodology mirrors the paper's: obtain a
// Must-Staple certificate from a (simulated) Let's Encrypt, serve it from an
// Apache with stapling deliberately disabled (SSLUseStapling off), point
// every browser profile at the domain, and record (1) whether it solicited a
// staple, (2) whether it rejected the unstapled Must-Staple certificate, and
// (3) whether it fell back to its own OCSP request — Table 2.
//
// The suite also runs the security ablation implied by §2.3: with a REVOKED
// Must-Staple certificate behind a network attacker who strips staples and
// blocks OCSP, which browsers are actually protected?
#pragma once

#include <string>
#include <vector>

#include "browser/browser.hpp"

namespace mustaple::analysis {

struct BrowserRow {
  browser::BrowserProfile profile;
  bool requested_ocsp_response = false;  ///< sent status_request
  bool respected_must_staple = false;    ///< hard-failed without a staple
  bool sent_own_ocsp_request = false;    ///< fallback query
  browser::Verdict verdict_without_staple = browser::Verdict::kConnectionFailed;
  /// Ablation: verdict when the cert is REVOKED and an attacker strips the
  /// staple and blocks OCSP (kAcceptSoftFail here = the attack succeeds).
  browser::Verdict verdict_revoked_attacked = browser::Verdict::kConnectionFailed;
};

struct BrowserSuiteResult {
  std::vector<BrowserRow> rows;

  std::size_t count_requesting() const;
  std::size_t count_respecting() const;
  std::size_t count_own_ocsp() const;
  /// Browsers for which the §2.3 staple-stripping attack on a revoked
  /// certificate succeeds (they accept it).
  std::size_t count_attack_succeeds() const;
};

/// Runs the suite against the given profiles (defaults to Table 2's 16).
BrowserSuiteResult run_browser_suite(
    std::uint64_t seed,
    const std::vector<browser::BrowserProfile>& profiles =
        browser::standard_profiles());

}  // namespace mustaple::analysis
