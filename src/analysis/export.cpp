#include "analysis/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace mustaple::analysis {

namespace {

std::string csv_quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string csv_from_series(const std::vector<util::Series>& series,
                            const std::string& x_header) {
  // Collect the union of x values, then one row per x.
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (std::size_t i = 0; i < series[s].x.size() && i < series[s].y.size();
         ++i) {
      auto& row = rows[series[s].x[i]];
      row.resize(series.size());
      row[s] = format_number(series[s].y[i]);
    }
  }
  std::string out = csv_quote(x_header);
  for (const auto& s : series) out += "," + csv_quote(s.label);
  out += '\n';
  for (const auto& [x, cells] : rows) {
    out += format_number(x);
    for (std::size_t s = 0; s < series.size(); ++s) {
      out += ",";
      if (s < cells.size()) out += cells[s];
    }
    out += '\n';
  }
  return out;
}

std::string csv_from_cdf(const util::Cdf& cdf) {
  std::string out = "value,cdf\n";
  const auto values = cdf.sorted_finite();
  const double n = static_cast<double>(cdf.count());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += format_number(values[i]) + "," +
           format_number(static_cast<double>(i + 1) / n) + '\n';
  }
  if (cdf.infinite_fraction() > 0.0) {
    out += "# infinite_mass," + format_number(cdf.infinite_fraction()) + '\n';
  }
  return out;
}

std::string csv_from_table(const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (c) out += ',';
    out += csv_quote(headers[c]);
  }
  out += '\n';
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < headers.size(); ++c) {
      if (c) out += ',';
      if (c < row.size()) out += csv_quote(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool write_export(const std::string& directory, const std::string& name,
                  const std::string& content) {
  if (directory.empty()) return true;
  const std::string path = directory + "/" + name;
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "export: cannot open %s\n", path.c_str());
    return false;
  }
  file << content;
  return static_cast<bool>(file);
}

}  // namespace mustaple::analysis
