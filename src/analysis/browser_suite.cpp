#include "analysis/browser_suite.hpp"

#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "webserver/webserver.hpp"

namespace mustaple::analysis {

std::size_t BrowserSuiteResult::count_requesting() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.requested_ocsp_response ? 1 : 0;
  return n;
}

std::size_t BrowserSuiteResult::count_respecting() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.respected_must_staple ? 1 : 0;
  return n;
}

std::size_t BrowserSuiteResult::count_own_ocsp() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.sent_own_ocsp_request ? 1 : 0;
  return n;
}

std::size_t BrowserSuiteResult::count_attack_succeeds() const {
  std::size_t n = 0;
  for (const auto& row : rows) {
    n += row.verdict_revoked_attacked == browser::Verdict::kAcceptSoftFail ? 1 : 0;
  }
  return n;
}

BrowserSuiteResult run_browser_suite(
    std::uint64_t seed, const std::vector<browser::BrowserProfile>& profiles) {
  using util::Duration;
  const util::SimTime now = util::make_time(2018, 5, 15);

  util::Rng rng(seed);
  net::EventLoop loop(now - Duration::days(1));
  net::Network network(loop, seed);

  // A Let's Encrypt-alike that issues our Must-Staple test certificate.
  ca::CertificateAuthority authority("Let's Encrypt", now - Duration::days(900),
                                     rng);
  x509::RootStore roots;
  roots.add(authority.root_cert());

  ca::OcspResponder responder(authority, ca::ResponderBehavior{},
                              "ocsp.test-ca.example", rng);
  responder.install(network);

  auto issue = [&](const std::string& domain) {
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = now - Duration::days(10);
    request.lifetime = Duration::days(90);
    request.must_staple = true;
    request.ocsp_urls = {"http://ocsp.test-ca.example/"};
    return authority.issue(request, rng);
  };

  // Experiment 1 (the paper's): valid Must-Staple cert, stapling OFF.
  const x509::Certificate unstapled_cert = issue("muststaple.test.example");
  webserver::WebServerConfig no_staple_config;
  no_staple_config.software = webserver::Software::kApache;
  no_staple_config.stapling_enabled = false;  // SSLUseStapling off
  webserver::WebServer unstapled_server("muststaple.test.example",
                                        authority.chain_for(unstapled_cert),
                                        no_staple_config, network);

  // Experiment 2 (ablation): REVOKED Must-Staple cert behind an attacker
  // who strips staples (stapling off) and blocks the OCSP responder.
  const x509::Certificate revoked_cert = issue("revoked.test.example");
  authority.revoke(revoked_cert.serial(), now - Duration::days(2),
                   crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});
  webserver::WebServer revoked_server("revoked.test.example",
                                      authority.chain_for(revoked_cert),
                                      no_staple_config, network);
  {
    net::FaultRule block_ocsp;  // attacker blanket-blocks the responder
    block_ocsp.canonical_host = "ocsp.test-ca.example";
    block_ocsp.mode = net::FaultMode::kTcpConnectFailure;
    network.faults().add(block_ocsp);
  }

  tls::TlsDirectory directory;
  unstapled_server.install(directory);
  revoked_server.install(directory);
  loop.run_until(now);

  BrowserSuiteResult result;
  for (const auto& profile : profiles) {
    BrowserRow row;
    row.profile = profile;
    const browser::VisitResult unstapled =
        browser::visit(profile, directory, "muststaple.test.example", roots,
                       now, &network);
    row.requested_ocsp_response = unstapled.sent_status_request;
    row.respected_must_staple =
        unstapled.verdict == browser::Verdict::kHardFail;
    row.sent_own_ocsp_request = unstapled.sent_own_ocsp_request;
    row.verdict_without_staple = unstapled.verdict;

    const browser::VisitResult attacked = browser::visit(
        profile, directory, "revoked.test.example", roots, now, &network);
    row.verdict_revoked_attacked = attacked.verdict;
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace mustaple::analysis
