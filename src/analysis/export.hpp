// Machine-readable exports for the figure/table data: CSV serialization of
// series, CDFs, and tables, and an optional file sink used by the bench
// binaries (pass a directory as argv[1] to get CSVs alongside the charts).
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace mustaple::analysis {

/// Multiple aligned series -> "x,label1,label2,...\n..." CSV. Series are
/// matched by x value (missing points are left empty).
std::string csv_from_series(const std::vector<util::Series>& series,
                            const std::string& x_header = "x");

/// Empirical CDF -> "value,cdf\n..." rows over the finite samples, with a
/// trailing comment row for any infinite mass.
std::string csv_from_cdf(const util::Cdf& cdf);

/// Generic table -> CSV with RFC-4180-style quoting.
std::string csv_from_table(const std::vector<std::string>& headers,
                           const std::vector<std::vector<std::string>>& rows);

/// Writes `content` to `<directory>/<name>` (creating nothing; the
/// directory must exist). Returns false and leaves a note on stderr on
/// failure. No-op returning true when `directory` is empty.
bool write_export(const std::string& directory, const std::string& name,
                  const std::string& content);

}  // namespace mustaple::analysis
