// The §7.2 web-server test suite (Table 3) plus the availability ablation
// from DESIGN.md: how each server model's stapling behaviour translates
// into client-visible staple availability under a responder outage.
//
// Methodology mirrors the paper's: a controlled OCSP responder (our own),
// a certificate chain with the Must-Staple extension, and scripted fault
// injection, observing the server's staples from a client.
#pragma once

#include <string>
#include <vector>

#include "webserver/webserver.hpp"

namespace mustaple::analysis {

struct WebServerRow {
  webserver::Software software = webserver::Software::kApache;
  /// Does the server have a staple ready for the very first client without
  /// delaying the handshake?
  bool prefetches = false;
  /// What the first client experienced instead.
  std::string first_client_note;
  double first_client_delay_ms = 0.0;
  /// Served from cache on a warm second request (no extra fetch)?
  bool caches = false;
  /// Refuses to serve a staple past its nextUpdate?
  bool respects_next_update = false;
  /// Keeps serving the old still-valid staple when the responder errors?
  bool retains_on_error = false;
  /// Did the server ever staple the responder's ERROR response to a client
  /// (the Apache misbehaviour)?
  bool serves_error_response = false;
};

struct StapleAvailabilityPoint {
  double hours_since_start = 0.0;
  bool staple_valid = false;
};

struct WebServerSuiteResult {
  std::vector<WebServerRow> rows;  ///< Apache, Nginx, Ideal
  /// Ablation: per software, fraction of handshakes over a 24h responder
  /// outage during which a hard-fail (Must-Staple-respecting) client could
  /// still connect.
  std::vector<std::pair<webserver::Software, double>> outage_availability;
};

WebServerSuiteResult run_webserver_suite(std::uint64_t seed);

}  // namespace mustaple::analysis
