#include "analysis/adoption.hpp"

namespace mustaple::analysis {

AdoptionByRank adoption_by_rank(const measurement::Ecosystem& ecosystem,
                                std::size_t bins) {
  const auto& domains = ecosystem.domains();
  AdoptionByRank out;
  if (domains.empty() || bins == 0) return out;
  const double max_rank = static_cast<double>(domains.size());

  util::BinnedRatio https(0, max_rank, bins);
  util::BinnedRatio ocsp(0, max_rank, bins);
  util::BinnedRatio staple(0, max_rank, bins);
  for (const auto& meta : domains) {
    const double rank = static_cast<double>(meta.rank);
    https.add(rank, meta.https != 0);
    if (meta.https) ocsp.add(rank, meta.ocsp != 0);
    if (meta.ocsp) staple.add(rank, meta.staples != 0);
  }
  for (std::size_t i = 0; i < bins; ++i) {
    out.bin_centers.push_back(https.bin_center(i));
    out.https_pct.push_back(https.percentage(i));
    out.ocsp_pct.push_back(ocsp.percentage(i));
    out.staple_pct.push_back(staple.percentage(i));
  }
  return out;
}

AdoptionOverTime adoption_over_time(const measurement::Ecosystem& ecosystem) {
  AdoptionOverTime out;
  constexpr int kMonths = 28;  // 2016-05 .. 2018-09
  for (int month = 0; month < kMonths; ++month) {
    std::size_t https_live = 0;
    std::size_t ocsp_live = 0;
    std::size_t staple_live = 0;
    for (const auto& meta : ecosystem.domains()) {
      if (!meta.https || meta.https_month == 0xff || meta.https_month > month) {
        continue;
      }
      ++https_live;
      if (meta.ocsp) ++ocsp_live;
      if (meta.staples && meta.staple_month != 0xff &&
          meta.staple_month <= month) {
        ++staple_live;
      }
    }
    out.month_index.push_back(month);
    out.ocsp_pct.push_back(
        https_live ? 100.0 * static_cast<double>(ocsp_live) /
                         static_cast<double>(https_live)
                   : 0.0);
    out.staple_pct.push_back(
        ocsp_live ? 100.0 * static_cast<double>(staple_live) /
                        static_cast<double>(ocsp_live)
                  : 0.0);
  }
  return out;
}

}  // namespace mustaple::analysis
