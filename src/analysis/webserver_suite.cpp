#include "analysis/webserver_suite.hpp"

#include "ca/authority.hpp"
#include "ca/responder.hpp"

namespace mustaple::analysis {

namespace {

using util::Duration;
using util::SimTime;

/// A disposable mini-world: one CA, one controllable responder, one server.
struct TestWorld {
  SimTime start;
  util::Rng rng;
  net::EventLoop loop;
  net::Network network;
  ca::CertificateAuthority authority;
  x509::RootStore roots;
  ca::OcspResponder responder;
  tls::TlsDirectory directory;

  TestWorld(std::uint64_t seed, ca::ResponderBehavior behavior)
      : start(util::make_time(2018, 6, 1)),
        rng(seed),
        loop(start),
        network(loop, seed),
        authority("TestCA", start - Duration::days(900), rng),
        responder(authority, behavior, "ocsp.testca.example", rng) {
    roots.add(authority.root_cert());
    responder.install(network);
  }

  webserver::WebServer make_server(webserver::Software software,
                                   const std::string& domain) {
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = start - Duration::days(10);
    request.lifetime = Duration::days(90);
    request.must_staple = true;
    request.ocsp_urls = {"http://ocsp.testca.example/"};
    const x509::Certificate leaf = authority.issue(request, rng);
    webserver::WebServerConfig config;
    config.software = software;
    webserver::WebServer server(domain, authority.chain_for(leaf), config,
                                network);
    return server;
  }

  /// One client handshake soliciting a staple; returns the observation.
  tls::HandshakeObservation connect(const std::string& domain, SimTime when) {
    loop.run_until(when);
    tls::ClientHello hello;
    hello.server_name = domain;
    hello.status_request = true;
    tls::ServerHello server_hello;
    return tls::observe_handshake(directory, hello, roots, when, server_hello);
  }
};

bool staple_ok(const tls::HandshakeObservation& obs) {
  return obs.staple_present && obs.staple_check && obs.staple_check->usable();
}

WebServerRow probe_software(std::uint64_t seed, webserver::Software software) {
  WebServerRow row;
  row.software = software;

  // ---- Experiment A: prefetch + caching (fresh server, healthy responder,
  // 7-day validity).
  {
    ca::ResponderBehavior behavior;
    behavior.pre_generate = false;
    behavior.validity = Duration::days(7);
    behavior.this_update_margin = Duration::hours(1);
    TestWorld world(seed, behavior);
    webserver::WebServer server = world.make_server(software, "a.example");
    server.install(world.directory);
    server.start(world.start);
    world.loop.run_until(world.start + Duration::minutes(5));

    const auto first =
        world.connect("a.example", world.start + Duration::minutes(10));
    const bool first_has_staple = staple_ok(first);
    row.prefetches = first_has_staple && first.handshake_delay_ms == 0.0;
    row.first_client_delay_ms = first.handshake_delay_ms;
    if (row.prefetches) {
      row.first_client_note = "staple ready";
    } else if (first_has_staple) {
      row.first_client_note = "pauses connection";  // Apache
    } else {
      row.first_client_note = "provides no response";  // Nginx
    }

    const std::size_t fetches_before = server.fetch_count();
    const auto second =
        world.connect("a.example", world.start + Duration::minutes(11));
    row.caches = staple_ok(second) && server.fetch_count() == fetches_before;
  }

  // ---- Experiment B: respect nextUpdate (30-minute validity; observe at
  // +45 minutes, within Apache's 1h cache TTL).
  {
    ca::ResponderBehavior behavior;
    behavior.pre_generate = false;
    behavior.validity = Duration::minutes(30);
    behavior.this_update_margin = Duration::secs(0);
    TestWorld world(seed + 1, behavior);
    webserver::WebServer server = world.make_server(software, "b.example");
    server.install(world.directory);
    server.start(world.start);
    // Warm the cache (two connects so Nginx has a staple too).
    world.connect("b.example", world.start + Duration::minutes(1));
    world.connect("b.example", world.start + Duration::minutes(2));

    const auto later =
        world.connect("b.example", world.start + Duration::minutes(47));
    // Respecting nextUpdate = the client never sees an EXPIRED staple.
    const bool served_expired =
        later.staple_present && later.staple_check &&
        later.staple_check->outcome == ocsp::CheckOutcome::kExpired;
    row.respects_next_update = !served_expired;
  }

  // ---- Experiment C: retain on error (1-day validity; responder goes
  // tryLater after warmup; observe at +2h, past Apache's cache TTL).
  {
    ca::ResponderBehavior behavior;
    behavior.pre_generate = false;
    behavior.validity = Duration::days(1);
    behavior.this_update_margin = Duration::hours(1);
    TestWorld world(seed + 2, behavior);
    webserver::WebServer server = world.make_server(software, "c.example");
    server.install(world.directory);
    server.start(world.start);
    world.connect("c.example", world.start + Duration::minutes(1));
    world.connect("c.example", world.start + Duration::minutes(2));

    world.responder.set_try_later(true);
    const auto during_error =
        world.connect("c.example", world.start + Duration::hours(2));
    row.retains_on_error = staple_ok(during_error);
    // Apache's specific misbehaviour: stapling the error response itself.
    if (during_error.staple_present && during_error.staple_check &&
        during_error.staple_check->outcome ==
            ocsp::CheckOutcome::kNotSuccessful) {
      row.serves_error_response = true;
    }
  }

  return row;
}

double outage_availability(std::uint64_t seed, webserver::Software software) {
  // 24h of handshakes every 10 minutes; the responder dies 1h in. A client
  // that respects Must-Staple can connect only while a VALID staple is
  // served. Validity period: 12h, so an ideal server rides out the outage
  // for hours; Apache discards its staple at the first failed refresh.
  ca::ResponderBehavior behavior;
  behavior.pre_generate = false;
  behavior.validity = Duration::hours(12);
  behavior.this_update_margin = Duration::hours(1);
  TestWorld world(seed, behavior);
  webserver::WebServer server = world.make_server(software, "o.example");
  server.install(world.directory);
  server.start(world.start);
  world.connect("o.example", world.start + Duration::minutes(1));
  world.connect("o.example", world.start + Duration::minutes(2));

  {
    net::FaultRule outage;
    outage.canonical_host = "ocsp.testca.example";
    outage.mode = net::FaultMode::kTcpConnectFailure;
    outage.window_start = world.start + Duration::hours(1);
    world.network.faults().add(outage);
  }

  std::size_t ok = 0;
  std::size_t total = 0;
  for (int minute = 10; minute <= 24 * 60; minute += 10) {
    const auto obs =
        world.connect("o.example", world.start + Duration::minutes(minute));
    ++total;
    if (staple_ok(obs)) ++ok;
  }
  return total ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
}

}  // namespace

WebServerSuiteResult run_webserver_suite(std::uint64_t seed) {
  WebServerSuiteResult result;
  for (webserver::Software software :
       {webserver::Software::kApache, webserver::Software::kNginx,
        webserver::Software::kIdeal}) {
    result.rows.push_back(probe_software(seed, software));
    result.outage_availability.emplace_back(
        software, outage_availability(seed + 10, software));
  }
  return result;
}

}  // namespace mustaple::analysis
