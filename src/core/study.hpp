// Public façade: run the paper's whole study — CA availability/quality
// scans, the CRL/OCSP consistency audit, the browser suite, and the
// web-server suite — against one seeded synthetic ecosystem, and render a
// readiness report answering the title question.
//
// Quickstart:
//   mustaple::core::StudyConfig config;      // defaults are scaled-down
//   mustaple::core::MustStapleStudy study(config);
//   mustaple::core::ReadinessReport report = study.run();
//   std::cout << report.render();
#pragma once

#include <string>

#include "analysis/adoption.hpp"
#include "analysis/browser_suite.hpp"
#include "analysis/webserver_suite.hpp"
#include "lint/lint.hpp"
#include "measurement/consistency.hpp"
#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"

namespace mustaple::core {

struct StudyConfig {
  measurement::EcosystemConfig ecosystem;
  measurement::ScanConfig scan;
  measurement::ConsistencyConfig consistency;
  bool run_availability_scan = true;
  bool run_consistency_audit = true;
  bool run_browser_suite = true;
  bool run_webserver_suite = true;

  // Observability (ignored when the obs layer is compiled out).
  /// Window of the sim-time series artifact (timeline.csv / timeline.json).
  util::Duration timeline_window = util::Duration::days(1);
  /// Directory the run's artifacts (timeline.csv, timeline.json,
  /// trace.json) are written to; empty disables artifact writing.
  std::string artifact_dir = ".";
  /// Trace events kept before further ones are counted as dropped.
  std::size_t trace_capacity = 200'000;
};

/// Verdict per principal, in the structure of the paper's §8 conclusion.
struct PrincipalVerdict {
  std::string principal;
  bool ready = false;
  std::string evidence;
};

struct ReadinessReport {
  measurement::Ecosystem::DeploymentStats deployment;

  // CA principal (§5).
  double average_failure_rate = 0.0;
  std::size_t responders_total = 0;
  std::size_t responders_with_outage = 0;
  std::size_t responders_never_reachable = 0;
  std::size_t consistency_discrepant_responders = 0;

  // Client principal (§6).
  std::size_t browsers_tested = 0;
  std::size_t browsers_requesting = 0;
  std::size_t browsers_respecting = 0;

  // Server principal (§7).
  std::size_t servers_tested = 0;
  std::size_t servers_fully_correct = 0;

  std::vector<PrincipalVerdict> verdicts;
  bool web_is_ready = false;

  /// Merged lint findings from the availability scan (per-probe response
  /// lint) and the consistency audit (CRL + cross-check lint). Also written
  /// to <artifact_dir>/lint_report.json — unconditionally, lint is not part
  /// of the obs layer.
  lint::LintReport lint;

  /// Per-phase wall-clock span summary (obs::Tracer); empty when the obs
  /// layer is compiled out.
  std::string trace_summary;

  /// Sim-time availability sparkline derived from the campaign timeline;
  /// empty when the obs layer is compiled out or no scan ran.
  std::string timeline_summary;

  /// Multi-line human-readable report.
  std::string render() const;
};

class MustStapleStudy {
 public:
  explicit MustStapleStudy(StudyConfig config);

  /// Runs all enabled study components and synthesizes the report.
  ReadinessReport run();

  /// Access to the underlying world (for extended analyses).
  measurement::Ecosystem& ecosystem() { return *ecosystem_; }

 private:
  StudyConfig config_;
  net::EventLoop loop_;
  std::unique_ptr<measurement::Ecosystem> ecosystem_;
};

}  // namespace mustaple::core
