// Public façade: run the paper's whole study — CA availability/quality
// scans, the CRL/OCSP consistency audit, the browser suite, and the
// web-server suite — against one seeded synthetic ecosystem, and render a
// readiness report answering the title question.
//
// Quickstart:
//   mustaple::core::StudyConfig config;      // defaults are scaled-down
//   mustaple::core::MustStapleStudy study(config);
//   mustaple::core::ReadinessReport report = study.run();
//   std::cout << report.render();
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/adoption.hpp"
#include "analysis/browser_suite.hpp"
#include "analysis/webserver_suite.hpp"
#include "lint/lint.hpp"
#include "measurement/consistency.hpp"
#include "measurement/ecosystem.hpp"
#include "measurement/scanner.hpp"
#include "obs/health.hpp"
#include "obs/introspect.hpp"
#include "obs/resource.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::core {

struct StudyConfig {
  measurement::EcosystemConfig ecosystem;
  measurement::ScanConfig scan;
  measurement::ConsistencyConfig consistency;
  bool run_availability_scan = true;
  bool run_consistency_audit = true;
  bool run_browser_suite = true;
  bool run_webserver_suite = true;

  // Observability (ignored when the obs layer is compiled out).
  /// Window of the sim-time series artifact (timeline.csv / timeline.json).
  util::Duration timeline_window = util::Duration::days(1);
  /// Directory the run's artifacts (timeline.csv, timeline.json,
  /// trace.json) are written to; empty disables artifact writing.
  std::string artifact_dir = ".";
  /// Trace events kept before further ones are counted as dropped.
  std::size_t trace_capacity = 200'000;
  /// Resource-monitor sampling cadence on the wall clock; 0 disables the
  /// background sampler (a single end-of-run sample is still taken so the
  /// report can state peak RSS).
  std::uint64_t resource_tick_ms = 100;
  /// Write profile.json / profile.folded / resources.csv / resources.json
  /// next to the other artifacts (obs builds only).
  bool profile_artifacts = true;
  /// Serve /metrics, /healthz, /statusz on 127.0.0.1:<port> for the run's
  /// duration (0 = kernel-assigned ephemeral port, read back via
  /// MustStapleStudy::introspection_port()). -1 disables the server.
  int introspection_port = -1;

  // Pillar 8: health + flight recorder (obs builds only).
  /// Register and evaluate the default invariant checks + SLO rules; the
  /// results land in health.json and drive /healthz. Off = the monitor
  /// still exists (callers may register their own checks) but the study
  /// registers nothing.
  bool health_checks = true;
  /// Critical health breach when current RSS exceeds this budget; 0 = no
  /// RSS check (the ROADMAP full-scale item supplies a real bound).
  std::uint64_t rss_budget_mb = 0;
  /// Warning-severity breach when the campaign-wide scan error rate (failed
  /// requests / requests) exceeds this percentage.
  double probe_error_warn_pct = 25.0;
  /// SLO: responder availability (scan successes/requests) must stay at or
  /// above this percentage over 1x and 6x `timeline_window` of sim time.
  /// The paper's Fig-3 worlds dip to ~94% regionally; 90 keeps the default
  /// seeded world green while real outages (or attack scenarios) breach.
  double slo_availability_target_pct = 90.0;
  /// Capacity of the flight recorder's event ring (>=warn log records,
  /// phase transitions, health transitions). 0 disables the recorder —
  /// no signal handlers installed, no postmortem artifacts.
  std::size_t flight_recorder_events = 1024;
  /// CI hook: std::abort() on the first critical health breach, which the
  /// flight recorder's SIGABRT handler turns into postmortem.{txt,json}.
  bool abort_on_critical = false;
};

/// Verdict per principal, in the structure of the paper's §8 conclusion.
struct PrincipalVerdict {
  std::string principal;
  bool ready = false;
  std::string evidence;
};

struct ReadinessReport {
  measurement::Ecosystem::DeploymentStats deployment;

  // CA principal (§5).
  double average_failure_rate = 0.0;
  std::size_t responders_total = 0;
  std::size_t responders_with_outage = 0;
  std::size_t responders_never_reachable = 0;
  std::size_t consistency_discrepant_responders = 0;

  // Client principal (§6).
  std::size_t browsers_tested = 0;
  std::size_t browsers_requesting = 0;
  std::size_t browsers_respecting = 0;

  // Server principal (§7).
  std::size_t servers_tested = 0;
  std::size_t servers_fully_correct = 0;

  std::vector<PrincipalVerdict> verdicts;
  bool web_is_ready = false;

  /// Merged lint findings from the availability scan (per-probe response
  /// lint) and the consistency audit (CRL + cross-check lint). Also written
  /// to <artifact_dir>/lint_report.json — unconditionally, lint is not part
  /// of the obs layer.
  lint::LintReport lint;

  /// Per-phase wall-clock span summary (obs::Tracer); empty when the obs
  /// layer is compiled out.
  std::string trace_summary;

  /// Sim-time availability sparkline derived from the campaign timeline;
  /// empty when the obs layer is compiled out or no scan ran.
  std::string timeline_summary;

  /// Health roll-up (pillar 8): overall status plus per-check/SLO lines;
  /// empty when the obs layer is compiled out or health_checks is off.
  std::string health_summary;

  /// Peak RSS / CPU split / per-subsystem allocation totals (pillar 6);
  /// empty when the obs layer is compiled out.
  std::string resource_summary;

  /// Top phases by wall time from the annotation profiler (pillar 6);
  /// empty when the obs layer is compiled out.
  std::string profile_summary;

  /// Multi-line human-readable report.
  std::string render() const;
};

class MustStapleStudy {
 public:
  explicit MustStapleStudy(StudyConfig config);

  /// Runs all enabled study components and synthesizes the report.
  ReadinessReport run();

  /// Access to the underlying world (for extended analyses).
  measurement::Ecosystem& ecosystem() { return *ecosystem_; }

  /// The run's health monitor: callers may add_check/add_slo before run().
  /// Always present; the study only REGISTERS its default rules when
  /// config.health_checks is on (obs builds).
  obs::HealthMonitor& health() { return health_; }

  /// Binds and starts the introspection server ahead of run() so callers
  /// can print the endpoint before the campaign begins (no-op unless
  /// config.introspection_port >= 0; idempotent). Returns the bound port,
  /// 0 when disabled or bind failed. The server keeps serving the final
  /// state after run() returns, until the study is destroyed.
  std::uint16_t start_introspection();
  std::uint16_t introspection_port() const {
    return server_ ? server_->port() : 0;
  }

 private:
  std::string render_status() const;  ///< /statusz campaign section
  void register_default_health_rules();
  /// Re-renders the metrics/alloc/profile snapshot the crash handler embeds
  /// in postmortem.json (normal-context; called on each resource tick).
  void update_flight_snapshot();

  StudyConfig config_;
  net::EventLoop loop_;
  std::unique_ptr<measurement::Ecosystem> ecosystem_;
  /// Own registry (never the process default): wall-clock RSS gauges must
  /// stay out of the bit-identical campaign artifacts (obs/resource.hpp).
  std::unique_ptr<obs::ResourceMonitor> monitor_;
  std::unique_ptr<obs::IntrospectionServer> server_;
  obs::HealthMonitor health_;
  /// The live scanner /statusz reads mid-campaign; guarded because the
  /// serving thread races the scanner's construction/destruction. The
  /// POINTER is guarded (swap/read); the scanner object itself has its own
  /// internal discipline.
  mutable util::Mutex scanner_mu_;
  measurement::HourlyScanner* live_scanner_ MUSTAPLE_GUARDED_BY(scanner_mu_) =
      nullptr;
};

}  // namespace mustaple::core
