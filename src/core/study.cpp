#include "core/study.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "analysis/export.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "util/alloc.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

namespace mustaple::core {

#if MUSTAPLE_OBS_ENABLED
namespace {

// Figure-3-at-a-glance: per-window probe availability pooled across all six
// vantage points, recomputed from the timeline's counter deltas.
std::string availability_summary(const obs::Timeline& timeline) {
  std::vector<double> availability;
  double lo = 100.0;
  double hi = 0.0;
  for (const auto& window : timeline.windows()) {
    double requests = 0.0;
    double successes = 0.0;
    for (net::Region region : net::all_regions()) {
      const std::string labels =
          obs::canonical_labels({{"region", net::to_string(region)}});
      requests += obs::Timeline::counter_delta(
          window, "mustaple_scan_requests_total", labels);
      successes += obs::Timeline::counter_delta(
          window, "mustaple_scan_successes_total", labels);
    }
    if (requests <= 0.0) continue;
    const double pct = 100.0 * successes / requests;
    availability.push_back(pct);
    lo = std::min(lo, pct);
    hi = std::max(hi, pct);
  }
  if (availability.empty()) return "";
  std::ostringstream out;
  out << util::format(
      "Timeline: scan availability per %lldh window — %zu windows, "
      "min %.2f%%, max %.2f%%\n",
      static_cast<long long>(timeline.window().seconds / 3600),
      availability.size(), lo, hi);
  out << "  [" << util::sparkline(availability) << "]\n";
  return out.str();
}

double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Sum of a counter over every label cell — the scan counters are
/// region-labeled, while the health checks care about the campaign total.
std::uint64_t sum_counter_cells(const obs::Registry& registry,
                                const std::string& name) {
  std::uint64_t total = 0;
  registry.visit_counters([&](const std::string& metric, const std::string&,
                              std::uint64_t value) {
    if (metric == name) total += value;
  });
  return total;
}

std::string snapshot_json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

// Pillar-6 report block: what the run cost the process, and where the
// retained bytes live.
std::string resource_summary_text(const obs::ResourceMonitor& monitor) {
  const auto samples = monitor.samples();
  if (samples.empty()) return "";
  const obs::ResourceMonitor::Sample& last = samples.back();
  std::ostringstream out;
  out << util::format(
      "Resources: peak RSS %.1f MiB (final %.1f MiB), CPU %.2fs user + "
      "%.2fs system, %zu samples\n",
      to_mib(last.usage.peak_rss_bytes), to_mib(last.usage.rss_bytes),
      last.usage.user_cpu_seconds, last.usage.system_cpu_seconds,
      samples.size());
  util::visit_alloc_counters(
      [&out](const std::string& name, const util::AllocCounter& counter) {
        if (counter.allocated_bytes() == 0) return;
        out << util::format(
            "  alloc %-24s %9.1f KiB outstanding, %9.1f KiB peak\n",
            name.c_str(),
            static_cast<double>(counter.outstanding_bytes()) / 1024.0,
            static_cast<double>(counter.peak_outstanding_bytes()) / 1024.0);
      });
  return out.str();
}

}  // namespace
#endif  // MUSTAPLE_OBS_ENABLED

MustStapleStudy::MustStapleStudy(StudyConfig config)
    : config_(std::move(config)),
      loop_(config_.ecosystem.campaign_start - util::Duration::days(1)),
      ecosystem_(std::make_unique<measurement::Ecosystem>(config_.ecosystem,
                                                          loop_)) {
  obs::ResourceMonitor::Options monitor_options;
  monitor_options.tick_ms = config_.resource_tick_ms;
#if MUSTAPLE_OBS_ENABLED
  // The resource tick doubles as the health/flight heartbeat: invariant
  // checks re-run (thread-safe, read-only over existing registries) and the
  // crash handler's pre-rendered snapshot refreshes. SLO evaluation is NOT
  // here — the timeline is main-thread-only (see run()).
  monitor_options.on_sample = [this](const obs::ResourceMonitor::Sample&) {
    health_.evaluate_checks();
    update_flight_snapshot();
  };
#endif
  monitor_ = std::make_unique<obs::ResourceMonitor>(monitor_options);
#if MUSTAPLE_OBS_ENABLED
  if (config_.health_checks) register_default_health_rules();
  health_.set_on_transition([this](const std::string& name,
                                   obs::HealthSeverity severity, bool ok,
                                   const std::string& detail) {
    if (ok) {
      MUSTAPLE_LOG_INFO("health", "health check recovered",
                        obs::field("check", name),
                        obs::field("detail", detail));
    } else if (severity == obs::HealthSeverity::kCritical) {
      MUSTAPLE_LOG_ERROR("health", "critical health breach",
                         obs::field("check", name),
                         obs::field("detail", detail));
    } else {
      MUSTAPLE_LOG_WARN("health", "health breach",
                        obs::field("check", name),
                        obs::field("detail", detail));
    }
    obs::default_flight_recorder().note_health(name.c_str(), ok,
                                               detail.c_str());
    if (!ok && severity == obs::HealthSeverity::kCritical &&
        config_.abort_on_critical) {
      // Freshen the snapshot the SIGABRT handler will embed, then die the
      // way a real invariant violation should: loudly, with a postmortem.
      update_flight_snapshot();
      std::abort();
    }
  });
#endif
}

#if MUSTAPLE_OBS_ENABLED

void MustStapleStudy::register_default_health_rules() {
  // Conservation: every cache lookup is exactly one hit or one miss, at any
  // thread count (PR 4's invariant, now continuously watched). Only
  // checkable while a scanner is live; in between, trivially ok.
  const auto cache_conservation = [this](auto stats_of) {
    return [this, stats_of]() {
      obs::HealthCheckResult result;
      util::MutexLock lock(scanner_mu_);
      if (live_scanner_ == nullptr) return result;
      const util::ShardedCacheStats stats = stats_of(live_scanner_);
      if (stats.hits + stats.misses != stats.lookups) {
        result.ok = false;
        result.detail = util::format(
            "hits %llu + misses %llu != lookups %llu",
            static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses),
            static_cast<unsigned long long>(stats.lookups));
      }
      return result;
    };
  };
  health_.add_check("scan.validation_cache_conservation",
                    obs::HealthSeverity::kCritical,
                    cache_conservation([](measurement::HourlyScanner* s) {
                      return s->validation_cache_stats();
                    }));
  health_.add_check("scan.lint_cache_conservation",
                    obs::HealthSeverity::kCritical,
                    cache_conservation([](measurement::HourlyScanner* s) {
                      return s->lint_cache_stats();
                    }));

  // Conservation: no subsystem frees more bytes than it allocated (a freed >
  // allocated tally means double-accounted frees). Warning, not critical:
  // the tallies are relaxed atomics, so a mid-update read can transiently
  // run ahead.
  health_.add_check(
      "alloc.conservation", obs::HealthSeverity::kWarning, [] {
        obs::HealthCheckResult result;
        util::visit_alloc_counters([&result](const std::string& name,
                                             const util::AllocCounter& c) {
          if (c.freed_bytes() > c.allocated_bytes()) {
            result.ok = false;
            result.detail = util::format(
                "%s freed %llu > allocated %llu bytes", name.c_str(),
                static_cast<unsigned long long>(c.freed_bytes()),
                static_cast<unsigned long long>(c.allocated_bytes()));
          }
        });
        return result;
      });

  if (config_.rss_budget_mb > 0) {
    const std::uint64_t budget_bytes = config_.rss_budget_mb * 1024 * 1024;
    health_.add_check(
        "proc.rss_budget", obs::HealthSeverity::kCritical, [budget_bytes] {
          obs::HealthCheckResult result;
          const obs::ResourceUsage usage = obs::read_resource_usage();
          if (usage.ok && usage.rss_bytes > budget_bytes) {
            result.ok = false;
            result.detail = util::format(
                "rss %.1f MiB > budget %.1f MiB", to_mib(usage.rss_bytes),
                to_mib(budget_bytes));
          }
          return result;
        });
  }

  const double error_ceiling = config_.probe_error_warn_pct;
  health_.add_check(
      "scan.probe_error_rate", obs::HealthSeverity::kWarning, [error_ceiling] {
        obs::HealthCheckResult result;
        const obs::Registry& registry = obs::default_registry();
        const std::uint64_t requests =
            sum_counter_cells(registry, "mustaple_scan_requests_total");
        if (requests < 1000) return result;  // too little volume to judge
        const std::uint64_t successes =
            sum_counter_cells(registry, "mustaple_scan_successes_total");
        const std::uint64_t errors =
            requests > successes ? requests - successes : 0;
        const double pct =
            100.0 * static_cast<double>(errors) / static_cast<double>(requests);
        if (pct > error_ceiling) {
          result.ok = false;
          result.detail = util::format(
              "error rate %.2f%% > %.2f%% ceiling (%llu/%llu failed)", pct,
              error_ceiling, static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(requests));
        }
        return result;
      });

  // The responder's pre-generation cache collapsing (the PAPERS.md
  // distinct-serial-storm attack surface) shows up as a hit-rate crater
  // long before latency histograms move.
  health_.add_check(
      "ca.response_cache_hit_rate", obs::HealthSeverity::kWarning, [] {
        obs::HealthCheckResult result;
        const obs::Registry& registry = obs::default_registry();
        const std::uint64_t hits =
            registry.counter_value("mustaple_ca_ocsp_cache_hits_total");
        const std::uint64_t regens =
            registry.counter_value("mustaple_ca_ocsp_regenerations_total");
        const std::uint64_t total = hits + regens;
        if (total < 1000) return result;
        const double pct =
            100.0 * static_cast<double>(hits) / static_cast<double>(total);
        if (pct < 25.0) {
          result.ok = false;
          result.detail = util::format(
              "cache hit rate %.2f%% < 25%% floor (%llu hits / %llu served)",
              pct, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(total));
        }
        return result;
      });

  // SLO: per-vantage responder availability over 1x and 6x timeline windows
  // of sim time — the paper's Figure-3 series, held to a floor.
  for (net::Region region : net::all_regions()) {
    obs::HealthMonitor::SloRule rule;
    rule.name = std::string("responder_availability:") +
                net::to_string(region);
    rule.numerator = "mustaple_scan_successes_total";
    rule.denominator = "mustaple_scan_requests_total";
    rule.labels = {{"region", net::to_string(region)}};
    rule.target_pct = config_.slo_availability_target_pct;
    rule.lookbacks = {config_.timeline_window, config_.timeline_window * 6};
    rule.min_denominator = 10;
    health_.add_slo(std::move(rule));
  }
}

void MustStapleStudy::update_flight_snapshot() {
  obs::FlightRecorder& flight = obs::default_flight_recorder();
  if (flight.capacity() == 0) return;
  std::string json = "{\"metrics\":" + obs::default_registry().render_json();
  json += ",\"alloc\":{";
  bool first = true;
  util::visit_alloc_counters([&json, &first](const std::string& name,
                                             const util::AllocCounter& c) {
    if (!first) json += ',';
    first = false;
    json += "\"" + snapshot_json_escape(name) + "\":{\"allocated_bytes\":" +
            std::to_string(c.allocated_bytes()) +
            ",\"freed_bytes\":" + std::to_string(c.freed_bytes()) +
            ",\"outstanding_bytes\":" + std::to_string(c.outstanding_bytes()) +
            ",\"peak_outstanding_bytes\":" +
            std::to_string(c.peak_outstanding_bytes()) + "}";
  });
  json += "},\"peak_rss_bytes\":" +
          std::to_string(obs::read_resource_usage().peak_rss_bytes);
  json += ",\"profile_top\":\"" +
          snapshot_json_escape(obs::default_profiler().summary(5)) + "\"";
  json += "}";
  flight.set_snapshot_json(json);
}

#else  // !MUSTAPLE_OBS_ENABLED

void MustStapleStudy::register_default_health_rules() {}
void MustStapleStudy::update_flight_snapshot() {}

#endif  // MUSTAPLE_OBS_ENABLED

std::uint16_t MustStapleStudy::start_introspection() {
  if (config_.introspection_port < 0) return 0;
  if (server_) return server_->port();
  obs::IntrospectionServer::Options options;
  options.port = static_cast<std::uint16_t>(config_.introspection_port);
  server_ = std::make_unique<obs::IntrospectionServer>(options);
  // SRCLINT-ALLOW(sl_obs_ungated): /metrics must render under OBS=OFF too
  server_->add_registry("campaign", &obs::default_registry());
  server_->add_registry("resources", &monitor_->registry());
#if MUSTAPLE_OBS_ENABLED
  server_->set_profiler(&obs::default_profiler());
  if (config_.health_checks) server_->set_health(&health_);
#endif
  server_->set_status_provider([this] { return render_status(); });
  const util::Status status = server_->start();
  if (!status.ok()) {
    MUSTAPLE_LOG_WARN("core", "introspection server failed to start",
                      obs::field("error", status.error().to_string()));
    server_.reset();
    return 0;
  }
  return server_->port();
}

std::string MustStapleStudy::render_status() const {
  std::ostringstream out;
  util::MutexLock lock(scanner_mu_);
  if (live_scanner_ == nullptr) {
    out << "availability scan: not running\n";
    return out.str();
  }
  const measurement::HourlyScanner::Progress progress =
      live_scanner_->progress();
  out << util::format(
      "availability scan: step %llu/%llu, %llu probes issued, %llu targets\n",
      static_cast<unsigned long long>(progress.steps_done),
      static_cast<unsigned long long>(progress.steps_planned),
      static_cast<unsigned long long>(progress.probes_done),
      static_cast<unsigned long long>(progress.targets));
  return out.str();
}

ReadinessReport MustStapleStudy::run() {
  ReadinessReport report;
#if MUSTAPLE_OBS_ENABLED
  // One study = one profile; a second run() starts from zeroed phase stats.
  obs::default_profiler().reset();
  // Flight recorder before the resource monitor: the monitor's tick hook
  // refreshes the recorder's snapshot buffers, and configure() is only safe
  // while nothing records.
  obs::FlightRecorder& flight = obs::default_flight_recorder();
  std::shared_ptr<obs::FlightLogSink> flight_sink;
  if (config_.flight_recorder_events > 0) {
    flight.configure(config_.flight_recorder_events);
    if (!config_.artifact_dir.empty()) flight.install(config_.artifact_dir);
    flight_sink = std::make_shared<obs::FlightLogSink>(flight);
    obs::default_logger().add_sink(flight_sink);
    flight.note_phase("study:start");
  }
  // Kernel-side resource sampling for the run's duration. With tick 0 the
  // background thread is skipped; sample_now() below still records enough
  // for the report's peak-RSS line.
  if (config_.resource_tick_ms > 0) monitor_->start();
  // One study = one trace; stamp every log record with the campaign clock.
  obs::default_tracer().reset();
  obs::default_logger().set_sim_clock([this] { return loop_.now(); });
  // Campaign timeline: windowed counter deltas on the simulated clock,
  // advanced by the EventLoop as the clock moves. Windows align to the
  // campaign start so the warm-up day stays out of window 0.
  obs::Timeline timeline(config_.ecosystem.campaign_start,
                         config_.timeline_window);
  // SLO burn rates re-evaluate as each sim-time window closes, on the
  // thread advancing the clock (the timeline is not thread-safe, so SLOs
  // never run from the resource tick).
  timeline.set_window_hook([this, &timeline](const obs::TimelineWindow&) {
    health_.evaluate_slos(timeline);
  });
  obs::Timeline* previous_timeline = obs::install_timeline(&timeline);
  // Phase boundary: marks the ring, re-runs checks, and settles SLOs.
  const auto health_boundary = [this, &timeline](const char* phase) {
    obs::default_flight_recorder().note_phase(phase);
    health_.evaluate_checks();
    health_.evaluate_slos(timeline);
  };
  // Causal probe trace, epoch = the loop's start so no negative timestamps.
  obs::TraceLog& trace_log = obs::default_trace_log();
  trace_log.reset();
  trace_log.set_capacity(config_.trace_capacity);
  trace_log.enable(loop_.now());
  for (net::Region region : net::all_regions()) {
    trace_log.set_track_name(static_cast<std::uint32_t>(region),
                             std::string("vantage:") + net::to_string(region));
  }
  trace_log.set_track_name(obs::TraceLog::kControlTrack, "simulator-control");
#endif
  start_introspection();
  {
    MUSTAPLE_SPAN(span_study, "study");
    OBS_PROF_SCOPE("study");
    report.deployment = ecosystem_->deployment_stats();

    if (config_.run_availability_scan) {
      MUSTAPLE_SPAN(span_scan, "availability-scan");
      OBS_PROF_SCOPE("availability-scan");
      measurement::HourlyScanner scanner(*ecosystem_, config_.scan);
      {
        util::MutexLock lock(scanner_mu_);
        live_scanner_ = &scanner;
      }
      scanner.run();
      {
        // Clear before the scanner leaves scope; /statusz holds the same
        // mutex while dereferencing, so no serving thread can still be
        // reading it once this block exits.
        util::MutexLock lock(scanner_mu_);
        live_scanner_ = nullptr;
      }
      report.responders_total = scanner.responder_count();
      report.responders_with_outage = scanner.responders_with_outage();
      report.responders_never_reachable = scanner.responders_never_reachable();
      double rate = 0.0;
      for (net::Region region : net::all_regions()) {
        rate += scanner.failure_rate(region);
      }
      report.average_failure_rate = rate / net::kRegionCount;
      report.lint.merge(scanner.lint_report());
      MUSTAPLE_LOG_INFO(
          "core", "availability scan complete",
          obs::field("responders", report.responders_total),
          obs::field("with_outage", report.responders_with_outage),
          obs::field("never_reachable", report.responders_never_reachable),
          obs::field("avg_failure_rate", report.average_failure_rate));
#if MUSTAPLE_OBS_ENABLED
      health_boundary("availability-scan:done");
#endif
    }

    if (config_.run_consistency_audit) {
      MUSTAPLE_SPAN(span_audit, "consistency-audit");
      OBS_PROF_SCOPE("consistency-audit");
      util::Rng rng(config_.ecosystem.seed ^ 0x5ca1ab1eULL);
      measurement::ConsistencyAudit audit(*ecosystem_, config_.consistency);
      const measurement::ConsistencyReport consistency = audit.run(rng);
      report.consistency_discrepant_responders = consistency.table1.size();
      report.lint.merge(consistency.lint);
      MUSTAPLE_LOG_INFO("core", "consistency audit complete",
                        obs::field("discrepant_responders",
                                   report.consistency_discrepant_responders));
#if MUSTAPLE_OBS_ENABLED
      health_boundary("consistency-audit:done");
#endif
    }

    if (config_.run_browser_suite) {
      MUSTAPLE_SPAN(span_browsers, "browser-suite");
      OBS_PROF_SCOPE("browser-suite");
      const analysis::BrowserSuiteResult browsers =
          analysis::run_browser_suite(config_.ecosystem.seed);
      report.browsers_tested = browsers.rows.size();
      report.browsers_requesting = browsers.count_requesting();
      report.browsers_respecting = browsers.count_respecting();
      MUSTAPLE_LOG_INFO("core", "browser suite complete",
                        obs::field("tested", report.browsers_tested),
                        obs::field("respecting", report.browsers_respecting));
#if MUSTAPLE_OBS_ENABLED
      health_boundary("browser-suite:done");
#endif
    }

    if (config_.run_webserver_suite) {
      MUSTAPLE_SPAN(span_servers, "webserver-suite");
      OBS_PROF_SCOPE("webserver-suite");
      const analysis::WebServerSuiteResult servers =
          analysis::run_webserver_suite(config_.ecosystem.seed);
      report.servers_tested = servers.rows.size();
      for (const auto& row : servers.rows) {
        if (row.software == webserver::Software::kIdeal) continue;  // baseline
        if (row.prefetches && row.caches && row.respects_next_update &&
            row.retains_on_error) {
          ++report.servers_fully_correct;
        }
      }
      // Only Apache/Nginx count toward "servers tested" in the paper's sense.
      report.servers_tested = 2;
      MUSTAPLE_LOG_INFO("core", "webserver suite complete",
                        obs::field("tested", report.servers_tested),
                        obs::field("fully_correct",
                                   report.servers_fully_correct));
#if MUSTAPLE_OBS_ENABLED
      health_boundary("webserver-suite:done");
#endif
    }
  }  // closes the "study" span so the summary below includes it
#if MUSTAPLE_OBS_ENABLED
  // Flush at campaign end (not loop.now()): the clock rests exactly on the
  // final scan step, whose window would otherwise still be accruing.
  timeline.flush(loop_.now() > config_.ecosystem.campaign_end
                     ? loop_.now()
                     : config_.ecosystem.campaign_end);
  // Settle health before the hook targets go away: one last check pass plus
  // SLOs over the fully-flushed timeline.
  health_boundary("study:done");
  timeline.set_window_hook(nullptr);
  obs::install_timeline(previous_timeline);
  trace_log.disable();
  report.trace_summary = obs::default_tracer().summary();
  report.timeline_summary = availability_summary(timeline);
  obs::default_logger().set_sim_clock(nullptr);
  // Close the resource timeline with one final sample (covers tick 0, where
  // no sampler thread ran) before rendering the pillar-6 report lines.
  monitor_->stop();
  monitor_->sample_now();
  report.resource_summary = resource_summary_text(*monitor_);
  report.profile_summary = obs::default_profiler().summary(10);
  if (config_.health_checks) {
    // render_text() leads with "status: ..." so this reads "Health status:".
    report.health_summary = "Health " + health_.render_text();
  }
  if (flight_sink) obs::default_logger().remove_sink(flight_sink);
  if (!config_.artifact_dir.empty()) {
    analysis::write_export(config_.artifact_dir, "timeline.csv",
                           timeline.render_csv());
    analysis::write_export(config_.artifact_dir, "timeline.json",
                           timeline.render_json());
    analysis::write_export(config_.artifact_dir, "trace.json",
                           trace_log.render_chrome_trace());
    if (config_.profile_artifacts) {
      analysis::write_export(config_.artifact_dir, "profile.json",
                             obs::default_profiler().render_json());
      analysis::write_export(config_.artifact_dir, "profile.folded",
                             obs::default_profiler().render_folded());
      analysis::write_export(config_.artifact_dir, "resources.csv",
                             monitor_->render_csv());
      analysis::write_export(config_.artifact_dir, "resources.json",
                             monitor_->render_json());
    }
    if (config_.health_checks) {
      analysis::write_export(config_.artifact_dir, "health.json",
                             health_.render_json());
    }
  }
  // Run is over: restore whatever crash handlers the host had installed.
  flight.uninstall();
#endif
  // Lint is part of the study proper, not the obs layer: the report JSON is
  // written even in MUSTAPLE_OBS_OFF builds.
  if (!config_.artifact_dir.empty() && report.lint.artifacts() > 0) {
    analysis::write_export(config_.artifact_dir, "lint_report.json",
                           report.lint.render_json());
  }

  // §8-style synthesis.
  const double ms_pct =
      report.deployment.total_certs
          ? 100.0 * static_cast<double>(report.deployment.must_staple_certs) /
                static_cast<double>(report.deployment.total_certs)
          : 0.0;
  report.verdicts.push_back(PrincipalVerdict{
      "Certificate authorities", false,
      util::format("%zu/%zu responders had >=1 outage; %zu never reachable; "
                   "%zu responders disagree with their own CRL",
                   report.responders_with_outage, report.responders_total,
                   report.responders_never_reachable,
                   report.consistency_discrepant_responders)});
  report.verdicts.push_back(PrincipalVerdict{
      "Clients (browsers)", false,
      util::format("%zu/%zu browsers request staples but only %zu/%zu "
                   "respect Must-Staple",
                   report.browsers_requesting, report.browsers_tested,
                   report.browsers_respecting, report.browsers_tested)});
  report.verdicts.push_back(PrincipalVerdict{
      "Web server software", false,
      util::format("%zu/%zu tested servers implement stapling fully "
                   "correctly",
                   report.servers_fully_correct, report.servers_tested)});
  report.verdicts.push_back(PrincipalVerdict{
      "Deployment", false,
      util::format("only %.3f%% of certificates carry OCSP Must-Staple",
                   ms_pct)});
  report.web_is_ready = false;  // the paper's conclusion, reproduced
  return report;
}

std::string ReadinessReport::render() const {
  std::ostringstream out;
  out << "=== Is the Web Ready for OCSP Must-Staple? ===\n\n";
  out << util::format(
      "Deployment: %zu certificates, %zu (%.1f%%) support OCSP, %zu "
      "(%.3f%%) carry Must-Staple (%zu from Let's Encrypt)\n",
      deployment.total_certs, deployment.ocsp_certs,
      deployment.total_certs ? 100.0 * static_cast<double>(deployment.ocsp_certs) /
                                   static_cast<double>(deployment.total_certs)
                             : 0.0,
      deployment.must_staple_certs,
      deployment.total_certs
          ? 100.0 * static_cast<double>(deployment.must_staple_certs) /
                static_cast<double>(deployment.total_certs)
          : 0.0,
      deployment.must_staple_lets_encrypt);
  out << util::format("OCSP responders: average failure rate %.2f%%\n",
                      100.0 * average_failure_rate);
  if (lint.artifacts() > 0) {
    out << "Lint: " << lint.summary() << "\n";
  }
  out << "\n";
  for (const auto& verdict : verdicts) {
    out << "  [" << (verdict.ready ? "READY    " : "NOT READY") << "] "
        << verdict.principal << " — " << verdict.evidence << "\n";
  }
  out << "\nConclusion: the web is " << (web_is_ready ? "" : "NOT ")
      << "ready for OCSP Must-Staple.\n";
  if (!timeline_summary.empty()) out << "\n" << timeline_summary;
  if (!trace_summary.empty()) out << "\n" << trace_summary;
  if (!resource_summary.empty()) out << "\n" << resource_summary;
  if (!profile_summary.empty()) out << "\n" << profile_summary;
  if (!health_summary.empty()) out << "\n" << health_summary;
  return out.str();
}

}  // namespace mustaple::core
