#include "core/study.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/export.hpp"
#include "obs/obs.hpp"
#include "util/alloc.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

namespace mustaple::core {

#if MUSTAPLE_OBS_ENABLED
namespace {

// Figure-3-at-a-glance: per-window probe availability pooled across all six
// vantage points, recomputed from the timeline's counter deltas.
std::string availability_summary(const obs::Timeline& timeline) {
  std::vector<double> availability;
  double lo = 100.0;
  double hi = 0.0;
  for (const auto& window : timeline.windows()) {
    double requests = 0.0;
    double successes = 0.0;
    for (net::Region region : net::all_regions()) {
      const std::string labels =
          obs::canonical_labels({{"region", net::to_string(region)}});
      requests += obs::Timeline::counter_delta(
          window, "mustaple_scan_requests_total", labels);
      successes += obs::Timeline::counter_delta(
          window, "mustaple_scan_successes_total", labels);
    }
    if (requests <= 0.0) continue;
    const double pct = 100.0 * successes / requests;
    availability.push_back(pct);
    lo = std::min(lo, pct);
    hi = std::max(hi, pct);
  }
  if (availability.empty()) return "";
  std::ostringstream out;
  out << util::format(
      "Timeline: scan availability per %lldh window — %zu windows, "
      "min %.2f%%, max %.2f%%\n",
      static_cast<long long>(timeline.window().seconds / 3600),
      availability.size(), lo, hi);
  out << "  [" << util::sparkline(availability) << "]\n";
  return out.str();
}

double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// Pillar-6 report block: what the run cost the process, and where the
// retained bytes live.
std::string resource_summary_text(const obs::ResourceMonitor& monitor) {
  const auto samples = monitor.samples();
  if (samples.empty()) return "";
  const obs::ResourceMonitor::Sample& last = samples.back();
  std::ostringstream out;
  out << util::format(
      "Resources: peak RSS %.1f MiB (final %.1f MiB), CPU %.2fs user + "
      "%.2fs system, %zu samples\n",
      to_mib(last.usage.peak_rss_bytes), to_mib(last.usage.rss_bytes),
      last.usage.user_cpu_seconds, last.usage.system_cpu_seconds,
      samples.size());
  util::visit_alloc_counters(
      [&out](const std::string& name, const util::AllocCounter& counter) {
        if (counter.allocated_bytes() == 0) return;
        out << util::format(
            "  alloc %-24s %9.1f KiB outstanding, %9.1f KiB peak\n",
            name.c_str(),
            static_cast<double>(counter.outstanding_bytes()) / 1024.0,
            static_cast<double>(counter.peak_outstanding_bytes()) / 1024.0);
      });
  return out.str();
}

}  // namespace
#endif  // MUSTAPLE_OBS_ENABLED

MustStapleStudy::MustStapleStudy(StudyConfig config)
    : config_(std::move(config)),
      loop_(config_.ecosystem.campaign_start - util::Duration::days(1)),
      ecosystem_(std::make_unique<measurement::Ecosystem>(config_.ecosystem,
                                                          loop_)) {
  obs::ResourceMonitor::Options monitor_options;
  monitor_options.tick_ms = config_.resource_tick_ms;
  monitor_ = std::make_unique<obs::ResourceMonitor>(monitor_options);
}

std::uint16_t MustStapleStudy::start_introspection() {
  if (config_.introspection_port < 0) return 0;
  if (server_) return server_->port();
  obs::IntrospectionServer::Options options;
  options.port = static_cast<std::uint16_t>(config_.introspection_port);
  server_ = std::make_unique<obs::IntrospectionServer>(options);
  server_->add_registry("campaign", &obs::default_registry());
  server_->add_registry("resources", &monitor_->registry());
#if MUSTAPLE_OBS_ENABLED
  server_->set_profiler(&obs::default_profiler());
#endif
  server_->set_status_provider([this] { return render_status(); });
  const util::Status status = server_->start();
  if (!status.ok()) {
    MUSTAPLE_LOG_WARN("core", "introspection server failed to start",
                      obs::field("error", status.error().to_string()));
    server_.reset();
    return 0;
  }
  return server_->port();
}

std::string MustStapleStudy::render_status() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(scanner_mu_);
  if (live_scanner_ == nullptr) {
    out << "availability scan: not running\n";
    return out.str();
  }
  const measurement::HourlyScanner::Progress progress =
      live_scanner_->progress();
  out << util::format(
      "availability scan: step %llu/%llu, %llu probes issued, %llu targets\n",
      static_cast<unsigned long long>(progress.steps_done),
      static_cast<unsigned long long>(progress.steps_planned),
      static_cast<unsigned long long>(progress.probes_done),
      static_cast<unsigned long long>(progress.targets));
  return out.str();
}

ReadinessReport MustStapleStudy::run() {
  ReadinessReport report;
#if MUSTAPLE_OBS_ENABLED
  // One study = one profile; a second run() starts from zeroed phase stats.
  obs::default_profiler().reset();
  // Kernel-side resource sampling for the run's duration. With tick 0 the
  // background thread is skipped; sample_now() below still records enough
  // for the report's peak-RSS line.
  if (config_.resource_tick_ms > 0) monitor_->start();
  // One study = one trace; stamp every log record with the campaign clock.
  obs::default_tracer().reset();
  obs::default_logger().set_sim_clock([this] { return loop_.now(); });
  // Campaign timeline: windowed counter deltas on the simulated clock,
  // advanced by the EventLoop as the clock moves. Windows align to the
  // campaign start so the warm-up day stays out of window 0.
  obs::Timeline timeline(config_.ecosystem.campaign_start,
                         config_.timeline_window);
  obs::Timeline* previous_timeline = obs::install_timeline(&timeline);
  // Causal probe trace, epoch = the loop's start so no negative timestamps.
  obs::TraceLog& trace_log = obs::default_trace_log();
  trace_log.reset();
  trace_log.set_capacity(config_.trace_capacity);
  trace_log.enable(loop_.now());
  for (net::Region region : net::all_regions()) {
    trace_log.set_track_name(static_cast<std::uint32_t>(region),
                             std::string("vantage:") + net::to_string(region));
  }
  trace_log.set_track_name(obs::TraceLog::kControlTrack, "simulator-control");
#endif
  start_introspection();
  {
    MUSTAPLE_SPAN(span_study, "study");
    OBS_PROF_SCOPE("study");
    report.deployment = ecosystem_->deployment_stats();

    if (config_.run_availability_scan) {
      MUSTAPLE_SPAN(span_scan, "availability-scan");
      OBS_PROF_SCOPE("availability-scan");
      measurement::HourlyScanner scanner(*ecosystem_, config_.scan);
      {
        std::lock_guard<std::mutex> lock(scanner_mu_);
        live_scanner_ = &scanner;
      }
      scanner.run();
      {
        // Clear before the scanner leaves scope; /statusz holds the same
        // mutex while dereferencing, so no serving thread can still be
        // reading it once this block exits.
        std::lock_guard<std::mutex> lock(scanner_mu_);
        live_scanner_ = nullptr;
      }
      report.responders_total = scanner.responder_count();
      report.responders_with_outage = scanner.responders_with_outage();
      report.responders_never_reachable = scanner.responders_never_reachable();
      double rate = 0.0;
      for (net::Region region : net::all_regions()) {
        rate += scanner.failure_rate(region);
      }
      report.average_failure_rate = rate / net::kRegionCount;
      report.lint.merge(scanner.lint_report());
      MUSTAPLE_LOG_INFO(
          "core", "availability scan complete",
          obs::field("responders", report.responders_total),
          obs::field("with_outage", report.responders_with_outage),
          obs::field("never_reachable", report.responders_never_reachable),
          obs::field("avg_failure_rate", report.average_failure_rate));
    }

    if (config_.run_consistency_audit) {
      MUSTAPLE_SPAN(span_audit, "consistency-audit");
      OBS_PROF_SCOPE("consistency-audit");
      util::Rng rng(config_.ecosystem.seed ^ 0x5ca1ab1eULL);
      measurement::ConsistencyAudit audit(*ecosystem_, config_.consistency);
      const measurement::ConsistencyReport consistency = audit.run(rng);
      report.consistency_discrepant_responders = consistency.table1.size();
      report.lint.merge(consistency.lint);
      MUSTAPLE_LOG_INFO("core", "consistency audit complete",
                        obs::field("discrepant_responders",
                                   report.consistency_discrepant_responders));
    }

    if (config_.run_browser_suite) {
      MUSTAPLE_SPAN(span_browsers, "browser-suite");
      OBS_PROF_SCOPE("browser-suite");
      const analysis::BrowserSuiteResult browsers =
          analysis::run_browser_suite(config_.ecosystem.seed);
      report.browsers_tested = browsers.rows.size();
      report.browsers_requesting = browsers.count_requesting();
      report.browsers_respecting = browsers.count_respecting();
      MUSTAPLE_LOG_INFO("core", "browser suite complete",
                        obs::field("tested", report.browsers_tested),
                        obs::field("respecting", report.browsers_respecting));
    }

    if (config_.run_webserver_suite) {
      MUSTAPLE_SPAN(span_servers, "webserver-suite");
      OBS_PROF_SCOPE("webserver-suite");
      const analysis::WebServerSuiteResult servers =
          analysis::run_webserver_suite(config_.ecosystem.seed);
      report.servers_tested = servers.rows.size();
      for (const auto& row : servers.rows) {
        if (row.software == webserver::Software::kIdeal) continue;  // baseline
        if (row.prefetches && row.caches && row.respects_next_update &&
            row.retains_on_error) {
          ++report.servers_fully_correct;
        }
      }
      // Only Apache/Nginx count toward "servers tested" in the paper's sense.
      report.servers_tested = 2;
      MUSTAPLE_LOG_INFO("core", "webserver suite complete",
                        obs::field("tested", report.servers_tested),
                        obs::field("fully_correct",
                                   report.servers_fully_correct));
    }
  }  // closes the "study" span so the summary below includes it
#if MUSTAPLE_OBS_ENABLED
  // Flush at campaign end (not loop.now()): the clock rests exactly on the
  // final scan step, whose window would otherwise still be accruing.
  timeline.flush(loop_.now() > config_.ecosystem.campaign_end
                     ? loop_.now()
                     : config_.ecosystem.campaign_end);
  obs::install_timeline(previous_timeline);
  trace_log.disable();
  report.trace_summary = obs::default_tracer().summary();
  report.timeline_summary = availability_summary(timeline);
  obs::default_logger().set_sim_clock(nullptr);
  // Close the resource timeline with one final sample (covers tick 0, where
  // no sampler thread ran) before rendering the pillar-6 report lines.
  monitor_->stop();
  monitor_->sample_now();
  report.resource_summary = resource_summary_text(*monitor_);
  report.profile_summary = obs::default_profiler().summary(10);
  if (!config_.artifact_dir.empty()) {
    analysis::write_export(config_.artifact_dir, "timeline.csv",
                           timeline.render_csv());
    analysis::write_export(config_.artifact_dir, "timeline.json",
                           timeline.render_json());
    analysis::write_export(config_.artifact_dir, "trace.json",
                           trace_log.render_chrome_trace());
    if (config_.profile_artifacts) {
      analysis::write_export(config_.artifact_dir, "profile.json",
                             obs::default_profiler().render_json());
      analysis::write_export(config_.artifact_dir, "profile.folded",
                             obs::default_profiler().render_folded());
      analysis::write_export(config_.artifact_dir, "resources.csv",
                             monitor_->render_csv());
      analysis::write_export(config_.artifact_dir, "resources.json",
                             monitor_->render_json());
    }
  }
#endif
  // Lint is part of the study proper, not the obs layer: the report JSON is
  // written even in MUSTAPLE_OBS_OFF builds.
  if (!config_.artifact_dir.empty() && report.lint.artifacts() > 0) {
    analysis::write_export(config_.artifact_dir, "lint_report.json",
                           report.lint.render_json());
  }

  // §8-style synthesis.
  const double ms_pct =
      report.deployment.total_certs
          ? 100.0 * static_cast<double>(report.deployment.must_staple_certs) /
                static_cast<double>(report.deployment.total_certs)
          : 0.0;
  report.verdicts.push_back(PrincipalVerdict{
      "Certificate authorities", false,
      util::format("%zu/%zu responders had >=1 outage; %zu never reachable; "
                   "%zu responders disagree with their own CRL",
                   report.responders_with_outage, report.responders_total,
                   report.responders_never_reachable,
                   report.consistency_discrepant_responders)});
  report.verdicts.push_back(PrincipalVerdict{
      "Clients (browsers)", false,
      util::format("%zu/%zu browsers request staples but only %zu/%zu "
                   "respect Must-Staple",
                   report.browsers_requesting, report.browsers_tested,
                   report.browsers_respecting, report.browsers_tested)});
  report.verdicts.push_back(PrincipalVerdict{
      "Web server software", false,
      util::format("%zu/%zu tested servers implement stapling fully "
                   "correctly",
                   report.servers_fully_correct, report.servers_tested)});
  report.verdicts.push_back(PrincipalVerdict{
      "Deployment", false,
      util::format("only %.3f%% of certificates carry OCSP Must-Staple",
                   ms_pct)});
  report.web_is_ready = false;  // the paper's conclusion, reproduced
  return report;
}

std::string ReadinessReport::render() const {
  std::ostringstream out;
  out << "=== Is the Web Ready for OCSP Must-Staple? ===\n\n";
  out << util::format(
      "Deployment: %zu certificates, %zu (%.1f%%) support OCSP, %zu "
      "(%.3f%%) carry Must-Staple (%zu from Let's Encrypt)\n",
      deployment.total_certs, deployment.ocsp_certs,
      deployment.total_certs ? 100.0 * static_cast<double>(deployment.ocsp_certs) /
                                   static_cast<double>(deployment.total_certs)
                             : 0.0,
      deployment.must_staple_certs,
      deployment.total_certs
          ? 100.0 * static_cast<double>(deployment.must_staple_certs) /
                static_cast<double>(deployment.total_certs)
          : 0.0,
      deployment.must_staple_lets_encrypt);
  out << util::format("OCSP responders: average failure rate %.2f%%\n",
                      100.0 * average_failure_rate);
  if (lint.artifacts() > 0) {
    out << "Lint: " << lint.summary() << "\n";
  }
  out << "\n";
  for (const auto& verdict : verdicts) {
    out << "  [" << (verdict.ready ? "READY    " : "NOT READY") << "] "
        << verdict.principal << " — " << verdict.evidence << "\n";
  }
  out << "\nConclusion: the web is " << (web_is_ready ? "" : "NOT ")
      << "ready for OCSP Must-Staple.\n";
  if (!timeline_summary.empty()) out << "\n" << timeline_summary;
  if (!trace_summary.empty()) out << "\n" << trace_summary;
  if (!resource_summary.empty()) out << "\n" << resource_summary;
  if (!profile_summary.empty()) out << "\n" << profile_summary;
  return out.str();
}

}  // namespace mustaple::core
