// A TLS-1.2-shaped handshake model carrying exactly the artifacts the study
// measures: the client's Certificate Status Request (status_request,
// RFC 6066) extension, the server's certificate chain, and the optional
// CertificateStatus message with a stapled OCSP response (RFC 6960 /
// RFC 6961). Record-layer crypto is not modelled — none of the paper's
// measurements depend on it.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ocsp/verify.hpp"
#include "util/bytes.hpp"
#include "util/sim_time.hpp"
#include "x509/verify.hpp"

namespace mustaple::tls {

/// ClientHello, reduced to what matters: SNI + status_request(_v2).
struct ClientHello {
  std::string server_name;
  /// True when the client advertises the Certificate Status Request
  /// extension — Table 2 row "Request OCSP response".
  bool status_request = false;
  /// RFC 6961 status_request_v2: solicit staples for the WHOLE chain. The
  /// paper (§2.3) notes this extension "has yet to see wide adoption"; it
  /// is implemented here for the what-if analyses.
  bool status_request_v2 = false;
};

/// The server's half of the handshake.
struct ServerHello {
  std::vector<x509::Certificate> chain;  ///< leaf first
  /// CertificateStatus message: a DER OCSPResponse, present only if the
  /// server stapled one (and the client asked).
  std::optional<util::Bytes> stapled_ocsp;
  /// RFC 6961 ocsp_multi: one DER OCSPResponse per chain element (entries
  /// may be empty when the server has nothing for that position). Sent only
  /// when the client advertised status_request_v2.
  std::vector<util::Bytes> stapled_ocsp_list;
  /// Extra handshake delay imposed by the server (e.g. Apache pausing the
  /// handshake while it fetches an OCSP response on demand — Table 3).
  double extra_delay_ms = 0.0;
  /// Simulated handshake failure (server down / refused).
  bool connection_failed = false;
};

/// Server-side handshake entry point: a web-server model bound to a name.
using ServerHandshakeFn =
    std::function<ServerHello(const ClientHello&, util::SimTime now)>;

/// Name → TLS endpoint directory for the simulated web. The TLS-handshake
/// scans of §7.1 walk this directory the way Censys walks Alexa domains.
class TlsDirectory {
 public:
  void bind(const std::string& host, ServerHandshakeFn handler);
  bool has(const std::string& host) const;

  /// Performs the handshake; returns nullopt if no endpoint exists.
  std::optional<ServerHello> connect(const ClientHello& hello,
                                     util::SimTime now) const;

  std::size_t size() const { return endpoints_.size(); }

 private:
  std::map<std::string, ServerHandshakeFn> endpoints_;
};

/// What a client concluded from one handshake (before applying its
/// hard/soft-fail policy — that policy lives in the browser module).
struct HandshakeObservation {
  bool connected = false;
  bool certificate_valid = false;  ///< chain verified to a root
  x509::ChainError chain_error = x509::ChainError::kOk;
  bool must_staple = false;        ///< leaf carries the Must-Staple extension
  bool staple_present = false;
  /// Client-side validation of the stapled response, when present.
  std::optional<ocsp::VerifiedResponse> staple_check;
  /// RFC 6961 path: per-chain-position validations (index-aligned with the
  /// served chain; missing staples yield entries with kUnparseable).
  std::vector<ocsp::VerifiedResponse> staple_chain_checks;
  double handshake_delay_ms = 0.0;

  const x509::Certificate* leaf = nullptr;  ///< into the ServerHello's chain
};

/// Runs the client side of a handshake: connect, validate the chain against
/// `roots`, and (if a staple came back) validate it against the leaf's
/// issuer key. `hello.status_request` controls whether a staple is even
/// solicited. The returned observation references `server_hello`'s chain.
HandshakeObservation observe_handshake(const TlsDirectory& directory,
                                       const ClientHello& hello,
                                       const x509::RootStore& roots,
                                       util::SimTime now,
                                       ServerHello& server_hello_out);

}  // namespace mustaple::tls
