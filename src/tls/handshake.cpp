#include "tls/handshake.hpp"

namespace mustaple::tls {

void TlsDirectory::bind(const std::string& host, ServerHandshakeFn handler) {
  endpoints_[host] = std::move(handler);
}

bool TlsDirectory::has(const std::string& host) const {
  return endpoints_.count(host) > 0;
}

std::optional<ServerHello> TlsDirectory::connect(const ClientHello& hello,
                                                 util::SimTime now) const {
  const auto it = endpoints_.find(hello.server_name);
  if (it == endpoints_.end()) return std::nullopt;
  return it->second(hello, now);
}

HandshakeObservation observe_handshake(const TlsDirectory& directory,
                                       const ClientHello& hello,
                                       const x509::RootStore& roots,
                                       util::SimTime now,
                                       ServerHello& server_hello_out) {
  HandshakeObservation obs;
  auto server = directory.connect(hello, now);
  if (!server || server->connection_failed) return obs;
  server_hello_out = std::move(*server);
  if (server_hello_out.chain.empty()) return obs;

  obs.connected = true;
  obs.handshake_delay_ms = server_hello_out.extra_delay_ms;
  obs.leaf = &server_hello_out.chain.front();
  obs.must_staple = obs.leaf->extensions().must_staple;

  const x509::ChainResult chain =
      x509::verify_chain(server_hello_out.chain, roots, now);
  obs.chain_error = chain.error;
  obs.certificate_valid = chain.ok();

  // RFC 6961 multi-staple validation: entry i covers chain[i], verified
  // against chain[i+1]'s key (or the trusted root for the top element).
  if (hello.status_request_v2 && !server_hello_out.stapled_ocsp_list.empty()) {
    const auto& chain = server_hello_out.chain;
    for (std::size_t i = 0; i < server_hello_out.stapled_ocsp_list.size() &&
                            i < chain.size();
         ++i) {
      const x509::Certificate* issuer = nullptr;
      if (i + 1 < chain.size()) {
        issuer = &chain[i + 1];
      } else {
        issuer = roots.find_issuer(chain[i].issuer());
      }
      if (issuer == nullptr) {
        obs.staple_chain_checks.emplace_back();  // defaults to kUnparseable
        continue;
      }
      const ocsp::CertId id = ocsp::CertId::for_certificate(chain[i], *issuer);
      obs.staple_chain_checks.push_back(ocsp::verify_ocsp_response(
          server_hello_out.stapled_ocsp_list[i], id, issuer->public_key(),
          now));
    }
  }

  // A server must not send CertificateStatus unless the client solicited it;
  // enforce the RFC 6066 contract here.
  if (hello.status_request && server_hello_out.stapled_ocsp) {
    obs.staple_present = true;
    // The staple is validated against the leaf's ISSUER key: that is the key
    // that signed the certificate and (directly or via delegation) the OCSP
    // response. With a chain of length one (self-signed), use its own key.
    const crypto::PublicKey& issuer_key =
        server_hello_out.chain.size() > 1
            ? server_hello_out.chain[1].public_key()
            : server_hello_out.chain[0].public_key();
    const x509::Certificate& issuer =
        server_hello_out.chain.size() > 1 ? server_hello_out.chain[1]
                                          : server_hello_out.chain[0];
    const ocsp::CertId id = ocsp::CertId::for_certificate(*obs.leaf, issuer);
    obs.staple_check = ocsp::verify_ocsp_response(
        *server_hello_out.stapled_ocsp, id, issuer_key.empty()
                                                ? obs.leaf->public_key()
                                                : issuer_key,
        now);
  }
  return obs;
}

}  // namespace mustaple::tls
