#include "ct/log.hpp"

#include "crypto/sha256.hpp"

namespace mustaple::ct {

namespace {

using util::Bytes;

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

CtLog::CtLog(std::string name, util::Rng& rng)
    : name_(std::move(name)), key_(crypto::KeyPair::generate_sim(rng)) {
  log_id_ = crypto::Sha256::hash(key_.public_key().encode());
}

Bytes CtLog::sct_payload(util::SimTime timestamp, const Bytes& cert_der) {
  Bytes payload = util::bytes_of("ct-sct-v1");
  append_u64(payload, static_cast<std::uint64_t>(timestamp.unix_seconds));
  util::append(payload, cert_der);
  return payload;
}

Bytes CtLog::sth_payload(std::uint64_t tree_size, util::SimTime timestamp,
                         const Bytes& root_hash) {
  Bytes payload = util::bytes_of("ct-sth-v1");
  append_u64(payload, tree_size);
  append_u64(payload, static_cast<std::uint64_t>(timestamp.unix_seconds));
  util::append(payload, root_hash);
  return payload;
}

SignedCertificateTimestamp CtLog::submit(const x509::Certificate& cert,
                                         util::SimTime now) {
  const Bytes der = cert.encode_der();
  tree_.append(der);
  SignedCertificateTimestamp sct;
  sct.log_id = log_id_;
  sct.timestamp = now;
  sct.signature = key_.sign(sct_payload(now, der));
  return sct;
}

util::Result<x509::Certificate> CtLog::entry(std::uint64_t index) const {
  return x509::Certificate::parse(tree_.entry(index));
}

SignedTreeHead CtLog::tree_head(util::SimTime now) const {
  SignedTreeHead sth;
  sth.tree_size = tree_.size();
  sth.timestamp = now;
  sth.root_hash = tree_.root_hash();
  sth.signature = key_.sign(sth_payload(sth.tree_size, now, sth.root_hash));
  return sth;
}

bool CtLog::verify_sct(const x509::Certificate& cert,
                       const SignedCertificateTimestamp& sct,
                       const crypto::PublicKey& log_key) {
  if (sct.log_id != crypto::Sha256::hash(log_key.encode())) return false;
  return log_key.verify(sct_payload(sct.timestamp, cert.encode_der()),
                        sct.signature);
}

bool CtLog::verify_tree_head(const SignedTreeHead& sth,
                             const crypto::PublicKey& log_key) {
  return log_key.verify(
      sth_payload(sth.tree_size, sth.timestamp, sth.root_hash),
      sth.signature);
}

bool CtLog::verify_entry_inclusion(const x509::Certificate& cert,
                                   std::uint64_t leaf_index,
                                   const SignedTreeHead& sth) const {
  if (leaf_index >= sth.tree_size || sth.tree_size > tree_.size()) {
    return false;
  }
  const auto proof = tree_.inclusion_proof(leaf_index, sth.tree_size);
  return MerkleTree::verify_inclusion(cert.encode_der(), leaf_index,
                                      sth.tree_size, proof, sth.root_hash);
}

}  // namespace mustaple::ct
