// A Certificate Transparency log (RFC 6962-shaped): certificates are
// submitted at issuance, the log returns a Signed Certificate Timestamp,
// publishes Signed Tree Heads, and serves inclusion/consistency proofs.
// Together with the simulated IPv4 scan this feeds the Censys-style
// snapshot pipeline the paper's §4 corpus comes from.
#pragma once

#include <string>
#include <vector>

#include "crypto/signer.hpp"
#include "ct/merkle.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "x509/certificate.hpp"

namespace mustaple::ct {

/// SCT: the log's promise to incorporate a certificate.
struct SignedCertificateTimestamp {
  util::Bytes log_id;  ///< SHA-256 of the log's public key
  util::SimTime timestamp{};
  util::Bytes signature;  ///< over timestamp || cert DER
};

/// STH: a signed snapshot of the tree.
struct SignedTreeHead {
  std::uint64_t tree_size = 0;
  util::SimTime timestamp{};
  util::Bytes root_hash;
  util::Bytes signature;  ///< over tree_size || timestamp || root_hash
};

class CtLog {
 public:
  CtLog(std::string name, util::Rng& rng);

  const std::string& name() const { return name_; }
  const util::Bytes& log_id() const { return log_id_; }
  const crypto::PublicKey& public_key() const { return key_.public_key(); }
  std::uint64_t size() const { return tree_.size(); }

  /// Submits a certificate; returns the SCT. Duplicate submissions append
  /// duplicate entries, as real logs do.
  SignedCertificateTimestamp submit(const x509::Certificate& cert,
                                    util::SimTime now);

  /// The certificate at a given index (parsed from the stored entry).
  util::Result<x509::Certificate> entry(std::uint64_t index) const;

  SignedTreeHead tree_head(util::SimTime now) const;

  std::vector<util::Bytes> inclusion_proof(std::uint64_t leaf_index,
                                           std::uint64_t tree_size) const {
    return tree_.inclusion_proof(leaf_index, tree_size);
  }
  std::vector<util::Bytes> consistency_proof(std::uint64_t old_size,
                                             std::uint64_t new_size) const {
    return tree_.consistency_proof(old_size, new_size);
  }

  /// Client-side checks.
  static bool verify_sct(const x509::Certificate& cert,
                         const SignedCertificateTimestamp& sct,
                         const crypto::PublicKey& log_key);
  static bool verify_tree_head(const SignedTreeHead& sth,
                               const crypto::PublicKey& log_key);
  bool verify_entry_inclusion(const x509::Certificate& cert,
                              std::uint64_t leaf_index,
                              const SignedTreeHead& sth) const;

 private:
  static util::Bytes sct_payload(util::SimTime timestamp,
                                 const util::Bytes& cert_der);
  static util::Bytes sth_payload(std::uint64_t tree_size,
                                 util::SimTime timestamp,
                                 const util::Bytes& root_hash);

  std::string name_;
  crypto::KeyPair key_;
  util::Bytes log_id_;
  MerkleTree tree_;
};

}  // namespace mustaple::ct
