#include "ct/merkle.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace mustaple::ct {

namespace {

using util::Bytes;

/// Largest power of two strictly less than n (n >= 2).
std::uint64_t split_point(std::uint64_t n) {
  std::uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Bytes leaf_hash(const Bytes& entry) {
  crypto::Sha256 hasher;
  const std::uint8_t prefix = 0x00;
  hasher.update(&prefix, 1);
  hasher.update(entry);
  return hasher.digest();
}

Bytes node_hash(const Bytes& left, const Bytes& right) {
  crypto::Sha256 hasher;
  const std::uint8_t prefix = 0x01;
  hasher.update(&prefix, 1);
  hasher.update(left);
  hasher.update(right);
  return hasher.digest();
}

std::uint64_t MerkleTree::append(Bytes entry) {
  leaf_hashes_.push_back(leaf_hash(entry));
  leaves_.push_back(std::move(entry));
  return leaves_.size() - 1;
}

const Bytes& MerkleTree::entry(std::uint64_t index) const {
  if (index >= leaves_.size()) {
    throw std::out_of_range("MerkleTree::entry: index out of range");
  }
  return leaves_[index];
}

Bytes MerkleTree::subtree_hash(std::uint64_t begin, std::uint64_t end) const {
  const std::uint64_t n = end - begin;
  if (n == 0) return crypto::Sha256::hash({});
  if (n == 1) return leaf_hashes_[begin];
  const std::uint64_t k = split_point(n);
  return node_hash(subtree_hash(begin, begin + k),
                   subtree_hash(begin + k, end));
}

Bytes MerkleTree::root_hash(std::uint64_t tree_size) const {
  if (tree_size > size()) {
    throw std::out_of_range("MerkleTree::root_hash: tree_size too large");
  }
  return subtree_hash(0, tree_size);
}

void MerkleTree::subtree_path(std::uint64_t index, std::uint64_t begin,
                              std::uint64_t end,
                              std::vector<Bytes>& out) const {
  const std::uint64_t n = end - begin;
  if (n == 1) return;
  const std::uint64_t k = split_point(n);
  if (index < k) {
    subtree_path(index, begin, begin + k, out);
    out.push_back(subtree_hash(begin + k, end));
  } else {
    subtree_path(index - k, begin + k, end, out);
    out.push_back(subtree_hash(begin, begin + k));
  }
}

std::vector<Bytes> MerkleTree::inclusion_proof(std::uint64_t leaf_index,
                                               std::uint64_t tree_size) const {
  if (tree_size > size() || leaf_index >= tree_size) {
    throw std::out_of_range("MerkleTree::inclusion_proof: bad arguments");
  }
  std::vector<Bytes> proof;
  subtree_path(leaf_index, 0, tree_size, proof);
  return proof;
}

void MerkleTree::subproof(std::uint64_t m, std::uint64_t begin,
                          std::uint64_t end, bool complete,
                          std::vector<Bytes>& out) const {
  const std::uint64_t n = end - begin;
  if (m == n) {
    if (!complete) out.push_back(subtree_hash(begin, end));
    return;
  }
  const std::uint64_t k = split_point(n);
  if (m <= k) {
    subproof(m, begin, begin + k, complete, out);
    out.push_back(subtree_hash(begin + k, end));
  } else {
    subproof(m - k, begin + k, end, /*complete=*/false, out);
    out.push_back(subtree_hash(begin, begin + k));
  }
}

std::vector<Bytes> MerkleTree::consistency_proof(
    std::uint64_t old_size, std::uint64_t new_size) const {
  if (old_size == 0 || old_size > new_size || new_size > size()) {
    throw std::out_of_range("MerkleTree::consistency_proof: bad sizes");
  }
  std::vector<Bytes> proof;
  if (old_size == new_size) return proof;  // identical trees: empty proof
  subproof(old_size, 0, new_size, /*complete=*/true, proof);
  return proof;
}

namespace {

/// Recomputes the subtree root for `verify_inclusion`, consuming sibling
/// hashes from the END of `proof` (they were appended bottom-up).
bool root_from_path(const Bytes& leaf, std::uint64_t index, std::uint64_t n,
                    std::vector<Bytes>& proof, Bytes& out) {
  if (n == 1) {
    out = leaf;
    return true;
  }
  if (proof.empty()) return false;
  const Bytes sibling = proof.back();
  proof.pop_back();
  const std::uint64_t k = split_point(n);
  Bytes child;
  if (index < k) {
    if (!root_from_path(leaf, index, k, proof, child)) return false;
    out = node_hash(child, sibling);
  } else {
    if (!root_from_path(leaf, index - k, n - k, proof, child)) return false;
    out = node_hash(sibling, child);
  }
  return true;
}

/// Recomputes (old_root, new_root) for `verify_consistency`, consuming from
/// the end of `proof`.
bool roots_from_consistency(std::uint64_t m, std::uint64_t n, bool complete,
                            std::vector<Bytes>& proof, Bytes& old_out,
                            Bytes& new_out, const Bytes& old_root_claim) {
  if (m == n) {
    if (complete) {
      // The old tree is a complete prefix subtree: its hash is the claimed
      // old root itself (no proof element).
      old_out = old_root_claim;
      new_out = old_root_claim;
      return true;
    }
    if (proof.empty()) return false;
    old_out = proof.back();
    new_out = proof.back();
    proof.pop_back();
    return true;
  }
  if (proof.empty()) return false;
  const Bytes sibling = proof.back();
  proof.pop_back();
  const std::uint64_t k = split_point(n);
  Bytes old_child;
  Bytes new_child;
  if (m <= k) {
    if (!roots_from_consistency(m, k, complete, proof, old_child, new_child,
                                old_root_claim)) {
      return false;
    }
    old_out = old_child;  // the old tree lives entirely in the left subtree
    new_out = node_hash(new_child, sibling);
  } else {
    if (!roots_from_consistency(m - k, n - k, /*complete=*/false, proof,
                                old_child, new_child, old_root_claim)) {
      return false;
    }
    old_out = node_hash(sibling, old_child);
    new_out = node_hash(sibling, new_child);
  }
  return true;
}

}  // namespace

bool MerkleTree::verify_inclusion(const Bytes& entry,
                                  std::uint64_t leaf_index,
                                  std::uint64_t tree_size,
                                  const std::vector<Bytes>& proof,
                                  const Bytes& root) {
  if (tree_size == 0 || leaf_index >= tree_size) return false;
  std::vector<Bytes> working = proof;
  Bytes computed;
  if (!root_from_path(leaf_hash(entry), leaf_index, tree_size, working,
                      computed)) {
    return false;
  }
  return working.empty() && computed == root;
}

bool MerkleTree::verify_consistency(std::uint64_t old_size,
                                    std::uint64_t new_size,
                                    const Bytes& old_root,
                                    const Bytes& new_root,
                                    const std::vector<Bytes>& proof) {
  if (old_size == 0 || old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  std::vector<Bytes> working = proof;
  Bytes computed_old;
  Bytes computed_new;
  if (!roots_from_consistency(old_size, new_size, /*complete=*/true, working,
                              computed_old, computed_new, old_root)) {
    return false;
  }
  return working.empty() && computed_old == old_root &&
         computed_new == new_root;
}

}  // namespace mustaple::ct
