// RFC 6962 Merkle hash tree: the data structure behind Certificate
// Transparency logs, one of the two sources of the paper's certificate
// corpus (§4: Censys "aggregates certificates using both full IPv4 port 443
// scans and public Certificate Transparency logs").
//
// Implements the Merkle Tree Hash, audit (inclusion) paths, consistency
// proofs, and both verifiers, exactly per RFC 6962 §2.1.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mustaple::ct {

/// Leaf hash: SHA-256(0x00 || entry).
util::Bytes leaf_hash(const util::Bytes& entry);

/// Interior node hash: SHA-256(0x01 || left || right).
util::Bytes node_hash(const util::Bytes& left, const util::Bytes& right);

/// An append-only Merkle tree over opaque byte entries.
class MerkleTree {
 public:
  /// Appends an entry; returns its index.
  std::uint64_t append(util::Bytes entry);

  std::uint64_t size() const { return leaves_.size(); }
  const util::Bytes& entry(std::uint64_t index) const;

  /// MTH over the first `tree_size` entries (defaults to the whole tree).
  /// MTH of an empty tree is SHA-256 of the empty string.
  util::Bytes root_hash() const { return root_hash(size()); }
  util::Bytes root_hash(std::uint64_t tree_size) const;

  /// Audit path for `leaf_index` within the first `tree_size` entries
  /// (RFC 6962 §2.1.1 PATH). Throws std::out_of_range on bad arguments.
  std::vector<util::Bytes> inclusion_proof(std::uint64_t leaf_index,
                                           std::uint64_t tree_size) const;

  /// Consistency proof between the tree at `old_size` and at `new_size`
  /// (RFC 6962 §2.1.2 PROOF). Requires 0 < old_size <= new_size <= size().
  std::vector<util::Bytes> consistency_proof(std::uint64_t old_size,
                                             std::uint64_t new_size) const;

  /// Verifies an audit path against a root hash.
  static bool verify_inclusion(const util::Bytes& entry,
                               std::uint64_t leaf_index,
                               std::uint64_t tree_size,
                               const std::vector<util::Bytes>& proof,
                               const util::Bytes& root);

  /// Verifies a consistency proof between two signed tree heads.
  static bool verify_consistency(std::uint64_t old_size,
                                 std::uint64_t new_size,
                                 const util::Bytes& old_root,
                                 const util::Bytes& new_root,
                                 const std::vector<util::Bytes>& proof);

 private:
  util::Bytes subtree_hash(std::uint64_t begin, std::uint64_t end) const;
  void subtree_path(std::uint64_t index, std::uint64_t begin,
                    std::uint64_t end, std::vector<util::Bytes>& out) const;
  void subproof(std::uint64_t m, std::uint64_t begin, std::uint64_t end,
                bool complete, std::vector<util::Bytes>& out) const;

  std::vector<util::Bytes> leaves_;       ///< raw entries
  std::vector<util::Bytes> leaf_hashes_;  ///< precomputed leaf hashes
};

}  // namespace mustaple::ct
