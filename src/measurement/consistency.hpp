// The CRL <-> OCSP consistency audit of paper §5.4: build a revoked
// population across CAs, download each CA's CRL over the simulated network,
// issue OCSP requests for every revoked serial, and diff the two channels on
// three axes — revocation STATUS (Table 1), revocation TIME (Fig 10), and
// revocation REASON (the 15% reason-code discrepancy result).
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "measurement/ecosystem.hpp"
#include "util/stats.hpp"

namespace mustaple::measurement {

struct ConsistencyConfig {
  /// Total revoked certificates to audit (paper: 728,261; scaled default
  /// 1:100). Table-1 CAs get pinned counts on top of this bulk.
  std::size_t revoked_population = 7000;
  /// When the audit runs (paper: May 1st, 2018).
  util::SimTime audit_time = util::make_time(2018, 5, 1);
  /// Fraction of revocations carrying a CRL reason code that the OCSP
  /// database drops (drives the 15% reason-discrepancy figure).
  double reason_code_fraction = 0.15;
  /// Fraction of non-Microsoft revocations whose OCSP revocation time is
  /// skewed relative to the CRL (Fig 10: 0.15% differ overall).
  double time_skew_fraction = 0.0015;
  /// Retained-finding cap for the audit's lint report (counts stay exact
  /// past the cap; see lint::LintReport).
  std::size_t lint_finding_capacity = 100'000;
};

/// One Table 1 row: how the CA's OCSP responder answered for certificates
/// its own CRL lists as revoked.
struct DiscrepancyRow {
  std::string ocsp_url;
  std::string crl_url;
  std::size_t answered_unknown = 0;
  std::size_t answered_good = 0;
  std::size_t answered_revoked = 0;

  bool has_discrepancy() const {
    return answered_unknown + answered_good > 0;
  }
};

struct ConsistencyReport {
  std::size_t probed = 0;
  std::size_t responses_collected = 0;  ///< paper: 99.9%
  std::size_t crls_downloaded = 0;

  std::vector<DiscrepancyRow> table1;  ///< only rows with discrepancies

  // Revocation-time comparison (Fig 10).
  std::size_t time_compared = 0;
  std::size_t time_differing = 0;      ///< paper: 863 (0.15%)
  std::size_t time_negative = 0;       ///< paper: 127 (14.7% of differing)
  util::Cdf time_delta_seconds;        ///< |OCSP - CRL| for differing pairs
  double max_positive_delta_seconds = 0.0;  ///< paper tail: >137M s (4+ years)

  // Reason-code comparison.
  std::size_t reason_compared = 0;
  std::size_t reason_differing = 0;   ///< paper: ~15%
  std::size_t reason_crl_only = 0;    ///< paper: 99.99% of differing

  /// Lint findings over every downloaded CRL plus every collected OCSP
  /// response (as crl-ocsp-pair artifacts keyed by responder host). The
  /// cross-check rule counts reproduce the report's own numbers:
  /// e_xcheck_crl_revoked_ocsp_good/unknown sum to the Table-1 good/unknown
  /// columns, w_xcheck_revocation_time_differs == time_differing, and
  /// w_xcheck_reason_code_differs == reason_differing.
  lint::LintReport lint;
};

class ConsistencyAudit {
 public:
  ConsistencyAudit(Ecosystem& ecosystem, ConsistencyConfig config);

  /// Seeds the revoked population and runs the audit.
  ConsistencyReport run(util::Rng& rng);

 private:
  struct AuditTarget {
    x509::Certificate cert;
    std::size_t ca_index = 0;
    std::size_t responder_index = 0;
  };

  void seed_population(util::Rng& rng);

  Ecosystem* ecosystem_;
  ConsistencyConfig config_;
  std::vector<AuditTarget> targets_;
};

}  // namespace mustaple::measurement
