#include "measurement/ecosystem.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mustaple::measurement {

namespace {

using util::Duration;
using util::Rng;
using util::SimTime;

// Named CA families. Indices are stable; the special-behaviour wiring below
// refers to them by these constants.
enum CaIndex : std::size_t {
  kLetsEncrypt = 0,
  kComodo,
  kDigiCert,
  kCertum,
  kWoSign,
  kStartSsl,
  kIdenTrust,
  kSheca,
  kPostSignum,
  kWayport,
  kMicrosoft,
  kGoDaddy,
  kGlobalSign,
  kSymantec,
  kCamerfirma,
  kQuoVadis,
  kTwca,
  kFirmaprofesional,
  kDfn,
  kUserTrust,
  kHiNet,
  kCnnic,
  kCpcGovAe,
  kAmazon,
  kNamedCaCount,
};

struct NamedCa {
  const char* name;
  double cert_share;
  double must_staple_share;
};

// cert_share calibration: Comodo ~22% and DigiCert ~13% of OCSP domains so
// the Fig 4 outage impacts land at the paper's 25%/13% marks; Let's Encrypt
// largest overall (§4: "current most-popular CA").
constexpr NamedCa kNamedCas[kNamedCaCount] = {
    {"Let's Encrypt", 0.26, 0.973},
    {"Comodo", 0.22, 0.0025},
    {"DigiCert", 0.13, 0.0},
    {"Certum", 0.02, 0.0},
    {"WoSign", 0.01, 0.0},
    {"StartSSL", 0.01, 0.0},
    {"IdenTrust", 0.004, 0.0},
    {"SHECA", 0.004, 0.0},
    {"PostSignum", 0.003, 0.0},
    {"Wayport", 0.001, 0.0},
    {"Microsoft", 0.015, 0.0},
    {"GoDaddy", 0.08, 0.0},
    {"GlobalSign", 0.05, 0.0},
    {"Symantec", 0.06, 0.0},
    {"Camerfirma", 0.003, 0.0},
    {"QuoVadis", 0.004, 0.0},
    {"TWCA", 0.003, 0.0},
    {"Firmaprofesional", 0.002, 0.0},
    {"DFN", 0.004, 0.0241},
    {"UserTrust", 0.006, 0.0001},
    {"HiNet", 0.004, 0.0},
    {"CNNIC", 0.003, 0.0},
    {"CPC-Gov-AE", 0.001, 0.0},
    {"Amazon", 0.04, 0.0},
};

std::string slug(const std::string& name) {
  std::string out;
  for (char c : util::to_lower(name)) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (!out.empty() && out.back() != '-') {
      out += '-';
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

/// Draws a "normal" validity period with a one-week median (§8: "median
/// validity periods are a week").
Duration draw_validity(Rng& rng) {
  static const std::pair<Duration, double> kChoices[] = {
      {Duration::hours(12), 0.05}, {Duration::days(1), 0.10},
      {Duration::days(3), 0.15},   {Duration::days(4), 0.10},
      {Duration::days(7), 0.35},   {Duration::days(10), 0.15},
      {Duration::days(14), 0.10},
  };
  std::vector<double> weights;
  for (const auto& [d, w] : kChoices) weights.push_back(w);
  return kChoices[rng.weighted_index(weights)].first;
}

Duration draw_update_interval(Rng& rng, Duration validity) {
  // Typically a fraction of the validity, clamped to [1h, 3.5d].
  const std::int64_t target = validity.seconds / 4;
  const std::int64_t clamped =
      std::clamp<std::int64_t>(target, 3600, 302400);
  // Jitter by +-30%.
  const double factor = 0.7 + rng.uniform01() * 0.6;
  return Duration::secs(static_cast<std::int64_t>(
      static_cast<double>(clamped) * factor));
}

}  // namespace

Ecosystem::Ecosystem(const EcosystemConfig& config, net::EventLoop& loop)
    : config_(config),
      network_(std::make_unique<net::Network>(loop, config.seed)),
      population_tally_(util::alloc_counter("ecosystem.population")) {
  Rng rng(config_.seed);
  Rng ca_rng = rng.fork("cas");
  Rng responder_rng = rng.fork("responders");
  Rng fault_rng = rng.fork("faults");
  Rng domain_rng = rng.fork("domains");
  Rng target_rng = rng.fork("targets");
  build_cas(ca_rng);
  build_responders(responder_rng);
  build_fault_schedule(fault_rng);
  build_domains(domain_rng);
  build_scan_targets(target_rng);

  // Charge the retained population to "ecosystem.population": container
  // storage plus each scan-target certificate's variable-length DER pieces
  // (the dominant per-certificate heap cost).
  std::size_t bytes = scan_targets_.capacity() * sizeof(ScanTarget) +
                      domains_.capacity() * sizeof(DomainMeta) +
                      responders_.capacity() * sizeof(ResponderInfo);
  for (const ScanTarget& t : scan_targets_) {
    bytes += t.cert.tbs_der().capacity() + t.cert.signature().capacity() +
             t.cert.serial().capacity();
  }
  population_tally_.record(bytes);
}

void Ecosystem::build_cas(Rng& rng) {
  // Founded such that the 10-year intermediates comfortably cover the
  // 2016-2018 measurement window.
  const SimTime founded = util::make_time(2012, 1, 1);
  for (std::size_t i = 0; i < kNamedCaCount; ++i) {
    ca_shares_.push_back(CaShare{kNamedCas[i].name, kNamedCas[i].cert_share,
                                 kNamedCas[i].must_staple_share});
  }
  // Regional fillers take the residual share.
  const std::size_t regional_count =
      std::max<std::size_t>(4, config_.responder_count / 16);
  double named_total = 0.0;
  for (const auto& ca : ca_shares_) named_total += ca.certificate_share;
  const double residual = std::max(0.02, 1.0 - named_total);
  for (std::size_t i = 0; i < regional_count; ++i) {
    ca_shares_.push_back(CaShare{"Regional-" + std::to_string(i + 1),
                                 residual / static_cast<double>(regional_count),
                                 0.0});
  }
  lets_encrypt_index_ = kLetsEncrypt;

  for (const auto& share : ca_shares_) {
    authorities_.push_back(std::make_unique<ca::CertificateAuthority>(
        share.name, founded, rng, config_.use_rsa));
    roots_.add(authorities_.back()->root_cert());
  }
  // One CRL server per CA.
  for (std::size_t i = 0; i < authorities_.size(); ++i) {
    crl_servers_.push_back(std::make_unique<ca::CrlServer>(
        *authorities_[i], "crl." + slug(ca_shares_[i].name) + ".example"));
    crl_servers_.back()->install(*network_);
  }
}

void Ecosystem::build_responders(Rng& rng) {
  const SimTime end = config_.campaign_end;

  auto default_behavior = [&](Rng& r) {
    ca::ResponderBehavior b;
    b.pre_generate = r.chance(config_.frac_pre_generate);
    const Duration validity = draw_validity(r);
    b.validity = validity;
    b.update_interval = draw_update_interval(r, validity);
    b.this_update_margin = Duration::minutes(
        static_cast<std::int64_t>(15 + r.uniform(105)));  // 15min..2h
    if (r.chance(0.10)) b.backends = 2 + static_cast<int>(r.uniform(2));
    b.delegate_signing = r.chance(0.5);
    return b;
  };

  auto add = [&](const std::string& host, std::size_t ca_index,
                 ca::ResponderBehavior behavior, double domain_weight) {
    ResponderInfo info;
    info.host = host;
    info.ca_index = ca_index;
    info.behavior = behavior;
    responders_.push_back(info);
    responder_services_.push_back(std::make_unique<ca::OcspResponder>(
        *authorities_[ca_index], behavior, host, rng));
    responder_services_.back()->install(*network_);
    domain_weights_.push_back(domain_weight);
  };

  // --- Special groups (wired to the paper's named incidents) -------------
  // Comodo: canonical + 8 CNAME aliases + 6 same-IP siblings.
  add("ocsp.comodoca.com", kComodo, default_behavior(rng), 4.0);
  for (int i = 0; i < 8; ++i) {
    const std::string alias = "ocsp" + std::to_string(i + 2) + ".comodoca.com";
    network_->dns().add_cname(alias, "ocsp.comodoca.com");
    add(alias, kComodo, default_behavior(rng), 1.0);
  }
  for (int i = 0; i < 6; ++i) {
    const std::string sibling = "ocsp.comodoca" + std::to_string(i + 2) + ".com";
    network_->dns().add_cname(sibling, "ocsp.comodoca.com");
    add(sibling, kComodo, default_behavior(rng), 1.0);
  }
  // DigiCert: 4 main + 5 digitalcertvalidation (tiny domain weight — the
  // paper's 318 always-failing Sao Paulo domains).
  add("ocsp.digicert.com", kDigiCert, default_behavior(rng), 4.0);
  add("ocsp1.digicert.com", kDigiCert, default_behavior(rng), 2.0);
  add("ocsp2.digicert.com", kDigiCert, default_behavior(rng), 2.0);
  add("ocspx.digicert.com", kDigiCert, default_behavior(rng), 2.0);
  for (const char* letter : {"a", "d", "e", "g", "h"}) {
    add(std::string("status") + letter + ".digitalcertvalidation.com",
        kDigiCert, default_behavior(rng), 0.004);
  }
  // Certum: 16 responders (Sydney outage).
  for (int i = 0; i < 16; ++i) {
    add("ocsp" + std::to_string(i + 1) + ".certum.pl", kCertum,
        default_behavior(rng), 1.0);
  }
  // WoSign / StartSSL (joint outage Aug 3).
  add("ocsp.wosign.com", kWoSign, default_behavior(rng), 1.0);
  add("ocsp2.wosign.com", kWoSign, default_behavior(rng), 1.0);
  add("ocsp.startssl.com", kStartSsl, default_behavior(rng), 1.0);
  add("ocsp.startcom.org", kStartSsl, default_behavior(rng), 1.0);
  // IdenTrust: never reachable from anywhere.
  add("ocsp.identrustsafeca1.identrust.com", kIdenTrust,
      default_behavior(rng), 0.05);
  add("ocsp.identrustsaferootca2.identrust.com", kIdenTrust,
      default_behavior(rng), 0.05);
  // SHECA: the Apr 29 / Jul 28 "0"-body spikes.
  for (int i = 0; i < 6; ++i) {
    ca::ResponderBehavior b = default_behavior(rng);
    if (config_.apply_pathologies) {
      b.malform = ca::ResponderBehavior::Malform::kZeroBody;
      b.malform_windows = {
          {util::make_time(2018, 4, 29, 2), util::make_time(2018, 4, 29, 8)},
          {util::make_time(2018, 7, 28, 17), util::make_time(2018, 7, 28, 20)}};
    }
    add("ocsp" + std::to_string(i + 1) + ".sheca.com", kSheca, b, 0.3);
  }
  // PostSignum: "0" bodies from May 1, pausing May 12 09:00 for 17h.
  for (int i = 0; i < 3; ++i) {
    ca::ResponderBehavior b = default_behavior(rng);
    if (config_.apply_pathologies) {
      b.malform = ca::ResponderBehavior::Malform::kZeroBody;
      b.malform_windows = {
          {util::make_time(2018, 5, 1), util::make_time(2018, 5, 12, 9)},
          {util::make_time(2018, 5, 13, 2), end}};
    }
    add("ocsp" + std::to_string(i + 1) + ".postsignum.cz", kPostSignum, b, 0.3);
  }
  // Wayport: gradual death in the first month (Fig 3's early decline).
  for (int i = 0; i < 3; ++i) {
    add("ocsp" + std::to_string(i + 1) + ".pki.wayport.net", kWayport,
        default_behavior(rng), 0.1);
  }
  // Microsoft: the ocsp.msocsp.com revocation-time lag (Fig 10 tail).
  add("ocsp.msocsp.com", kMicrosoft, default_behavior(rng), 1.5);
  // HiNet: validity == update interval (7200s), non-overlapping windows.
  for (int i = 0; i < 3; ++i) {
    ca::ResponderBehavior b;
    b.pre_generate = true;
    b.validity = Duration::secs(7200);
    b.update_interval = Duration::secs(7200);
    b.this_update_margin = Duration::secs(0);
    add("ocsp" + std::to_string(i + 1) + ".hinet.net", kHiNet, b, 0.5);
  }
  // CNNIC: 10800s/10800s with 3 unsynchronized backends (producedAt
  // regressions, footnote 17).
  {
    ca::ResponderBehavior b;
    b.pre_generate = true;
    b.validity = Duration::secs(10800);
    b.update_interval = Duration::secs(10800);
    b.this_update_margin = Duration::secs(0);
    b.backends = 3;
    add("ocspcnnicroot.cnnic.cn", kCnnic, b, 0.3);
  }
  // CPC Gov AE: whole chain (4 certificates incl. root) in every response.
  {
    ca::ResponderBehavior b = default_behavior(rng);
    b.extra_certs = 4;
    b.delegate_signing = false;
    add("ocsp.cpc.gov.ae", kCpcGovAe, b, 0.1);
  }
  // Table 1 CAs' responders.
  add("ocsp.camerfirma.com", kCamerfirma, default_behavior(rng), 0.3);
  add("ocsp.quovadisglobal.com", kQuoVadis, default_behavior(rng), 0.4);
  add("ss.symcd.com", kSymantec, default_behavior(rng), 2.0);
  add("ocsp.symantec.com", kSymantec, default_behavior(rng), 2.0);
  add("twcasslocsp.twca.com.tw", kTwca, default_behavior(rng), 0.3);
  add("ocsp2.globalsign.com", kGlobalSign, default_behavior(rng), 2.0);
  add("ocsp.globalsign.com", kGlobalSign, default_behavior(rng), 2.0);
  add("ocsp.firmaprofesional.com", kFirmaprofesional, default_behavior(rng), 0.2);
  // Remaining named CAs.
  for (int i = 0; i < 4; ++i) {
    add("ocsp.int-x" + std::to_string(i + 1) + ".letsencrypt.org",
        kLetsEncrypt, default_behavior(rng), 4.0);
  }
  add("ocsp.godaddy.com", kGoDaddy, default_behavior(rng), 3.0);
  add("ocsp2.godaddy.com", kGoDaddy, default_behavior(rng), 1.0);
  add("ocsp.pki.dfn.de", kDfn, default_behavior(rng), 0.3);
  add("ocsp.usertrust.com", kUserTrust, default_behavior(rng), 0.5);
  add("ocsp.rootca1.amazontrust.com", kAmazon, default_behavior(rng), 2.0);
  add("ocsp.sca1b.amazontrust.com", kAmazon, default_behavior(rng), 2.0);

  // --- Regional fillers up to responder_count ----------------------------
  const std::size_t regional_ca_base = kNamedCaCount;
  const std::size_t regional_ca_count = authorities_.size() - kNamedCaCount;
  std::size_t next_regional = 0;
  while (responders_.size() < config_.responder_count) {
    const std::size_t ca_index =
        regional_ca_count > 0
            ? regional_ca_base + (next_regional % regional_ca_count)
            : kLetsEncrypt;
    add("ocsp.regional-" + std::to_string(++next_regional) + ".example",
        ca_index, default_behavior(rng), 0.4);
  }

  // --- Behaviour-mix calibration over the full responder set -------------
  // Applied to non-special responders only, so the named incidents stay
  // exactly as scripted. Fractions are of the TOTAL population (paper's
  // denominators).
  if (!config_.apply_pathologies) return;  // the "fixed CAs" ablation
  const std::size_t total = responders_.size();
  std::vector<std::size_t> plain;  // indices free for random pathologies
  for (std::size_t i = 0; i < total; ++i) {
    const std::string& host = responders_[i].host;
    const bool special = host.find("sheca") != std::string::npos ||
                         host.find("postsignum") != std::string::npos ||
                         host.find("hinet") != std::string::npos ||
                         host.find("cnnic") != std::string::npos ||
                         host.find("cpc.gov") != std::string::npos;
    if (!special) plain.push_back(i);
  }
  // Deterministic shuffle of the plain indices.
  for (std::size_t i = plain.size(); i > 1; --i) {
    std::swap(plain[i - 1], plain[rng.uniform(i)]);
  }
  std::size_t cursor = 0;
  auto take = [&](double fraction) {
    const auto want = static_cast<std::size_t>(
        static_cast<double>(total) * fraction + 0.5);
    std::vector<std::size_t> out;
    while (out.size() < want && cursor < plain.size()) {
      out.push_back(plain[cursor++]);
    }
    return out;
  };
  auto rebuild = [&](std::size_t index) {
    // Replace the installed service so the new behaviour takes effect.
    responder_services_[index] = std::make_unique<ca::OcspResponder>(
        *authorities_[responders_[index].ca_index], responders_[index].behavior,
        responders_[index].host, rng);
    responder_services_[index]->install(*network_);
  };

  for (std::size_t i : take(config_.frac_persistent_malformed)) {
    static const ca::ResponderBehavior::Malform kModes[] = {
        ca::ResponderBehavior::Malform::kZeroBody,
        ca::ResponderBehavior::Malform::kEmptyBody,
        ca::ResponderBehavior::Malform::kJavascriptBody};
    responders_[i].behavior.malform = kModes[rng.uniform(3)];
    rebuild(i);
  }
  for (std::size_t i : take(config_.frac_blank_next_update)) {
    responders_[i].behavior.validity.reset();
    rebuild(i);
  }
  {
    auto huge = take(config_.frac_huge_validity);
    for (std::size_t k = 0; k < huge.size(); ++k) {
      const std::size_t i = huge[k];
      // One extreme outlier at 1,251 days; the rest 32-60 days.
      responders_[i].behavior.validity =
          k == 0 ? Duration::days(1251)
                 : Duration::days(32 + static_cast<std::int64_t>(
                                           rng.uniform(29)));
      rebuild(i);
    }
  }
  for (std::size_t i : take(config_.frac_zero_margin)) {
    responders_[i].behavior.this_update_margin = Duration::secs(0);
    responders_[i].behavior.pre_generate = false;  // generated on demand
    rebuild(i);
  }
  for (std::size_t i : take(config_.frac_future_this_update)) {
    responders_[i].behavior.this_update_margin = Duration::secs(
        -static_cast<std::int64_t>(60 + rng.uniform(1740)));  // 1-30 min ahead
    responders_[i].behavior.pre_generate = false;
    rebuild(i);
  }
  for (std::size_t i : take(config_.frac_twenty_serials)) {
    responders_[i].behavior.extra_serials = 19;
    rebuild(i);
  }
  for (std::size_t i :
       take(std::max(0.0, config_.frac_multi_serial - config_.frac_twenty_serials))) {
    responders_[i].behavior.extra_serials =
        1 + static_cast<int>(rng.uniform(5));
    rebuild(i);
  }
  for (std::size_t i : take(config_.frac_multi_cert)) {
    responders_[i].behavior.extra_certs = 1 + static_cast<int>(rng.uniform(3));
    rebuild(i);
  }
  // Three more responders whose validity period equals their update period
  // — with the scripted hinet (3) + cnnic (1) these make the paper's 7
  // "non-overlapping validity" responders (§5.4).
  for (std::size_t k = 0; k < 3 && cursor < plain.size(); ++k) {
    const std::size_t i = plain[cursor++];
    responders_[i].behavior.pre_generate = true;
    responders_[i].behavior.update_interval = Duration::hours(6);
    responders_[i].behavior.validity = Duration::hours(6);
    responders_[i].behavior.this_update_margin = Duration::secs(0);
    rebuild(i);
  }
}

void Ecosystem::build_fault_schedule(Rng& rng) {
  if (!config_.apply_fault_schedule) return;  // the "fixed CAs" ablation
  const SimTime start = config_.campaign_start;
  const SimTime end = config_.campaign_end;
  net::FaultPlan& plan = network_->faults();
  using net::FaultMode;
  using net::Region;

  auto window_rule = [&](const std::string& host, FaultMode mode,
                         std::set<Region> regions, SimTime from, SimTime to) {
    net::FaultRule rule;
    rule.canonical_host = network_->dns().canonical_name(host);
    rule.mode = mode;
    rule.regions = std::move(regions);
    rule.window_start = from;
    rule.window_end = to;
    plan.add(rule);
  };
  auto persistent_rule = [&](const std::string& host, FaultMode mode,
                             std::set<Region> regions) {
    net::FaultRule rule;
    rule.canonical_host = network_->dns().canonical_name(host);
    rule.mode = mode;
    rule.regions = std::move(regions);
    plan.add(rule);
  };

  // IdenTrust: never reachable from any vantage point.
  persistent_rule("ocsp.identrustsafeca1.identrust.com",
                  FaultMode::kTcpConnectFailure, {});
  persistent_rule("ocsp.identrustsaferootca2.identrust.com",
                  FaultMode::kTcpConnectFailure, {});

  // Comodo, Apr 25 19:00 for 2h, seen from Oregon / Sydney / Seoul only.
  // The CNAME'd aliases and same-IP siblings inherit via the canonical name.
  window_rule("ocsp.comodoca.com", FaultMode::kTcpConnectFailure,
              {Region::kOregon, Region::kSydney, Region::kSeoul},
              util::make_time(2018, 4, 25, 19), util::make_time(2018, 4, 25, 21));

  // WoSign + StartSSL, Aug 3 22:00 for 1h, all regions.
  for (const char* host : {"ocsp.wosign.com", "ocsp2.wosign.com",
                           "ocsp.startssl.com", "ocsp.startcom.org"}) {
    window_rule(host, FaultMode::kHttp503, {}, util::make_time(2018, 8, 3, 22),
                util::make_time(2018, 8, 3, 23));
  }

  // DigiCert family, Aug 27 09:00 for 5h, Seoul only (9 hosts).
  for (const char* host :
       {"ocsp.digicert.com", "ocsp1.digicert.com", "ocsp2.digicert.com",
        "ocspx.digicert.com", "statusa.digitalcertvalidation.com",
        "statusd.digitalcertvalidation.com", "statuse.digitalcertvalidation.com",
        "statusg.digitalcertvalidation.com",
        "statush.digitalcertvalidation.com"}) {
    window_rule(host, FaultMode::kTcpConnectFailure, {Region::kSeoul},
                util::make_time(2018, 8, 27, 9), util::make_time(2018, 8, 27, 14));
  }

  // Certum, Aug 9 17:00 for 2h, Sydney only (16 hosts).
  for (int i = 0; i < 16; ++i) {
    window_rule("ocsp" + std::to_string(i + 1) + ".certum.pl",
                FaultMode::kTcpConnectFailure, {Region::kSydney},
                util::make_time(2018, 8, 9, 17), util::make_time(2018, 8, 9, 19));
  }

  // digitalcertvalidation: HTTP 404 from Sao Paulo until the Aug 31 23:00
  // fix (the wellsfargo.com story).
  for (const char* letter : {"a", "d", "e", "g", "h"}) {
    window_rule(std::string("status") + letter + ".digitalcertvalidation.com",
                FaultMode::kHttp404, {Region::kSaoPaulo}, start,
                util::make_time(2018, 8, 31, 23));
  }

  // Wayport: each host dies for good at a random point in the first month,
  // producing Fig 3's gradual early decline.
  for (int i = 0; i < 3; ++i) {
    const SimTime death =
        start + Duration::hours(static_cast<std::int64_t>(
                    rng.uniform(30 * 24)));
    net::FaultRule rule;
    rule.canonical_host =
        "ocsp" + std::to_string(i + 1) + ".pki.wayport.net";
    rule.mode = FaultMode::kTcpConnectFailure;
    rule.window_start = death;
    plan.add(rule);
  }

  // Persistent single-region failures: the paper's 16 DNS / 4 TCP / 3 more
  // HTTP / 1 invalid-HTTPS-certificate responders, pinned so that Oregon,
  // Sao Paulo, Paris and Seoul always fail for 1 / 7 / 1 / 4 responders.
  std::vector<std::size_t> regionals;
  for (std::size_t i = 0; i < responders_.size(); ++i) {
    if (responders_[i].host.find("regional-") != std::string::npos) {
      regionals.push_back(i);
    }
  }
  std::size_t cursor = 0;
  auto next_regional_host = [&]() -> std::string {
    if (cursor < regionals.size()) return responders_[regionals[cursor++]].host;
    return responders_[cursor++ % responders_.size()].host;
  };
  struct Pin {
    FaultMode mode;
    Region region;
  };
  const Pin pins[] = {
      {FaultMode::kDnsNxDomain, Region::kOregon},
      {FaultMode::kDnsNxDomain, Region::kParis},
      {FaultMode::kDnsNxDomain, Region::kSeoul},
      {FaultMode::kDnsNxDomain, Region::kSeoul},
      {FaultMode::kTcpConnectFailure, Region::kSeoul},
      {FaultMode::kHttp500, Region::kSeoul},
      {FaultMode::kDnsNxDomain, Region::kSaoPaulo},
      {FaultMode::kTcpConnectFailure, Region::kSaoPaulo},
  };
  for (const Pin& pin : pins) {
    persistent_rule(next_regional_host(), pin.mode, {pin.region});
  }
  // Remaining DNS (11), TCP (2), HTTP (2) failures on random single regions.
  const auto random_region = [&rng] {
    return net::all_regions()[rng.uniform(net::kRegionCount)];
  };
  for (int i = 0; i < 11; ++i) {
    persistent_rule(next_regional_host(), FaultMode::kDnsNxDomain,
                    {random_region()});
  }
  for (int i = 0; i < 2; ++i) {
    persistent_rule(next_regional_host(), FaultMode::kTcpConnectFailure,
                    {random_region()});
  }
  for (int i = 0; i < 2; ++i) {
    persistent_rule(next_regional_host(),
                    rng.chance(0.5) ? FaultMode::kHttp404 : FaultMode::kHttp500,
                    {random_region()});
  }
  // One HTTPS responder served with an invalid certificate. Its AIA URLs
  // use https:// so the fault actually bites (build_scan_targets consults
  // https_pinned_host_).
  https_pinned_host_ = next_regional_host();
  persistent_rule(https_pinned_host_, FaultMode::kTlsCertInvalid,
                  {random_region()});

  // Random transient outages on the remaining population so ~36.8% of all
  // responders see at least one outage.
  const std::int64_t span_hours = (end - start).seconds / 3600;
  for (std::size_t i = 0; i < responders_.size(); ++i) {
    const std::string& host = responders_[i].host;
    if (host.find("comodoca") != std::string::npos ||
        host.find("digicert") != std::string::npos ||
        host.find("digitalcertvalidation") != std::string::npos ||
        host.find("certum") != std::string::npos ||
        host.find("wosign") != std::string::npos ||
        host.find("startssl") != std::string::npos ||
        host.find("startcom") != std::string::npos ||
        host.find("identrust") != std::string::npos ||
        host.find("wayport") != std::string::npos) {
      continue;  // already covered by a scripted incident
    }
    if (!rng.chance(0.30)) continue;
    const int outages = 1 + static_cast<int>(rng.uniform(2));
    for (int k = 0; k < outages; ++k) {
      const SimTime from = start + Duration::hours(static_cast<std::int64_t>(
                                       rng.uniform(static_cast<std::uint64_t>(
                                           std::max<std::int64_t>(1, span_hours - 6)))));
      const SimTime to =
          from + Duration::hours(1 + static_cast<std::int64_t>(rng.uniform(4)));
      std::set<Region> scope;
      if (!rng.chance(0.5)) {
        const int n = 1 + static_cast<int>(rng.uniform(3));
        for (int j = 0; j < n; ++j) scope.insert(random_region());
      }
      window_rule(host, rng.chance(0.5) ? FaultMode::kTcpConnectFailure
                                        : FaultMode::kHttp503,
                  scope, from, to);
    }
  }

  // Hosting regions for latency shaping: hash-spread across regions.
  for (const auto& info : responders_) {
    network_->set_host_region(
        network_->dns().canonical_name(info.host),
        net::all_regions()[std::hash<std::string>{}(info.host) % net::kRegionCount]);
  }
}

void Ecosystem::build_domains(Rng& rng) {
  domains_.reserve(config_.alexa_domains);
  const double n = static_cast<double>(config_.alexa_domains);

  // Cumulative responder weights per CA for weighted domain assignment.
  std::vector<std::vector<std::size_t>> by_ca(authorities_.size());
  std::vector<std::vector<double>> weights_by_ca(authorities_.size());
  for (std::size_t i = 0; i < responders_.size(); ++i) {
    by_ca[responders_[i].ca_index].push_back(i);
    weights_by_ca[responders_[i].ca_index].push_back(domain_weights_[i]);
  }
  std::vector<double> ca_weights;
  std::vector<double> ms_weights;
  for (const auto& share : ca_shares_) {
    ca_weights.push_back(share.certificate_share);
    ms_weights.push_back(share.must_staple_share);
  }

  for (std::uint32_t rank = 1; rank <= config_.alexa_domains; ++rank) {
    DomainMeta meta{};
    meta.rank = rank;
    const double r = static_cast<double>(rank) / n;

    // Fig 2 calibration: HTTPS ~75% and mildly declining; OCSP ~91% of
    // HTTPS certs, also mildly declining with rank.
    const bool https = rng.chance(0.78 - 0.10 * r);
    meta.https = https ? 1 : 0;
    if (https) {
      // Must-Staple is decided first: it steers the CA draw, because 97.3%
      // of Must-Staple certificates come from Let's Encrypt (§4).
      const bool must_staple = rng.chance(0.0001);
      std::size_t ca = rng.weighted_index(must_staple ? ms_weights : ca_weights);
      if (by_ca[ca].empty()) ca = kLetsEncrypt;
      meta.ca = static_cast<std::uint16_t>(ca);
      const bool ocsp =
          (must_staple || rng.chance(0.94 - 0.05 * r)) && !by_ca[ca].empty();
      meta.ocsp = ocsp ? 1 : 0;
      if (ocsp) {
        const std::size_t pick = rng.weighted_index(weights_by_ca[ca]);
        meta.responder = static_cast<std::uint16_t>(by_ca[ca][pick]);
        // Fig 11 calibration: ~40% stapling at the top, ~28% at the tail.
        meta.staples = rng.chance(0.40 - 0.12 * r) ? 1 : 0;
        meta.must_staple = must_staple ? 1 : 0;
        // Let's Encrypt supports OCSP only — no CRL (§5.4 footnote 18).
        meta.has_crl = (ca == kLetsEncrypt) ? 0 : (rng.chance(0.97) ? 1 : 0);
      }
      // Fig 12: adoption dates. 60% of HTTPS domains predate the window;
      // the rest ramp in across the 28 months.
      meta.https_month = rng.chance(0.60)
                             ? 0
                             : static_cast<std::uint8_t>(rng.uniform(28));
      if (meta.staples) {
        // Cloudflare's cruise-liner flip lands a mass of domains exactly in
        // June 2017 (month 13 of the window).
        meta.staple_month = rng.chance(0.12)
                                ? 13
                                : static_cast<std::uint8_t>(rng.uniform(28));
        if (meta.staple_month < meta.https_month) {
          meta.staple_month = meta.https_month;
        }
      }
    }
    domains_.push_back(meta);
  }
  // Per-responder Alexa domain counts (Fig 4 impact accounting).
  for (const auto& meta : domains_) {
    if (meta.ocsp && meta.responder != 0xffff) {
      ++responders_[meta.responder].alexa_domain_count;
    }
  }
}

void Ecosystem::build_scan_targets(Rng& rng) {
  const SimTime start = config_.campaign_start;
  // Certificates must keep >=30 days of validity through the campaign
  // (§5.1 step 1), so issue them well before with a long lifetime.
  for (std::size_t r = 0; r < responders_.size(); ++r) {
    const std::size_t count =
        1 + rng.uniform(config_.certs_per_responder);  // 1..N, mean ~N/2+1
    for (std::size_t k = 0; k < count; ++k) {
      ca::LeafRequest request;
      request.domain = "host" + std::to_string(k) + "." +
                       responders_[r].host.substr(5) /* strip "ocsp." */;
      request.not_before = start - Duration::days(60);
      request.lifetime = Duration::days(400);
      const bool https = responders_[r].host == https_pinned_host_;
      request.ocsp_urls = {(https ? "https://" : "http://") +
                           responders_[r].host + "/"};
      request.crl_urls = {crl_servers_[responders_[r].ca_index]->url()};
      ScanTarget target;
      target.cert = authorities_[responders_[r].ca_index]->issue(request, rng);
      target.responder_index = r;
      target.ca_index = responders_[r].ca_index;
      if (rng.chance(config_.revoked_fraction)) {
        target.revoked = true;
        authorities_[responders_[r].ca_index]->revoke(
            target.cert.serial(),
            start - Duration::days(1 + static_cast<std::int64_t>(rng.uniform(30))),
            crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});
      }
      scan_targets_.push_back(std::move(target));
    }
  }
}

Ecosystem::DeploymentStats Ecosystem::deployment_stats() const {
  DeploymentStats stats;
  for (const auto& meta : domains_) {
    if (!meta.https) continue;
    ++stats.total_certs;
    if (meta.ocsp) ++stats.ocsp_certs;
    if (meta.must_staple) {
      ++stats.must_staple_certs;
      if (meta.ca == lets_encrypt_index_) ++stats.must_staple_lets_encrypt;
    }
    ++stats.alexa_https;
    if (meta.ocsp) ++stats.alexa_ocsp;
    if (meta.must_staple) ++stats.alexa_must_staple;
  }
  return stats;
}

}  // namespace mustaple::measurement
