#include "measurement/scanner.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "ocsp/request.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace mustaple::measurement {

namespace {
constexpr std::int64_t kCachedThresholdSeconds = 120;  // §5.4's 2 minutes
constexpr std::size_t kStaticCacheLimit = 200'000;     // entries before reset
// Lock stripes per cache. 16 shards keeps contention negligible at any
// plausible MUSTAPLE_SCAN_THREADS while the per-shard maps stay big enough
// (12.5k entries) that clearing stays rare.
constexpr std::size_t kCacheShards = 16;

std::uint64_t body_cache_key(std::size_t responder, const util::Bytes& body) {
  return util::hash_combine(util::mix64(responder), util::fnv1a64(body));
}
}  // namespace

HourlyScanner::HourlyScanner(Ecosystem& ecosystem, ScanConfig config)
    : ecosystem_(&ecosystem),
      config_(config),
      static_cache_(kCacheShards, kStaticCacheLimit,
                    &util::alloc_counter("scan.validation_cache")),
      lint_cache_(kCacheShards, kStaticCacheLimit,
                  &util::alloc_counter("scan.lint_cache")),
      targets_tally_(util::alloc_counter("scan.targets")) {
  const auto& targets = ecosystem_->scan_targets();
  targets_.reserve(targets.size());
  for (const auto& t : targets) {
    Target target;
    // Certificates without an AIA OCSP URL cannot be scan targets; skipping
    // here (rather than dereferencing ocsp_urls.front() blindly) keeps a
    // CRL-only certificate in the population from crashing the campaign.
    if (!t.cert.extensions().supports_ocsp()) {
      MUSTAPLE_COUNT_L("mustaple_scan_targets_skipped_total", "component",
                       "hourly");
      continue;
    }
    const x509::Certificate& issuer =
        ecosystem_->authority(t.ca_index).intermediate_cert();
    target.cert_id = ocsp::CertId::for_certificate(t.cert, issuer);
    auto url = net::parse_url(t.cert.extensions().ocsp_urls.front());
    if (!url.ok()) continue;
    target.url = url.value();
    target.responder_index = t.responder_index;
    target.ca_index = t.ca_index;
    target.request_der = ocsp::OcspRequest::single(target.cert_id).encode_der();
    targets_.push_back(std::move(target));
  }
  stats_.resize(ecosystem_->responders().size() * net::kRegionCount);

  // Charge the retained scan-target state (struct storage + the pre-encoded
  // OCSPRequest DER each target carries) to "scan.targets" so campaign
  // artifacts can attribute resident bytes to it.
  std::size_t target_bytes = targets_.capacity() * sizeof(Target);
  for (const Target& t : targets_) target_bytes += t.request_der.capacity();
  targets_tally_.record(target_bytes);
}

HourlyScanner::ProbeOutcome HourlyScanner::execute_probe(
    const Target& target, net::Region region, std::uint64_t ordinal) {
  ProbeOutcome outcome;
  net::HttpRequest request;
  request.method = "POST";
  request.body = target.request_der;
  request.headers.set("content-type", "application/ocsp-request");
  outcome.result = ecosystem_->network().http_request_probe(
      region, target.url, std::move(request), ordinal);
  if (!outcome.result.success() || !config_.validate_responses) {
    return outcome;
  }

  const util::Bytes& body = outcome.result.response.body;
  const crypto::PublicKey& issuer_key =
      ecosystem_->authority(target.ca_index).intermediate_cert().public_key();
  const util::SimTime now = ecosystem_->network().now();

  // Static (clock-independent) validation is cached by body bytes. The
  // 64-bit key is only a bucket address: a hit must also match the stored
  // size + SHA-256, otherwise a hash collision would silently hand probe B
  // the verdict computed for probe A's different body.
  const std::uint64_t key = body_cache_key(target.responder_index, body);
  const util::Bytes digest = crypto::Sha256::hash(body);
  if (const auto cached = static_cache_.lookup(key)) {
    if (cached->body_size == body.size() && cached->body_sha256 == digest) {
      outcome.verdict = ocsp::apply_time_checks(cached->verdict, now);
      outcome.validated = true;
      if (config_.lint_responses) lint_probe(target, outcome);
      return outcome;
    }
    static_cache_.note_collision(key);
    MUSTAPLE_COUNT("mustaple_scan_cache_collisions_total");
  }
  // Miss (or collision): verify outside any lock — concurrent probes may
  // duplicate the work for the same body, but verification is pure, so the
  // last writer's entry is identical to every other's.
  const ocsp::VerifiedResponse static_verdict =
      ocsp::verify_ocsp_response_static(body, target.cert_id, issuer_key);
  static_cache_.insert(key,
                       StaticCacheEntry{body.size(), digest, static_verdict});
  outcome.verdict = ocsp::apply_time_checks(static_verdict, now);
  outcome.validated = true;
  if (config_.lint_responses) lint_probe(target, outcome);
  return outcome;
}

void HourlyScanner::lint_probe(const Target& target, ProbeOutcome& outcome) {
  const util::Bytes& body = outcome.result.response.body;
  const util::Bytes& serial = target.cert_id.serial;
  const std::uint64_t key = util::hash_combine(
      body_cache_key(target.responder_index, body), util::fnv1a64(serial));
  const util::Bytes digest = crypto::Sha256::hash(body);
  if (auto cached = lint_cache_.lookup(key)) {
    if (cached->body_size == body.size() && cached->body_sha256 == digest &&
        cached->serial == serial) {
      outcome.findings = std::move(cached->findings);
      outcome.linted = true;
      return;
    }
    lint_cache_.note_collision(key);
    MUSTAPLE_COUNT("mustaple_lint_cache_collisions_total");
  }
  // Lint runs clock-free (no Context::now), so findings for a given
  // (responder, body, serial) never change across scan steps — identical
  // discipline to the static-verdict cache above.
  lint::Context ctx;
  ctx.issuer = &ecosystem_->authority(target.ca_index).intermediate_cert();
  ctx.requested_serial = serial;
  lint::Artifact artifact = lint::Artifact::ocsp_response(
      ecosystem_->responders()[target.responder_index].host, body, ctx);
  outcome.findings = lint::lint_artifact(lint::RuleRegistry::builtin(), artifact);
  outcome.linted = true;
  lint_cache_.insert(
      key, LintCacheEntry{body.size(), digest, serial, outcome.findings});
}

void HourlyScanner::accumulate_probe(const Target& target, net::Region region,
                                     const ProbeOutcome& outcome,
                                     StepTotals& totals) {
  const std::size_t region_idx = static_cast<std::size_t>(region);
  ResponderRegionStats& stats =
      stats_[target.responder_index * net::kRegionCount + region_idx];

  const std::size_t cell =
      target.responder_index * net::kRegionCount + region_idx;
  ++stats.requests;
  ++totals.requests[region_idx];
  ++step_requests_[cell];
  MUSTAPLE_COUNT("mustaple_scan_probes_total");
  MUSTAPLE_COUNT_L("mustaple_scan_requests_total", "region",
                   net::to_string(region));
  // One probe = one trace unit: the step's trace id plus the probe's
  // campaign-wide ordinal. The ordinal is maintained unconditionally (not
  // inside the trace macro) because it also keys the counter-based latency
  // sample — obs-on and obs-off builds must draw identical jitter.
  const std::uint64_t probe_id = ++probe_counter_;
  MUSTAPLE_TRACE_SCOPE(trace_scope,
                       (obs::TraceContext{step_trace_id_, probe_id}));
#if !MUSTAPLE_OBS_ENABLED
  (void)probe_id;
#endif
  // Replay the fetch's observability effects (net counters, latency
  // histogram, trace span) here, in canonical probe order, so the metric
  // and trace streams are byte-identical to a single-threaded run.
  ecosystem_->network().record_fetch(region, target.url, outcome.result);

  const net::FetchResult& result = outcome.result;
  if (!result.success()) {
    switch (result.error) {
      case net::TransportError::kDnsFailure:
        ++stats.dns_failures;
        break;
      case net::TransportError::kTcpFailure:
        ++stats.tcp_failures;
        break;
      case net::TransportError::kTlsCertInvalid:
        ++stats.tls_failures;
        break;
      case net::TransportError::kNone:
        ++stats.http_errors;  // reached, but non-200
        break;
    }
    return;
  }

  ++stats.http_successes;
  ++totals.successes[region_idx];
  ++step_successes_[cell];
  ++totals.responses_200;
  MUSTAPLE_COUNT_L("mustaple_scan_successes_total", "region",
                   net::to_string(region));

  // Lint findings replay here, in canonical probe order, so the report (and
  // its obs counters) is byte-identical at every thread count.
  if (outcome.linted) lint_report_.add(outcome.findings);

  if (!outcome.validated) return;

  const util::SimTime now = ecosystem_->network().now();
  const ocsp::VerifiedResponse& verdict = outcome.verdict;

  switch (verdict.outcome) {
    case ocsp::CheckOutcome::kUnparseable:
      ++totals.unparseable;
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "unparseable");
      return;
    case ocsp::CheckOutcome::kNotSuccessful:
      // tryLater etc.: parsed but unusable; the paper folds these into the
      // malformed/unusable bucket only when unparseable, so just return.
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "not-successful");
      return;
    case ocsp::CheckOutcome::kSerialMismatch:
      ++totals.serial_mismatch;
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "serial-mismatch");
      return;
    case ocsp::CheckOutcome::kBadSignature:
      ++totals.bad_signature;
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "bad-signature");
      return;
    case ocsp::CheckOutcome::kNonceMismatch:
      return;  // scanner sends no nonce; unreachable, but classified
    case ocsp::CheckOutcome::kNotYetValid:
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "not-yet-valid");
      break;
    case ocsp::CheckOutcome::kExpired:
      MUSTAPLE_COUNT_L("mustaple_scan_validation_failures_total", "cause",
                       "expired");
      break;
    case ocsp::CheckOutcome::kOk:
      break;  // structurally fine: continue into quality accounting
  }
  if (verdict.outcome == ocsp::CheckOutcome::kOk) {
    ++stats.usable_responses;
    MUSTAPLE_COUNT("mustaple_scan_probes_usable_total");
  }
  if (verdict.outcome == ocsp::CheckOutcome::kNotYetValid) {
    ++stats.future_this_update;
  }
  if (verdict.outcome == ocsp::CheckOutcome::kExpired) {
    ++stats.expired_next_update;
  }

  // Quality accounting (Figs 6-9).
  stats.certs_per_response.add(static_cast<double>(verdict.num_certs));
  stats.serials_per_response.add(static_cast<double>(verdict.num_serials));
  ++stats.validity_samples;
  if (verdict.next_update) {
    stats.validity_seconds.add(static_cast<double>(
        (*verdict.next_update - verdict.this_update).seconds));
  } else {
    ++stats.blank_next_update;
  }
  stats.margin_seconds.add(
      static_cast<double>((now - verdict.this_update).seconds));

  // producedAt tracking (§5.4).
  const std::int64_t produced = verdict.produced_at.unix_seconds;
  if (now.unix_seconds - produced > kCachedThresholdSeconds) {
    ++stats.cached_observations;
  }
  if (stats.last_produced_at != INT64_MIN && produced != stats.last_produced_at) {
    if (produced < stats.last_produced_at) {
      ++stats.produced_regressions;
    } else {
      stats.produced_at_deltas.add(
          static_cast<double>(produced - stats.last_produced_at));
    }
  }
  stats.last_produced_at = produced;
  stats.last_observed_at = now.unix_seconds;
}

void HourlyScanner::run() {
  if (ran_) throw std::logic_error("HourlyScanner::run called twice");
  ran_ = true;

  const util::SimTime start = ecosystem_->config().campaign_start;
  const util::SimTime end = ecosystem_->config().campaign_end;
  net::EventLoop& loop = ecosystem_->network().loop();

  const std::size_t thread_count =
      config_.threads > 0 ? config_.threads : util::ThreadPool::env_threads(1);
  util::ThreadPool pool(thread_count);

  if (config_.interval.seconds > 0) {
    steps_planned_.store(
        config_.max_steps != 0
            ? config_.max_steps
            : static_cast<std::uint64_t>((end - start).seconds /
                                         config_.interval.seconds) +
                  1,
        std::memory_order_relaxed);
  }

  OBS_PROF_SCOPE("scan.campaign");
  MUSTAPLE_SPAN(span_campaign, "scan-campaign");
  MUSTAPLE_LOG_INFO("scan", "campaign starting",
                    obs::field("targets", targets_.size()),
                    obs::field("responders", responder_count()),
                    obs::field("interval_s", config_.interval.seconds),
                    obs::field("threads", pool.threads()),
                    obs::field("from", util::format_time(start)),
                    obs::field("to", util::format_time(end)));

  std::size_t step_count = 0;
  for (util::SimTime t = start; t < end; t = t + config_.interval) {
    if (config_.max_steps != 0 && step_count >= config_.max_steps) break;
    ++step_count;
#if MUSTAPLE_OBS_ENABLED
    step_trace_id_ = obs::next_trace_id();
#endif
    OBS_PROF_SCOPE("scan.step");
    MUSTAPLE_SPAN(span_step, "scan-step");
    loop.run_until(t);
    MUSTAPLE_TRACE_INSTANT("scan-step", "scan", t,
                           obs::TraceLog::kControlTrack,
                           {"step", std::to_string(step_count)});

    step_requests_.assign(stats_.size(), 0);
    step_successes_.assign(stats_.size(), 0);
    StepTotals totals;
    totals.when = t;

    // Phase 1 (parallel): execute every probe of the step into an outcome
    // slot addressed by canonical probe order p = region * targets +
    // target. Phase 2 (sequential): replay the accumulation over the slots
    // in canonical order. The same two phases run at every thread count, so
    // floating-point accumulation order — and with it every derived stat —
    // never depends on scheduling.
    const auto regions = net::all_regions();
    const std::uint64_t step_base = probe_counter_;
    std::vector<ProbeOutcome> outcomes(targets_.size() * net::kRegionCount);
    // Workers attach their probe scopes under the coordinator's open
    // "scan.fanout" phase via an explicit parent token, so the profile path
    // (...scan.step;scan.fanout;scan.execute_probe) is identical whether a
    // probe ran inline or on a pool worker — the profiler's merge is
    // thread-count-invariant.
    {
      OBS_PROF_SCOPE("scan.fanout");
      const auto prof_parent = OBS_PROF_CURRENT();
      pool.parallel_for_index(outcomes.size(), [&](std::size_t p) {
        OBS_PROF_TASK_SCOPE(prof_parent, "scan.execute_probe");
        const net::Region region = regions[p / targets_.size()];
        const Target& target = targets_[p % targets_.size()];
        outcomes[p] = execute_probe(target, region, step_base + p + 1);
      });
    }
    {
      OBS_PROF_SCOPE("scan.accumulate");
      for (std::size_t p = 0; p < outcomes.size(); ++p) {
        const net::Region region = regions[p / targets_.size()];
        const Target& target = targets_[p % targets_.size()];
        accumulate_probe(target, region, outcomes[p], totals);
#if MUSTAPLE_OBS_ENABLED
        // Flight-recorder breadcrumb: the last-N probe ids in CANONICAL
        // order (accumulation, not fan-out), so a postmortem names the
        // probes the campaign had actually absorbed when it died.
        obs::default_flight_recorder().note_probe(step_base + p + 1);
#endif
      }
    }
    probes_done_.fetch_add(outcomes.size(), std::memory_order_relaxed);

    // Fig 4: per region, total Alexa domains whose responder answered
    // nothing this step (all probes to it failed from that region).
    const auto& responders = ecosystem_->responders();
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      std::size_t unable = 0;
      for (std::size_t r = 0; r < responders.size(); ++r) {
        const std::size_t cell = r * net::kRegionCount + g;
        if (step_requests_[cell] > 0 && step_successes_[cell] == 0) {
          unable += responders[r].alexa_domain_count;
        }
      }
      totals.domains_unable[g] = unable;
    }
    steps_.push_back(totals);
    steps_done_.store(step_count, std::memory_order_relaxed);
    MUSTAPLE_LOG_DEBUG("scan", "step complete",
                       obs::field("step", step_count),
                       obs::field("responses_200", totals.responses_200));
  }

  MUSTAPLE_LOG_INFO("scan", "campaign complete",
                    obs::field("steps", step_count),
                    obs::field("probes",
                               step_count * targets_.size() *
                                   net::kRegionCount));
}

std::size_t HourlyScanner::responders_with_outage() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    bool outage = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      if (s.requests > s.http_successes && s.http_successes > 0) {
        outage = true;
        break;
      }
    }
    if (outage) ++count;
  }
  return count;
}

std::size_t HourlyScanner::responders_never_reachable() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    bool any_success = false;
    bool any_request = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      any_success |= s.http_successes > 0;
      any_request |= s.requests > 0;
    }
    if (any_request && !any_success) ++count;
  }
  return count;
}

HourlyScanner::FailureTaxonomy HourlyScanner::persistent_failure_taxonomy()
    const {
  FailureTaxonomy taxonomy;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    // Pick the dominant cause across all fully-dead regions of this
    // responder (a responder counts once, as in the paper's lists).
    std::size_t dns = 0;
    std::size_t tcp = 0;
    std::size_t http = 0;
    std::size_t tls = 0;
    bool any_dead_region = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      if (s.requests == 0 || s.http_successes > 0) continue;
      any_dead_region = true;
      dns += s.dns_failures;
      tcp += s.tcp_failures;
      http += s.http_errors;
      tls += s.tls_failures;
    }
    if (!any_dead_region) continue;
    const std::size_t top = std::max(std::max(dns, tcp), std::max(http, tls));
    if (top == 0) continue;
    if (top == dns) {
      ++taxonomy.dns;
    } else if (top == tcp) {
      ++taxonomy.tcp;
    } else if (top == http) {
      ++taxonomy.http;
    } else {
      ++taxonomy.tls;
    }
  }
  return taxonomy;
}

std::size_t HourlyScanner::responders_region_persistent_fail() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    bool some_region_dead = false;
    bool some_region_alive = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      if (s.requests == 0) continue;
      if (s.http_successes == 0) {
        some_region_dead = true;
      } else {
        some_region_alive = true;
      }
    }
    if (some_region_dead && some_region_alive) ++count;
  }
  return count;
}

util::Cdf HourlyScanner::cdf_certs(net::Region region) const {
  util::Cdf cdf;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    const auto& s = stats(r, region);
    if (s.certs_per_response.count() > 0) cdf.add(s.certs_per_response.mean());
  }
  return cdf;
}

util::Cdf HourlyScanner::cdf_serials(net::Region region) const {
  util::Cdf cdf;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    const auto& s = stats(r, region);
    if (s.serials_per_response.count() > 0) {
      cdf.add(s.serials_per_response.mean());
    }
  }
  return cdf;
}

util::Cdf HourlyScanner::cdf_validity(net::Region region) const {
  util::Cdf cdf;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    const auto& s = stats(r, region);
    if (s.validity_samples == 0) continue;
    // A responder that EVER sends blank nextUpdate does so consistently
    // (paper footnote 14) — classify by majority.
    if (s.blank_next_update * 2 > s.validity_samples) {
      cdf.add_infinite();
    } else if (s.validity_seconds.count() > 0) {
      cdf.add(s.validity_seconds.mean());
    }
  }
  return cdf;
}

util::Cdf HourlyScanner::cdf_margin(net::Region region) const {
  util::Cdf cdf;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    const auto& s = stats(r, region);
    if (s.margin_seconds.count() > 0) cdf.add(s.margin_seconds.mean());
  }
  return cdf;
}

std::size_t HourlyScanner::responders_pre_generated() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    std::size_t cached = 0;
    std::size_t observed = 0;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      cached += s.cached_observations;
      observed += s.http_successes;
    }
    if (observed > 0 && cached * 2 > observed) ++count;
  }
  return count;
}

std::size_t HourlyScanner::responders_non_overlapping() const {
  std::size_t count = 0;
  for (std::size_t r = 0; r < responder_count(); ++r) {
    bool pre_generated = false;
    double update_period = 0.0;
    double validity = -1.0;
    bool blank = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      const auto& s = stats_[r * net::kRegionCount + g];
      if (s.http_successes > 0 && s.cached_observations * 2 > s.http_successes) {
        pre_generated = true;
      }
      if (s.produced_at_deltas.count() > 0) {
        update_period = std::max(update_period, s.produced_at_deltas.mean());
      }
      if (s.validity_seconds.count() > 0) {
        validity = s.validity_seconds.mean();
      }
      if (s.blank_next_update > 0) blank = true;
    }
    if (pre_generated && !blank && validity > 0 && update_period > 0 &&
        validity <= update_period * 1.05) {
      ++count;
    }
  }
  return count;
}

double HourlyScanner::failure_rate(net::Region region) const {
  const std::size_t g = static_cast<std::size_t>(region);
  std::size_t requests = 0;
  std::size_t successes = 0;
  for (const auto& step : steps_) {
    requests += step.requests[g];
    successes += step.successes[g];
  }
  if (requests == 0) return 0.0;
  return 1.0 - static_cast<double>(successes) / static_cast<double>(requests);
}

}  // namespace mustaple::measurement
