#include "measurement/consistency.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/obs.hpp"
#include "ocsp/request.hpp"
#include "ocsp/verify.hpp"

namespace mustaple::measurement {

namespace {

using util::Duration;
using util::Rng;
using util::SimTime;

/// Table 1 calibration: per-CA revoked counts (≈1:10 of the paper's) and
/// how many of those the OCSP side mishandles, plus the answer it gives.
struct PinnedCa {
  const char* ca_name;
  const char* ocsp_host;
  std::size_t revoked;
  std::size_t mishandled;  ///< 0 = none; SIZE_MAX = all
  ca::RevocationPolicy::OcspIngest mode;
};

constexpr std::size_t kAll = static_cast<std::size_t>(-1);

const PinnedCa kPinned[] = {
    {"Camerfirma", "ocsp.camerfirma.com", 38, 1,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersGood},
    {"QuoVadis", "ocsp.quovadisglobal.com", 52, 1,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersGood},
    {"StartSSL", "ocsp.startssl.com", 99, 1,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersGood},
    {"Symantec", "ss.symcd.com", 2803, 1,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersGood},
    {"TWCA", "twcasslocsp.twca.com.tw", 13, 1,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersGood},
    {"GlobalSign", "ocsp2.globalsign.com", 537, kAll,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersUnknown},
    {"Firmaprofesional", "ocsp.firmaprofesional.com", 11, kAll,
     ca::RevocationPolicy::OcspIngest::kMissingAnswersUnknown},
};

}  // namespace

ConsistencyAudit::ConsistencyAudit(Ecosystem& ecosystem,
                                   ConsistencyConfig config)
    : ecosystem_(&ecosystem), config_(config) {}

void ConsistencyAudit::seed_population(Rng& rng) {
  const SimTime audit = config_.audit_time;

  // Resolve CA name -> index and CA -> a responder index.
  std::map<std::string, std::size_t> ca_by_name;
  for (std::size_t i = 0; i < ecosystem_->ca_shares().size(); ++i) {
    ca_by_name[ecosystem_->ca_shares()[i].name] = i;
  }
  std::map<std::string, std::size_t> responder_by_host;
  std::vector<std::size_t> responder_for_ca(ecosystem_->ca_shares().size(),
                                            static_cast<std::size_t>(-1));
  const auto& responders = ecosystem_->responders();
  for (std::size_t i = 0; i < responders.size(); ++i) {
    responder_by_host[responders[i].host] = i;
    if (responder_for_ca[responders[i].ca_index] ==
        static_cast<std::size_t>(-1)) {
      responder_for_ca[responders[i].ca_index] = i;
    }
  }

  auto revoke_one = [&](std::size_t ca_index, std::size_t responder_index,
                        const ca::RevocationPolicy& policy) {
    ca::CertificateAuthority& authority = ecosystem_->authority(ca_index);
    ca::LeafRequest request;
    request.domain =
        "revoked-" + std::to_string(targets_.size()) + ".audit.example";
    request.not_before = audit - Duration::days(300);
    request.lifetime = Duration::days(730);  // unexpired at audit time
    request.ocsp_urls = {"http://" + responders[responder_index].host + "/"};
    request.crl_urls = {
        ecosystem_->crl_server(ca_index).url()};
    AuditTarget target;
    target.cert = authority.issue(request, rng);
    target.ca_index = ca_index;
    target.responder_index = responder_index;

    const SimTime when =
        audit - Duration::days(1 + static_cast<std::int64_t>(rng.uniform(250)));
    std::optional<crl::ReasonCode> reason;
    ca::RevocationPolicy effective = policy;
    if (rng.chance(config_.reason_code_fraction)) {
      reason = crl::ReasonCode::kKeyCompromise;
      effective.ocsp_drops_reason = true;  // the 99.99% discrepancy shape
    } else {
      effective.ocsp_drops_reason = false;  // nothing to drop
    }
    authority.revoke(target.cert.serial(), when, reason, effective);
    targets_.push_back(std::move(target));
  };

  // Pinned Table-1 CAs. Counts are calibrated for the default population of
  // 7,000 and rescale with it, keeping at least enough certificates per CA
  // for the discrepancy to be visible at any scale.
  const double scale =
      static_cast<double>(config_.revoked_population) / 7000.0;
  for (const PinnedCa& pin : kPinned) {
    const auto ca_it = ca_by_name.find(pin.ca_name);
    const auto resp_it = responder_by_host.find(pin.ocsp_host);
    if (ca_it == ca_by_name.end() || resp_it == responder_by_host.end()) {
      continue;  // tiny worlds may omit these responders
    }
    const std::size_t floor_count =
        pin.mishandled == kAll ? 6 : pin.mishandled + 5;
    const std::size_t count = std::max<std::size_t>(
        floor_count,
        static_cast<std::size_t>(static_cast<double>(pin.revoked) * scale +
                                 0.5));
    for (std::size_t k = 0; k < count; ++k) {
      ca::RevocationPolicy policy;
      const bool mishandle = pin.mishandled == kAll || k < pin.mishandled;
      policy.ocsp_ingest = mishandle
                               ? pin.mode
                               : ca::RevocationPolicy::OcspIngest::kNormal;
      revoke_one(ca_it->second, resp_it->second, policy);
    }
  }

  // Microsoft: every revocation's OCSP time lags the CRL by 7h..9d
  // (the ocsp.msocsp.com finding). Small in absolute terms — Fig 10 finds
  // only 863 differing pairs (0.15%) in total.
  if (const auto ms = ca_by_name.find("Microsoft"); ms != ca_by_name.end()) {
    const std::size_t responder = responder_for_ca[ms->second];
    if (responder != static_cast<std::size_t>(-1)) {
      const int ms_count = std::max(4, static_cast<int>(4.0 * scale));
      for (int k = 0; k < ms_count; ++k) {
        ca::RevocationPolicy policy;
        policy.ocsp_time_offset = Duration::secs(
            7 * 3600 +
            static_cast<std::int64_t>(rng.uniform(9 * 86400 - 7 * 3600)));
        revoke_one(ms->second, responder, policy);
      }
    }
  }

  // Bulk population across all CAs, weighted by certificate share. The
  // pinned Table-1 CAs are excluded: in the paper the discrepancies are
  // properties of one specific CRL/responder pair per CA (e.g. GlobalSign's
  // gsalphasha2g2 answering Unknown for ALL its revoked certificates), so
  // bulk revocations must not dilute those rows.
  std::vector<double> weights;
  for (const auto& share : ecosystem_->ca_shares()) {
    bool pinned = false;
    for (const PinnedCa& pin : kPinned) {
      if (share.name == pin.ca_name) pinned = true;
    }
    weights.push_back(pinned ? 0.0 : share.certificate_share);
  }
  // Fig 10's rare skews, deterministic at any scale: the differing-pair
  // budget is time_skew_fraction of the population, 14.7% of it negative
  // (OCSP earlier, capped at -12h per the figure's axis note), the positive
  // side log-spread with one 4+-year outlier (paper: >137M seconds).
  const auto skew_budget = static_cast<std::size_t>(
      static_cast<double>(config_.revoked_population) *
          config_.time_skew_fraction +
      0.5);
  const std::size_t negative_budget =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(skew_budget) * 0.147 +
                                   0.5));
  std::size_t skews_left = std::max<std::size_t>(skew_budget, 3);
  std::size_t negatives_left = negative_budget;
  bool outlier_pending = true;

  while (targets_.size() < config_.revoked_population) {
    std::size_t ca_index = rng.weighted_index(weights);
    if (responder_for_ca[ca_index] == static_cast<std::size_t>(-1)) {
      ca_index = ecosystem_->lets_encrypt_index();
    }
    ca::RevocationPolicy policy;
    if (skews_left > 0) {
      --skews_left;
      if (negatives_left > 0) {
        --negatives_left;
        policy.ocsp_time_offset = Duration::secs(
            -static_cast<std::int64_t>(60 + rng.uniform(43200 - 60)));
      } else if (outlier_pending) {
        outlier_pending = false;
        policy.ocsp_time_offset = Duration::secs(137'000'000);  // 4.3 years
      } else {
        const double magnitude = std::exp(rng.uniform01() * 11.0) * 60.0;
        policy.ocsp_time_offset =
            Duration::secs(static_cast<std::int64_t>(magnitude));
      }
    }
    revoke_one(ca_index, responder_for_ca[ca_index], policy);
  }
}

ConsistencyReport ConsistencyAudit::run(Rng& rng) {
  seed_population(rng);

  ConsistencyReport report;
  report.lint = lint::LintReport(config_.lint_finding_capacity);
  const lint::RuleRegistry& registry = lint::RuleRegistry::builtin();
  net::Network& network = ecosystem_->network();
  const SimTime audit = config_.audit_time;
  network.loop().run_until(audit);
  const net::Region from = net::Region::kVirginia;

  // Download each CA's CRL once (1,568 CRLs in the paper).
  std::map<std::size_t, crl::Crl> crls;
  for (const AuditTarget& target : targets_) {
    if (crls.count(target.ca_index) > 0) continue;
    auto url = net::parse_url(
        target.cert.extensions().crl_urls.front());
    if (!url.ok()) continue;
    net::FetchResult result = network.http_get(from, url.value());
    if (!result.success()) continue;
    auto parsed = crl::Crl::parse(result.response.body);
    if (!parsed.ok()) continue;
    crls.emplace(target.ca_index, std::move(parsed).take());
    ++report.crls_downloaded;

    lint::Context crl_ctx;
    crl_ctx.issuer =
        &ecosystem_->authority(target.ca_index).intermediate_cert();
    crl_ctx.now = audit;
    const lint::Artifact crl_artifact = lint::Artifact::crl_list(
        ecosystem_->crl_server(target.ca_index).host(),
        result.response.body, crl_ctx);
    report.lint.add(lint::lint_artifact(registry, crl_artifact));
  }

  // Per-responder Table 1 accumulation.
  std::map<std::size_t, DiscrepancyRow> rows;

  for (const AuditTarget& target : targets_) {
    ++report.probed;
    const auto crl_it = crls.find(target.ca_index);
    if (crl_it == crls.end()) continue;
    const crl::RevokedEntry* crl_entry =
        crl_it->second.find(target.cert.serial());
    if (crl_entry == nullptr) continue;  // not in CRL: out of audit scope

    // OCSP lookup over the network. A CRL-only certificate has no
    // responder to audit against.
    if (!target.cert.extensions().supports_ocsp()) {
      MUSTAPLE_COUNT_L("mustaple_scan_targets_skipped_total", "component",
                       "consistency");
      continue;
    }
    const x509::Certificate& issuer =
        ecosystem_->authority(target.ca_index).intermediate_cert();
    const auto id = ocsp::CertId::for_certificate(target.cert, issuer);
    auto url = net::parse_url(target.cert.extensions().ocsp_urls.front());
    if (!url.ok()) continue;
    net::FetchResult result =
        network.http_post(from, url.value(),
                          ocsp::OcspRequest::single(id).encode_der(),
                          "application/ocsp-request");
    if (!result.success()) continue;
    const ocsp::VerifiedResponse verdict = ocsp::verify_ocsp_response(
        result.response.body, id, issuer.public_key(), network.now());
    if (verdict.outcome != ocsp::CheckOutcome::kOk &&
        verdict.outcome != ocsp::CheckOutcome::kNotYetValid &&
        verdict.outcome != ocsp::CheckOutcome::kExpired) {
      continue;
    }
    ++report.responses_collected;

    // Lint the collected response paired with its CA's CRL: the x-check
    // rules re-derive Table 1 / Fig 10 from first principles. Gated behind
    // the same verdict filter as the report rows, so the two stay equal.
    {
      lint::Context pair_ctx;
      pair_ctx.issuer = &issuer;
      pair_ctx.requested_serial = target.cert.serial();
      pair_ctx.now = network.now();
      const lint::Artifact pair_artifact = lint::Artifact::crl_ocsp_pair(
          ecosystem_->responders()[target.responder_index].host,
          result.response.body, crl_it->second, pair_ctx);
      report.lint.add(lint::lint_artifact(registry, pair_artifact));
    }

    DiscrepancyRow& row = rows[target.responder_index];
    if (row.ocsp_url.empty()) {
      row.ocsp_url =
          ecosystem_->responders()[target.responder_index].host;
      row.crl_url = ecosystem_->crl_server(target.ca_index).host();
    }
    switch (verdict.status) {
      case ocsp::CertStatus::kGood:
        ++row.answered_good;
        break;
      case ocsp::CertStatus::kUnknown:
        ++row.answered_unknown;
        break;
      case ocsp::CertStatus::kRevoked:
        ++row.answered_revoked;
        break;
    }

    // Time + reason comparison (only meaningful when OCSP says revoked).
    if (verdict.status == ocsp::CertStatus::kRevoked && verdict.revoked) {
      ++report.time_compared;
      const std::int64_t delta =
          (verdict.revoked->revocation_time - crl_entry->revocation_time)
              .seconds;
      if (delta != 0) {
        ++report.time_differing;
        if (delta < 0) ++report.time_negative;
        report.time_delta_seconds.add(static_cast<double>(
            delta < 0 ? -delta : delta));
        if (delta > 0) {
          report.max_positive_delta_seconds =
              std::max(report.max_positive_delta_seconds,
                       static_cast<double>(delta));
        }
      }
      ++report.reason_compared;
      const bool crl_has = crl_entry->reason.has_value();
      const bool ocsp_has = verdict.revoked->reason.has_value();
      if (crl_has != ocsp_has ||
          (crl_has && *crl_entry->reason != *verdict.revoked->reason)) {
        ++report.reason_differing;
        if (crl_has && !ocsp_has) ++report.reason_crl_only;
      }
    }
  }

  for (auto& [responder, row] : rows) {
    if (row.has_discrepancy()) report.table1.push_back(row);
  }
  return report;
}

}  // namespace mustaple::measurement
