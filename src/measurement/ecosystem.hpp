// The synthetic certificate ecosystem: a scaled-down stand-in for the
// paper's Censys snapshot (489.6M certs / 112.8M valid) and Alexa Top-1M
// list, re-measured by the scanner exactly as the paper measures the real
// thing. All proportions are calibrated to the paper's §4/§5 findings:
//
//   * 95.4% of valid certificates carry an OCSP responder URL;
//   * 0.02% carry OCSP Must-Staple, 97.3% of those from Let's Encrypt
//     (the remainder Comodo / DFN / UserTrust);
//   * HTTPS adoption ~75% for popular domains, OCSP ~91.3% of those,
//     both declining gently with rank (Fig 2);
//   * ~35% of OCSP-enabled domains staple, declining with rank (Fig 11);
//   * 536 OCSP responders with the behaviour mix of §5.3/§5.4;
//   * the §5.2 fault schedule (Comodo, Digicert, Certum, wosign/startssl,
//     digitalcertvalidation, wayport, IdenTrust analogues).
//
// Everything derives from one seed. Scale knobs shrink populations without
// changing proportions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ca/authority.hpp"
#include "ca/crl_server.hpp"
#include "ca/responder.hpp"
#include "net/network.hpp"
#include "util/alloc.hpp"
#include "util/rng.hpp"
#include "x509/verify.hpp"

namespace mustaple::measurement {

struct EcosystemConfig {
  std::uint64_t seed = 42;

  /// Simulated campaign window (the paper: Apr 25 – Sep 4, 2018).
  util::SimTime campaign_start = util::make_time(2018, 4, 25);
  util::SimTime campaign_end = util::make_time(2018, 9, 4);

  /// Number of OCSP responders (paper: 536).
  std::size_t responder_count = 536;
  /// Alexa list size (paper: 1M). Scaled default: 100k.
  std::size_t alexa_domains = 100'000;
  /// Certificates sampled per responder for the Hourly dataset
  /// (paper: <=50; scaled default keeps the per-responder spread).
  std::size_t certs_per_responder = 4;
  /// Fraction of certificates revoked (drives the §5.4 consistency audit).
  double revoked_fraction = 0.01;

  /// Use real RSA keys for CAs (slow; tests only use a tiny world).
  bool use_rsa = false;

  /// Ablation switches (§8 recommendation 1 — "what if CAs fixed their
  /// responders?"): disable the scripted+random fault schedule and/or the
  /// response-quality pathologies. Both default to the paper's 2018 world.
  bool apply_fault_schedule = true;
  bool apply_pathologies = true;

  /// Behaviour-mix calibration (fractions of responders), from §5.3/§5.4.
  double frac_persistent_malformed = 0.016;  // 8 of 536
  double frac_blank_next_update = 0.091;     // 45 responders
  double frac_huge_validity = 0.02;          // 11 responders, > 1 month
  double frac_zero_margin = 0.172;           // 85 responders
  double frac_future_this_update = 0.03;     // 15 responders
  double frac_twenty_serials = 0.033;        // 17 responders
  double frac_multi_serial = 0.048;          // 4.8% > 1 serial
  double frac_multi_cert = 0.145;            // 14.5% > 1 certificate
  /// Base rate of pre-generated responders. Set above the paper's measured
  /// 51.7% because the zero-margin (17.2%) and future-thisUpdate (3%)
  /// calibration passes force their responders to on-demand generation;
  /// 0.65 * (1 - 0.202) lands the EFFECTIVE rate at the paper's value.
  double frac_pre_generate = 0.65;
  double frac_transient_outage = 0.368;      // 36.8% had >= 1 outage
};

/// Per-CA market-share entry (issuance weight) used during generation.
struct CaShare {
  std::string name;
  double certificate_share;  ///< weight among all issued certificates
  double must_staple_share;  ///< weight among Must-Staple certificates
};

/// One responder with its serving CA and URL.
struct ResponderInfo {
  std::string host;
  std::size_t ca_index = 0;
  std::size_t alexa_domain_count = 0;  ///< domains whose cert uses this responder
  ca::ResponderBehavior behavior;
};

/// Compact per-domain metadata row for the Alexa population. Adoption
/// *dates* (months since May 2016) let Fig 12 take monthly snapshots.
struct DomainMeta {
  std::uint32_t rank = 0;           ///< 1-based Alexa rank
  std::uint16_t responder = 0xffff; ///< index into responders(), 0xffff = none
  std::uint16_t ca = 0;
  std::uint8_t https : 1, ocsp : 1, staples : 1, must_staple : 1, has_crl : 1;
  std::uint8_t https_month = 0xff;   ///< months after 2016-05 HTTPS went live
  std::uint8_t staple_month = 0xff;  ///< months after 2016-05 stapling enabled
};

/// A certificate enrolled in the Hourly dataset: the object plus its scan
/// bookkeeping.
struct ScanTarget {
  x509::Certificate cert;
  std::size_t responder_index = 0;
  std::size_t ca_index = 0;
  bool revoked = false;
};

/// The generated world. Owns the CAs, responders, network services, fault
/// plan, domain metadata, and scan targets.
class Ecosystem {
 public:
  Ecosystem(const EcosystemConfig& config, net::EventLoop& loop);

  const EcosystemConfig& config() const { return config_; }
  net::Network& network() { return *network_; }

  const std::vector<CaShare>& ca_shares() const { return ca_shares_; }
  ca::CertificateAuthority& authority(std::size_t index) {
    return *authorities_[index];
  }
  std::size_t authority_count() const { return authorities_.size(); }

  const std::vector<ResponderInfo>& responders() const { return responders_; }
  ca::OcspResponder& responder(std::size_t index) {
    return *responder_services_[index];
  }
  ca::CrlServer& crl_server(std::size_t ca_index) {
    return *crl_servers_[ca_index];
  }

  const std::vector<DomainMeta>& domains() const { return domains_; }
  const std::vector<ScanTarget>& scan_targets() const { return scan_targets_; }

  /// Root store trusting every simulated CA (the Censys "valid" filter).
  const x509::RootStore& roots() const { return roots_; }

  /// Headline §4 statistics measured off the generated population.
  struct DeploymentStats {
    std::size_t total_certs = 0;
    std::size_t ocsp_certs = 0;
    std::size_t must_staple_certs = 0;
    std::size_t must_staple_lets_encrypt = 0;
    std::size_t alexa_https = 0;
    std::size_t alexa_ocsp = 0;
    std::size_t alexa_must_staple = 0;
  };
  DeploymentStats deployment_stats() const;

  /// Index of the CA named "Let's Encrypt".
  std::size_t lets_encrypt_index() const { return lets_encrypt_index_; }

 private:
  void build_cas(util::Rng& rng);
  void build_responders(util::Rng& rng);
  void build_fault_schedule(util::Rng& rng);
  void build_domains(util::Rng& rng);
  void build_scan_targets(util::Rng& rng);

  EcosystemConfig config_;
  std::unique_ptr<net::Network> network_;
  std::vector<CaShare> ca_shares_;
  std::vector<std::unique_ptr<ca::CertificateAuthority>> authorities_;
  std::vector<std::unique_ptr<ca::OcspResponder>> responder_services_;
  std::vector<std::unique_ptr<ca::CrlServer>> crl_servers_;
  std::vector<ResponderInfo> responders_;
  std::vector<double> domain_weights_;  ///< per-responder Alexa assignment weight
  std::vector<DomainMeta> domains_;
  std::vector<ScanTarget> scan_targets_;
  x509::RootStore roots_;
  std::size_t lets_encrypt_index_ = 0;
  /// The responder whose HTTPS endpoint serves an invalid certificate
  /// (§5.2's single TLS-failure case); its AIA URLs use https://.
  std::string https_pinned_host_;
  /// Bytes retained by the generated population (scan-target certificates,
  /// domain metadata, responder info), charged to "ecosystem.population"
  /// after the build phases and released wholesale on destruction.
  util::AllocTally population_tally_;
};

}  // namespace mustaple::measurement
