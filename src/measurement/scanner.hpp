// The measurement client of paper §5.1: OCSP lookups for every scan target
// against its responder, on a fixed cadence, from all six vantage points,
// with on-the-fly aggregation into exactly the statistics behind Figures
// 3-9 and the §5.4 producedAt analysis.
//
// Scale note: the paper probes 14,634 certificates hourly for 4.3 months
// (~280M probes). The scanner keeps the mechanism and the proportions but
// the default cadence/population are scaled down (see EXPERIMENTS.md); both
// are knobs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "lint/lint.hpp"
#include "measurement/ecosystem.hpp"
#include "ocsp/verify.hpp"
#include "util/alloc.hpp"
#include "util/sharded_cache.hpp"
#include "util/stats.hpp"

namespace mustaple::measurement {

struct ScanConfig {
  /// Probe cadence (paper: 1 hour).
  util::Duration interval = util::Duration::hours(12);
  /// Optional cap on scan steps (0 = run the whole campaign window).
  std::size_t max_steps = 0;
  /// When false, only transport/HTTP availability is recorded (Figs 3/4)
  /// and the client-side response validation is skipped — roughly 3x
  /// faster for availability-only campaigns.
  bool validate_responses = true;
  /// When true (and validate_responses is on), every HTTP-200 body is also
  /// run through the lint::RuleRegistry::builtin() catalog; findings
  /// aggregate into lint_report(). Clock-free rules only, so the per-body
  /// cache stays valid across scan steps.
  bool lint_responses = true;
  /// Worker threads for the per-step probe fan-out. 0 = auto: the
  /// MUSTAPLE_SCAN_THREADS environment variable when set, else 1. Every
  /// output of the scan — step totals, per-responder stats, derived
  /// figures, metrics, timeline, trace — is bit-identical for every value
  /// of this knob (see DESIGN.md "Deterministic parallel scan campaigns").
  std::size_t threads = 0;
};

/// Per-(responder, region) accumulators.
struct ResponderRegionStats {
  std::size_t requests = 0;
  std::size_t http_successes = 0;  ///< HTTP 200 (the paper's "successful")
  std::size_t usable_responses = 0;

  // §5.2 failure-cause taxonomy.
  std::size_t dns_failures = 0;
  std::size_t tcp_failures = 0;
  std::size_t http_errors = 0;  ///< non-200 status codes
  std::size_t tls_failures = 0;

  util::OnlineStats certs_per_response;
  util::OnlineStats serials_per_response;
  util::OnlineStats validity_seconds;  ///< finite validity samples
  std::size_t blank_next_update = 0;   ///< samples with no nextUpdate
  std::size_t validity_samples = 0;
  util::OnlineStats margin_seconds;  ///< T_received - thisUpdate
  std::size_t future_this_update = 0;
  std::size_t expired_next_update = 0;

  // producedAt tracking for the §5.4 on-demand/pre-generated analysis.
  std::int64_t last_produced_at = INT64_MIN;
  std::int64_t last_observed_at = INT64_MIN;
  util::OnlineStats produced_at_deltas;  ///< between consecutive DISTINCT values
  std::size_t produced_regressions = 0;  ///< producedAt went backwards
  std::size_t cached_observations = 0;   ///< received - producedAt > 2 min
};

/// One scan step's cross-region failure/validity tallies.
struct StepTotals {
  util::SimTime when{};
  std::array<std::size_t, net::kRegionCount> requests{};
  std::array<std::size_t, net::kRegionCount> successes{};
  std::array<std::size_t, net::kRegionCount> domains_unable{};
  // Fig 5 numerators (over HTTP-200 responses, all regions pooled).
  std::size_t responses_200 = 0;
  std::size_t unparseable = 0;
  std::size_t serial_mismatch = 0;
  std::size_t bad_signature = 0;
};

class HourlyScanner {
 public:
  HourlyScanner(Ecosystem& ecosystem, ScanConfig config);

  /// Runs the full campaign. Idempotent guard: second call throws.
  void run();

  const std::vector<StepTotals>& steps() const { return steps_; }
  const ResponderRegionStats& stats(std::size_t responder,
                                    net::Region region) const {
    return stats_[responder * net::kRegionCount +
                  static_cast<std::size_t>(region)];
  }
  std::size_t responder_count() const { return ecosystem_->responders().size(); }

  // ---- derived results (valid after run()) ----

  /// Responders with >=1 outage from >=1 vantage point: at least one failed
  /// request AND at least one success (so persistent dead hosts don't count
  /// as "outage" — they are the never-reachable class).
  std::size_t responders_with_outage() const;
  /// Responders never reachable from ANY vantage point.
  std::size_t responders_never_reachable() const;
  /// Responders unreachable from at least one region for the whole campaign
  /// (while reachable from others).
  std::size_t responders_region_persistent_fail() const;

  /// §5.2's persistent-failure census: responders for which at least one
  /// region NEVER succeeded, counted by the dominant failure cause there.
  /// Paper: 16 DNS (NXDOMAIN), 4 TCP, 8 HTTP 4xx/5xx, 1 invalid HTTPS cert.
  struct FailureTaxonomy {
    std::size_t dns = 0;
    std::size_t tcp = 0;
    std::size_t http = 0;
    std::size_t tls = 0;
  };
  FailureTaxonomy persistent_failure_taxonomy() const;

  /// Fig 6/7/8/9 CDFs: per-responder averages from one region's stats.
  util::Cdf cdf_certs(net::Region region) const;
  util::Cdf cdf_serials(net::Region region) const;
  /// Validity-period CDF; blank nextUpdate becomes +infinity mass.
  util::Cdf cdf_validity(net::Region region) const;
  util::Cdf cdf_margin(net::Region region) const;

  /// §5.4 producedAt analysis: responders detected as serving cached
  /// (pre-generated) responses; and among those, responders whose estimated
  /// update period >= their validity period ("non-overlapping" hazard).
  std::size_t responders_pre_generated() const;
  std::size_t responders_non_overlapping() const;

  /// Overall request failure rate per region (Fig 3 headline: 1.7% average,
  /// ranging ~2.2% Virginia to ~5.7% Sao Paulo).
  double failure_rate(net::Region region) const;

  /// Aggregated lint findings over every HTTP-200 body of the campaign
  /// (empty when lint_responses or validate_responses is off). Per-probe
  /// lint mirrors the validator's classification, so
  /// count("e_ocsp_unparseable") == sum of StepTotals::unparseable, and
  /// likewise for serial-mismatch and bad-signature (asserted in tests).
  const lint::LintReport& lint_report() const { return lint_report_; }

  // ---- cache introspection (tests, perf_suite) ----
  //
  // Conservation (hits + misses == lookups) holds per shard and in
  // aggregate at every thread count; the hit/miss SPLIT is the one
  // scheduling-dependent number in a campaign (two workers can both miss
  // the same key before either inserts) and feeds no campaign output.
  std::size_t validation_cache_shards() const {
    return static_cache_.shard_count();
  }
  util::ShardedCacheStats validation_cache_shard_stats(std::size_t s) const {
    return static_cache_.shard_stats(s);
  }
  util::ShardedCacheStats validation_cache_stats() const {
    return static_cache_.totals();
  }
  std::size_t lint_cache_shards() const { return lint_cache_.shard_count(); }
  util::ShardedCacheStats lint_cache_shard_stats(std::size_t s) const {
    return lint_cache_.shard_stats(s);
  }
  util::ShardedCacheStats lint_cache_stats() const {
    return lint_cache_.totals();
  }

  // ---- live progress (introspection server's /statusz) ----
  //
  // Written only by the coordinating thread at step barriers / accumulation,
  // but READ concurrently by the serving thread mid-campaign, so they are
  // relaxed atomics rather than the plain members the campaign outputs use.
  struct Progress {
    std::uint64_t steps_done = 0;
    std::uint64_t steps_planned = 0;  ///< 0 until run() starts
    std::uint64_t probes_done = 0;
    std::uint64_t targets = 0;
  };
  Progress progress() const {
    Progress p;
    p.steps_done = steps_done_.load(std::memory_order_relaxed);
    p.steps_planned = steps_planned_.load(std::memory_order_relaxed);
    p.probes_done = probes_done_.load(std::memory_order_relaxed);
    p.targets = targets_.size();
    return p;
  }

 private:
  struct Target {
    ocsp::CertId cert_id;
    net::Url url;
    std::size_t responder_index = 0;
    std::size_t ca_index = 0;
    util::Bytes request_der;  ///< pre-encoded OCSPRequest
  };

  /// What one probe's pure (order-independent) work produced: the fetch
  /// result plus, when validation is on, the time-checked verdict.
  struct ProbeOutcome {
    net::FetchResult result;
    ocsp::VerifiedResponse verdict{};
    bool validated = false;
    std::vector<lint::Finding> findings;
    bool linted = false;
  };

  // The fan-out is two-phase so output is independent of thread count:
  // execute_probe does the order-free work (fetch + validation) on any
  // worker, writing into an outcome slot indexed by canonical probe order;
  // accumulate_probe then replays every order-SENSITIVE effect (stat
  // accumulators with float sums, metrics, trace events) on the
  // coordinating thread, walking the slots in canonical order. One thread
  // and N threads run the exact same two phases.
  ProbeOutcome execute_probe(const Target& target, net::Region region,
                             std::uint64_t ordinal);
  /// Order-free lint of a successful probe's body (cached per body+serial);
  /// runs in the parallel phase, findings accumulate in accumulate_probe.
  void lint_probe(const Target& target, ProbeOutcome& outcome);
  void accumulate_probe(const Target& target, net::Region region,
                        const ProbeOutcome& outcome, StepTotals& totals);

  Ecosystem* ecosystem_;
  ScanConfig config_;
  std::vector<Target> targets_;
  std::vector<ResponderRegionStats> stats_;
  std::vector<StepTotals> steps_;
  // Step-local (responder x region) tallies for the Fig 4 impact series.
  std::vector<std::size_t> step_requests_;
  std::vector<std::size_t> step_successes_;
  // Cache of the time-invariant validation, keyed by (responder, body
  // hash): pre-generated responders re-serve identical DER for a whole
  // update cycle, so most probes hit. Lock-striped (util::ShardedCache) so
  // parallel workers only contend when their keys land on the same shard;
  // bounded by per-shard clearing. The 64-bit key alone is not proof of
  // identity — each entry also stores the body's size and SHA-256, verified
  // on every hit; a mismatch counts as
  // mustaple_scan_cache_collisions_total and re-verifies honestly.
  struct StaticCacheEntry {
    std::size_t body_size = 0;
    util::Bytes body_sha256;
    ocsp::VerifiedResponse verdict{};
  };
  util::ShardedCache<StaticCacheEntry> static_cache_;
  // Lint findings are clock-free, so they cache under the same discipline.
  // The key folds in the requested serial (the serial-mismatch rule depends
  // on it); hits verify body size + SHA-256 + serial before reuse.
  struct LintCacheEntry {
    std::size_t body_size = 0;
    util::Bytes body_sha256;
    util::Bytes serial;
    std::vector<lint::Finding> findings;
  };
  util::ShardedCache<LintCacheEntry> lint_cache_;
  lint::LintReport lint_report_;
  // Trace identity: each scan step gets a trace id, each probe a
  // campaign-wide ordinal. The ordinal also keys the counter-based latency
  // sample, so it is maintained even when obs is compiled out.
  std::uint64_t step_trace_id_ = 0;
  std::uint64_t probe_counter_ = 0;
  bool ran_ = false;
  std::atomic<std::uint64_t> steps_done_{0};
  std::atomic<std::uint64_t> steps_planned_{0};
  std::atomic<std::uint64_t> probes_done_{0};
  /// Bytes charged for targets_ (pre-encoded requests) under the
  /// "scan.targets" counter; released on destruction.
  util::AllocTally targets_tally_;
};

}  // namespace mustaple::measurement
