#include "measurement/censys.hpp"

namespace mustaple::measurement {

void CensysPipeline::ingest(const x509::Certificate& leaf,
                            const std::vector<x509::Certificate>& intermediates,
                            bool from_scan) {
  ++observations_;
  const std::string fingerprint = util::to_hex(leaf.fingerprint());
  auto [it, inserted] = by_fingerprint_.try_emplace(fingerprint);
  if (inserted) {
    it->second.leaf = leaf;
    it->second.intermediates = intermediates;
  }
  if (from_scan) {
    it->second.seen_in_scan = true;
  } else {
    it->second.seen_in_ct = true;
  }
}

void CensysPipeline::ingest_scan(const std::vector<x509::Certificate>& chain) {
  if (chain.empty()) return;
  ingest(chain.front(),
         std::vector<x509::Certificate>(chain.begin() + 1, chain.end()),
         /*from_scan=*/true);
}

void CensysPipeline::ingest_log(
    const ct::CtLog& log, util::SimTime now,
    const std::vector<x509::Certificate>& intermediates) {
  const ct::SignedTreeHead sth = log.tree_head(now);
  if (!ct::CtLog::verify_tree_head(sth, log.public_key())) {
    dropped_ct_entries_ += log.size();
    return;
  }
  for (std::uint64_t i = 0; i < sth.tree_size; ++i) {
    auto cert = log.entry(i);
    if (!cert.ok() ||
        !log.verify_entry_inclusion(cert.value(), i, sth)) {
      ++dropped_ct_entries_;
      continue;
    }
    ingest(cert.value(), intermediates, /*from_scan=*/false);
  }
}

CensysPipeline::Snapshot CensysPipeline::snapshot(util::SimTime now) const {
  Snapshot snap;
  snap.observations = observations_;
  snap.dropped_ct_entries = dropped_ct_entries_;
  snap.unique_certificates = by_fingerprint_.size();

  for (const auto& [fingerprint, record] : by_fingerprint_) {
    if (record.seen_in_scan && record.seen_in_ct) {
      ++snap.from_both;
    } else if (record.seen_in_scan) {
      ++snap.from_scan_only;
    } else {
      ++snap.from_ct_only;
    }

    std::vector<x509::Certificate> chain;
    chain.push_back(record.leaf);
    for (const auto& intermediate : record.intermediates) {
      chain.push_back(intermediate);
    }
    // Valid = accepted by at least ONE of the three stores (footnote 7).
    const bool trusted_somewhere =
        x509::verify_chain(chain, stores_.apple, now).ok() ||
        x509::verify_chain(chain, stores_.microsoft, now).ok() ||
        x509::verify_chain(chain, stores_.nss, now).ok();
    if (trusted_somewhere) {
      ++snap.valid;
      if (record.leaf.extensions().supports_ocsp()) ++snap.valid_with_ocsp;
      if (record.leaf.extensions().must_staple) {
        ++snap.valid_with_must_staple;
      }
    } else if (record.leaf.is_expired_at(now)) {
      ++snap.expired;
    } else {
      ++snap.untrusted;
    }
  }
  return snap;
}

}  // namespace mustaple::measurement
