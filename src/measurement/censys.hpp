// The Censys-style snapshot pipeline of paper §4: aggregate certificates
// from (a) IPv4-scan-style TLS collection and (b) Certificate Transparency
// logs, de-duplicate, and classify validity against the Apple, Microsoft,
// and Mozilla NSS root stores — a certificate counts as VALID if at least
// one of the three trusts it (footnote 7) and it is unexpired.
#pragma once

#include <map>
#include <string>

#include "ct/log.hpp"
#include "util/sim_time.hpp"
#include "x509/verify.hpp"

namespace mustaple::measurement {

/// The three root stores Censys validates against (footnote 7). Real
/// stores overlap heavily but none contains all roots; the same holds for
/// the simulated ones.
struct RootStoreTriple {
  x509::RootStore apple;
  x509::RootStore microsoft;
  x509::RootStore nss;
};

class CensysPipeline {
 public:
  explicit CensysPipeline(RootStoreTriple stores)
      : stores_(std::move(stores)) {}

  /// Ingests a certificate chain seen on an IPv4-scan connection.
  void ingest_scan(const std::vector<x509::Certificate>& chain);

  /// Ingests every entry of a CT log, verifying the published tree head and
  /// each entry's inclusion before accepting it (a paranoid but correct
  /// consumer). Unverifiable entries are dropped and counted.
  void ingest_log(const ct::CtLog& log, util::SimTime now,
                  const std::vector<x509::Certificate>& intermediates);

  struct Snapshot {
    std::size_t observations = 0;       ///< pre-dedup ingestion count
    std::size_t unique_certificates = 0;
    std::size_t from_scan_only = 0;
    std::size_t from_ct_only = 0;
    std::size_t from_both = 0;
    std::size_t dropped_ct_entries = 0;  ///< failed inclusion/STH checks

    std::size_t valid = 0;  ///< trusted by >=1 store and unexpired at `now`
    std::size_t expired = 0;
    std::size_t untrusted = 0;
    std::size_t valid_with_ocsp = 0;
    std::size_t valid_with_must_staple = 0;
  };

  /// Classifies the corpus as of `now`.
  Snapshot snapshot(util::SimTime now) const;

 private:
  struct Record {
    x509::Certificate leaf;
    std::vector<x509::Certificate> intermediates;
    bool seen_in_scan = false;
    bool seen_in_ct = false;
  };

  void ingest(const x509::Certificate& leaf,
              const std::vector<x509::Certificate>& intermediates,
              bool from_scan);

  RootStoreTriple stores_;
  std::map<std::string, Record> by_fingerprint_;
  std::size_t observations_ = 0;
  std::size_t dropped_ct_entries_ = 0;
};

}  // namespace mustaple::measurement
