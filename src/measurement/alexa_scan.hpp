// The §5.1 "Alexa Top-1M Scan" dataset: a ONE-SHOT OCSP lookup for every
// Alexa domain's certificate from all six vantage points (the paper ran it
// on May 1st, 2018 against 606,367 certificates / 128 responders). Where
// the Hourly dataset tracks responders over time, this one maps REACHABILITY
// onto the domain population at an instant — the per-domain numbers behind
// the wellsfargo.com story.
#pragma once

#include <array>
#include <vector>

#include "lint/lint.hpp"
#include "measurement/ecosystem.hpp"

namespace mustaple::measurement {

struct AlexaScanConfig {
  /// When the snapshot is taken (paper: May 1st, 2018).
  util::SimTime scan_time = util::make_time(2018, 5, 1);
  /// Probe every Nth OCSP domain (1 = all). Domains sharing a responder
  /// are deduplicated per region regardless; sampling only thins the
  /// per-domain attribution.
  std::size_t domain_stride = 1;
  /// Run the lint catalog over every fetched body (one region's fetch per
  /// responder — the bodies are region-independent).
  bool lint_responses = true;
};

struct AlexaScanResult {
  std::size_t domains_probed = 0;
  std::size_t responders_touched = 0;
  /// Per region: domains whose responder could not be reached (transport
  /// failure or non-200).
  std::array<std::size_t, net::kRegionCount> domains_unreachable{};
  /// Per region: domains whose responder answered but the response was
  /// unusable (malformed / wrong serial / bad signature / not yet valid).
  std::array<std::size_t, net::kRegionCount> domains_unusable{};
  /// Domains unreachable from EVERY region (the fully-dark set).
  std::size_t domains_dark_everywhere = 0;
  /// Lint findings over one region's fetched body per responder (artifact
  /// id = responder host). Empty when lint_responses is off.
  lint::LintReport lint;
};

/// Runs the one-shot scan. Each distinct (responder, region) pair is probed
/// once with a representative certificate; domain counts are attributed via
/// the population's responder assignment, mirroring the paper's grouping.
AlexaScanResult run_alexa_scan(Ecosystem& ecosystem,
                               const AlexaScanConfig& config);

}  // namespace mustaple::measurement
