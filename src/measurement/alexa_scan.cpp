#include "measurement/alexa_scan.hpp"

#include "obs/obs.hpp"
#include "ocsp/request.hpp"
#include "ocsp/verify.hpp"

namespace mustaple::measurement {

AlexaScanResult run_alexa_scan(Ecosystem& ecosystem,
                               const AlexaScanConfig& config) {
  AlexaScanResult result;
  net::Network& network = ecosystem.network();
  network.loop().run_until(config.scan_time);

  // One representative scan target per responder (every responder has at
  // least one).
  const std::size_t responder_count = ecosystem.responders().size();
  std::vector<const ScanTarget*> representative(responder_count, nullptr);
  for (const ScanTarget& target : ecosystem.scan_targets()) {
    if (representative[target.responder_index] == nullptr) {
      representative[target.responder_index] = &target;
    }
  }

  // Probe each (responder, region) once; classify.
  enum class Outcome : std::uint8_t { kNotProbed, kOk, kUnreachable, kUnusable };
  std::vector<std::array<Outcome, net::kRegionCount>> outcomes(
      responder_count, {Outcome::kNotProbed, Outcome::kNotProbed,
                        Outcome::kNotProbed, Outcome::kNotProbed,
                        Outcome::kNotProbed, Outcome::kNotProbed});
  for (std::size_t r = 0; r < responder_count; ++r) {
    const ScanTarget* target = representative[r];
    if (target == nullptr) continue;
    if (!target->cert.extensions().supports_ocsp()) {
      MUSTAPLE_COUNT_L("mustaple_scan_targets_skipped_total", "component",
                       "alexa");
      continue;
    }
    ++result.responders_touched;
    const x509::Certificate& issuer =
        ecosystem.authority(target->ca_index).intermediate_cert();
    const auto id = ocsp::CertId::for_certificate(target->cert, issuer);
    const util::Bytes request = ocsp::OcspRequest::single(id).encode_der();
    auto url = net::parse_url(target->cert.extensions().ocsp_urls.front());
    if (!url.ok()) continue;
    bool linted_this_responder = false;
    for (net::Region region : net::all_regions()) {
      const std::size_t g = static_cast<std::size_t>(region);
      net::FetchResult fetched = network.http_post(
          region, url.value(), request, "application/ocsp-request");
      if (!fetched.success()) {
        outcomes[r][g] = Outcome::kUnreachable;
        continue;
      }
      const auto verdict = ocsp::verify_ocsp_response(
          fetched.response.body, id, issuer.public_key(), network.now());
      outcomes[r][g] =
          verdict.usable() ? Outcome::kOk : Outcome::kUnusable;
      // Lint one region's body per responder — the simulated responder
      // serves the same DER to every vantage point, so one artifact per
      // responder keeps the report per-responder, not per-region.
      if (config.lint_responses && !linted_this_responder) {
        linted_this_responder = true;
        lint::Context ctx;
        ctx.issuer = &issuer;
        ctx.requested_serial = id.serial;
        ctx.now = network.now();
        const lint::Artifact artifact = lint::Artifact::ocsp_response(
            ecosystem.responders()[r].host, fetched.response.body, ctx);
        result.lint.add(
            lint::lint_artifact(lint::RuleRegistry::builtin(), artifact));
      }
    }
  }

  // Attribute per-domain.
  std::size_t index = 0;
  for (const DomainMeta& meta : ecosystem.domains()) {
    if (!meta.ocsp || meta.responder == 0xffff) continue;
    if (config.domain_stride > 1 && (index++ % config.domain_stride) != 0) {
      continue;
    }
    ++result.domains_probed;
    bool reachable_somewhere = false;
    for (std::size_t g = 0; g < net::kRegionCount; ++g) {
      switch (outcomes[meta.responder][g]) {
        case Outcome::kOk:
          reachable_somewhere = true;
          break;
        case Outcome::kUnreachable:
          ++result.domains_unreachable[g];
          break;
        case Outcome::kUnusable:
          ++result.domains_unusable[g];
          reachable_somewhere = true;  // the responder IS up
          break;
        case Outcome::kNotProbed:
          break;
      }
    }
    if (!reachable_somewhere) ++result.domains_dark_everywhere;
  }
  return result;
}

}  // namespace mustaple::measurement
