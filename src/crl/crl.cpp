#include "crl/crl.hpp"

#include <algorithm>

#include "asn1/der.hpp"

namespace mustaple::crl {

namespace {

using asn1::Reader;
using asn1::Tag;
using asn1::Writer;
using util::Bytes;
using util::Result;

const asn1::Oid& sig_oid(crypto::SignatureAlgorithm alg) {
  return alg == crypto::SignatureAlgorithm::kRsaSha256
             ? asn1::oids::sha256_with_rsa()
             : asn1::oids::sim_hash_sig();
}

void write_alg(Writer& w, crypto::SignatureAlgorithm alg) {
  w.sequence([&](Writer& seq) {
    seq.oid(sig_oid(alg));
    seq.null();
  });
}

}  // namespace

const char* to_string(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kUnspecified:
      return "unspecified";
    case ReasonCode::kKeyCompromise:
      return "keyCompromise";
    case ReasonCode::kCaCompromise:
      return "cACompromise";
    case ReasonCode::kAffiliationChanged:
      return "affiliationChanged";
    case ReasonCode::kSuperseded:
      return "superseded";
    case ReasonCode::kCessationOfOperation:
      return "cessationOfOperation";
    case ReasonCode::kCertificateHold:
      return "certificateHold";
    case ReasonCode::kRemoveFromCrl:
      return "removeFromCRL";
    case ReasonCode::kPrivilegeWithdrawn:
      return "privilegeWithdrawn";
    case ReasonCode::kAaCompromise:
      return "aACompromise";
  }
  return "unknown";
}

const RevokedEntry* Crl::find(const util::Bytes& serial) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&serial](const RevokedEntry& e) { return e.serial == serial; });
  return it == entries_.end() ? nullptr : &*it;
}

bool Crl::verify_signature(const crypto::PublicKey& issuer_key) const {
  return issuer_key.verify(tbs_der_, signature_);
}

util::Bytes Crl::encode_der() const {
  Writer w;
  w.sequence([&](Writer& list) {
    list.raw(tbs_der_);
    write_alg(list, sig_alg_);
    list.bit_string(signature_);
  });
  return w.take();
}

util::Result<Crl> Crl::parse(const util::Bytes& der) {
  using R = Result<Crl>;
  Reader top(der);
  auto outer = top.expect_view(Tag::kSequence);
  if (!outer.ok()) return R::failure(outer.error().code, outer.error().detail);
  Reader list(outer.value().content);

  auto tbs = list.expect_view(Tag::kSequence);
  if (!tbs.ok()) return R::failure(tbs.error().code, "tbsCertList");
  Crl crl;
  {
    Writer rewriter;
    rewriter.tlv(static_cast<std::uint8_t>(Tag::kSequence), tbs.value().content);
    crl.tbs_der_ = rewriter.take();
  }

  {
    auto alg_seq = list.expect_view(Tag::kSequence);
    if (!alg_seq.ok()) return R::failure(alg_seq.error().code, "algorithm");
    Reader alg_body(alg_seq.value().content);
    auto oid = alg_body.read_oid();
    if (!oid.ok()) return R::failure(oid.error().code, "algorithm oid");
    crl.sig_alg_ = oid.value() == asn1::oids::sha256_with_rsa()
                       ? crypto::SignatureAlgorithm::kRsaSha256
                       : crypto::SignatureAlgorithm::kSimHashSig;
  }
  auto sig = list.read_bit_string_view();
  if (!sig.ok()) return R::failure(sig.error().code, "signature");
  crl.signature_ = sig.value().to_bytes();

  Reader tbs_reader(tbs.value().content);
  auto version = tbs_reader.read_integer();
  if (!version.ok()) return R::failure(version.error().code, "version");
  {
    auto alg_seq = tbs_reader.expect_view(Tag::kSequence);
    if (!alg_seq.ok()) return R::failure(alg_seq.error().code, "tbs algorithm");
  }
  auto issuer_tlv = tbs_reader.expect_view(Tag::kSequence);
  if (!issuer_tlv.ok()) return R::failure(issuer_tlv.error().code, "issuer");
  auto issuer = x509::DistinguishedName::decode(issuer_tlv.value());
  if (!issuer.ok()) return R::failure(issuer.error().code, "issuer");
  crl.issuer_ = issuer.value();

  auto this_update = tbs_reader.read_generalized_time();
  if (!this_update.ok()) {
    return R::failure(this_update.error().code, "thisUpdate");
  }
  crl.this_update_ = this_update.value();
  auto next_update = tbs_reader.read_generalized_time();
  if (!next_update.ok()) {
    return R::failure(next_update.error().code, "nextUpdate");
  }
  crl.next_update_ = next_update.value();

  if (!tbs_reader.at_end()) {
    auto revoked_seq = tbs_reader.expect_view(Tag::kSequence);
    if (!revoked_seq.ok()) {
      return R::failure(revoked_seq.error().code, "revokedCertificates");
    }
    Reader revoked(revoked_seq.value().content);
    while (!revoked.at_end()) {
      auto entry_tlv = revoked.expect_view(Tag::kSequence);
      if (!entry_tlv.ok()) return R::failure(entry_tlv.error().code, "entry");
      Reader entry_reader(entry_tlv.value().content);
      RevokedEntry entry;
      auto serial = entry_reader.read_integer_bytes_view();
      if (!serial.ok()) return R::failure(serial.error().code, "entry serial");
      entry.serial = serial.value().to_bytes();
      auto when = entry_reader.read_generalized_time();
      if (!when.ok()) return R::failure(when.error().code, "entry time");
      entry.revocation_time = when.value();
      if (!entry_reader.at_end()) {
        auto exts = entry_reader.expect_view(Tag::kSequence);
        if (!exts.ok()) return R::failure(exts.error().code, "entry exts");
        Reader exts_reader(exts.value().content);
        while (!exts_reader.at_end()) {
          auto ext = exts_reader.expect_view(Tag::kSequence);
          if (!ext.ok()) return R::failure(ext.error().code, "entry ext");
          Reader ext_reader(ext.value().content);
          auto oid = ext_reader.read_oid();
          if (!oid.ok()) return R::failure(oid.error().code, "entry ext oid");
          auto value = ext_reader.read_octet_string_view();
          if (!value.ok()) return R::failure(value.error().code, "ext value");
          if (oid.value() == asn1::oids::crl_reason()) {
            Reader value_reader(value.value());
            auto reason = value_reader.read_enumerated();
            if (!reason.ok()) return R::failure(reason.error().code, "reason");
            entry.reason = static_cast<ReasonCode>(reason.value());
          }
        }
      }
      crl.entries_.push_back(std::move(entry));
    }
  }
  return crl;
}

CrlBuilder& CrlBuilder::issuer(x509::DistinguishedName name) {
  issuer_ = std::move(name);
  return *this;
}

CrlBuilder& CrlBuilder::this_update(util::SimTime t) {
  this_update_ = t;
  return *this;
}

CrlBuilder& CrlBuilder::next_update(util::SimTime t) {
  next_update_ = t;
  return *this;
}

CrlBuilder& CrlBuilder::add_entry(RevokedEntry entry) {
  entries_.push_back(std::move(entry));
  return *this;
}

Crl CrlBuilder::sign(const crypto::KeyPair& issuer_key) const {
  Writer w;
  w.sequence([&](Writer& tbs) {
    tbs.integer(1);  // v2
    write_alg(tbs, issuer_key.algorithm());
    issuer_.encode(tbs);
    tbs.generalized_time(this_update_);
    tbs.generalized_time(next_update_);
    if (!entries_.empty()) {
      tbs.sequence([&](Writer& revoked) {
        for (const auto& entry : entries_) {
          revoked.sequence([&](Writer& e) {
            e.integer_bytes(entry.serial);
            e.generalized_time(entry.revocation_time);
            if (entry.reason) {
              e.sequence([&](Writer& exts) {
                exts.sequence([&](Writer& ext) {
                  ext.oid(asn1::oids::crl_reason());
                  Writer enumerated;
                  enumerated.enumerated(static_cast<std::int64_t>(*entry.reason));
                  ext.octet_string(enumerated.take());
                });
              });
            }
          });
        }
      });
    }
  });

  Crl crl;
  crl.issuer_ = issuer_;
  crl.this_update_ = this_update_;
  crl.next_update_ = next_update_;
  crl.entries_ = entries_;
  crl.sig_alg_ = issuer_key.algorithm();
  crl.tbs_der_ = w.take();
  crl.signature_ = issuer_key.sign(crl.tbs_der_);
  return crl;
}

}  // namespace mustaple::crl
