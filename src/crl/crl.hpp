// Certificate Revocation Lists (RFC 5280 profile, reduced to the fields the
// study uses): revoked (serial, time, reason) entries plus the
// thisUpdate/nextUpdate validity window the paper analyses in §5.4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/signer.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sim_time.hpp"
#include "x509/name.hpp"

namespace mustaple::crl {

/// RFC 5280 §5.3.1 CRLReason codes (shared with OCSP, per the paper's
/// footnote 21).
enum class ReasonCode : std::int8_t {
  kUnspecified = 0,
  kKeyCompromise = 1,
  kCaCompromise = 2,
  kAffiliationChanged = 3,
  kSuperseded = 4,
  kCessationOfOperation = 5,
  kCertificateHold = 6,
  kRemoveFromCrl = 8,
  kPrivilegeWithdrawn = 9,
  kAaCompromise = 10,
};

const char* to_string(ReasonCode reason);

/// One revokedCertificates entry.
struct RevokedEntry {
  util::Bytes serial;
  util::SimTime revocation_time;
  /// Reason code is OPTIONAL in both CRLs and OCSP; the paper finds 99.99%
  /// of discrepancies are "CRL has a reason, OCSP does not".
  std::optional<ReasonCode> reason;
};

/// A signed CRL.
class Crl {
 public:
  Crl() = default;

  const x509::DistinguishedName& issuer() const { return issuer_; }
  util::SimTime this_update() const { return this_update_; }
  util::SimTime next_update() const { return next_update_; }
  const std::vector<RevokedEntry>& entries() const { return entries_; }
  const util::Bytes& signature() const { return signature_; }
  const util::Bytes& tbs_der() const { return tbs_der_; }

  bool is_fresh_at(util::SimTime now) const {
    return this_update_ <= now && now <= next_update_;
  }

  /// Looks up a serial; nullptr when not revoked.
  const RevokedEntry* find(const util::Bytes& serial) const;
  bool is_revoked(const util::Bytes& serial) const { return find(serial) != nullptr; }

  bool verify_signature(const crypto::PublicKey& issuer_key) const;

  util::Bytes encode_der() const;
  static util::Result<Crl> parse(const util::Bytes& der);

  friend class CrlBuilder;

 private:
  x509::DistinguishedName issuer_;
  util::SimTime this_update_{};
  util::SimTime next_update_{};
  std::vector<RevokedEntry> entries_;
  util::Bytes tbs_der_;
  util::Bytes signature_;
  crypto::SignatureAlgorithm sig_alg_ = crypto::SignatureAlgorithm::kSimHashSig;
};

/// Builds and signs CRLs; used by the CA simulation's periodic publication.
class CrlBuilder {
 public:
  CrlBuilder& issuer(x509::DistinguishedName name);
  CrlBuilder& this_update(util::SimTime t);
  CrlBuilder& next_update(util::SimTime t);
  CrlBuilder& add_entry(RevokedEntry entry);

  Crl sign(const crypto::KeyPair& issuer_key) const;

 private:
  x509::DistinguishedName issuer_;
  util::SimTime this_update_{};
  util::SimTime next_update_{};
  std::vector<RevokedEntry> entries_;
};

}  // namespace mustaple::crl
