// Minimal URL parsing for http/https URLs as found in AIA and CRL-DP
// extensions (including non-default ports like the paper's
// http://ocsp.pki.wayport.net:2560).
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace mustaple::net {

struct Url {
  std::string scheme;  ///< "http" or "https"
  std::string host;
  std::uint16_t port = 80;
  std::string path = "/";

  std::string to_string() const;
};

/// Parses an absolute http(s) URL; rejects other schemes.
util::Result<Url> parse_url(const std::string& text);

}  // namespace mustaple::net
