// Fault injection. Reproduces the failure taxonomy of paper §5.2:
//   * persistent per-(host, region) failures: DNS NXDOMAIN (16 responders),
//     TCP connect failure (4), HTTP 4xx/5xx (8), invalid TLS certificate on
//     an HTTPS responder (1);
//   * scheduled outage windows, global or regional, transient (hours) —
//     e.g. the Comodo outage of Apr 25 seen only from Oregon/Sydney/Seoul,
//     the Digicert Aug 27 outage seen only from Seoul;
//   * gradual permanent death (the wayport.net responders that "had become
//     unavailable gradually", Fig 3's first-month decline).
//
// Faults key on the *canonical* DNS name, so aliases inherit the outage of
// their CNAME target exactly as the paper observed.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/vantage.hpp"
#include "util/sim_time.hpp"

namespace mustaple::net {

/// How a faulted request fails.
enum class FaultMode : std::uint8_t {
  kDnsNxDomain,
  kTcpConnectFailure,
  kHttp404,
  kHttp500,
  kHttp503,
  kTlsCertInvalid,  ///< HTTPS responder served with a broken certificate
};

const char* to_string(FaultMode mode);

/// A fault rule. With no window set, the rule is persistent; with no region
/// set, it applies from every vantage point.
struct FaultRule {
  std::string canonical_host;
  FaultMode mode = FaultMode::kTcpConnectFailure;
  /// Empty = all regions (global outage); otherwise only these vantage
  /// points see the failure.
  std::set<Region> regions;
  /// Active window; nullopt start/end = open-ended on that side.
  std::optional<util::SimTime> window_start;
  std::optional<util::SimTime> window_end;

  bool applies(const std::string& host, Region from, util::SimTime now) const;
};

/// All scheduled faults for a run; evaluated on every simulated request.
class FaultPlan {
 public:
  void add(FaultRule rule);

  /// First matching rule, or nullopt when the request should succeed.
  std::optional<FaultMode> check(const std::string& canonical_host,
                                 Region from, util::SimTime now) const;

  std::size_t size() const { return rules_.size(); }

 private:
  std::vector<FaultRule> rules_;
};

}  // namespace mustaple::net
