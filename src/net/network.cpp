#include "net/network.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace mustaple::net {

const char* to_string(TransportError error) {
  switch (error) {
    case TransportError::kNone:
      return "none";
    case TransportError::kDnsFailure:
      return "dns-failure";
    case TransportError::kTcpFailure:
      return "tcp-failure";
    case TransportError::kTlsCertInvalid:
      return "tls-cert-invalid";
  }
  return "?";
}

std::optional<TransportError> transport_error_from_string(
    std::string_view text) {
  for (TransportError error :
       {TransportError::kNone, TransportError::kDnsFailure,
        TransportError::kTcpFailure, TransportError::kTlsCertInvalid}) {
    if (text == to_string(error)) return error;
  }
  return std::nullopt;
}

const char* error_kind_label(TransportError error, int status_code) {
  switch (error) {
    case TransportError::kDnsFailure:
      return "dns";
    case TransportError::kTcpFailure:
      return "tcp";
    case TransportError::kTlsCertInvalid:
      return "tls";
    case TransportError::kNone:
      break;
  }
  return status_code >= 400 ? "http" : nullptr;
}

void Network::set_host_region(const std::string& canonical_host,
                              Region region) {
  host_regions_[canonical_host] = region;
}

void Network::register_service(const std::string& host, std::uint16_t port,
                               HttpHandler handler) {
  services_[host + ":" + std::to_string(port)] = std::move(handler);
  if (!dns_.has_name(host)) {
    // Auto-assign a deterministic address so registration is one call.
    // FNV-1a (not std::hash, whose result is implementation-defined and
    // would make campaigns non-reproducible across standard libraries),
    // with linear-congruential probing past collisions so two hosts never
    // silently share an auto-assigned address. Hosts that should share an
    // address (the paper's six-responders-one-IP case) use dns().add_a
    // explicitly before registration.
    Address address =
        static_cast<Address>(util::fnv1a64(host) & 0xffffffffu);
    while (dns_.has_address(address)) {
      address = address * 1664525u + 1013904223u;  // full-period LCG step
    }
    dns_.add_a(host, address);
  }
}

bool Network::has_service(const std::string& host, std::uint16_t port) const {
  return services_.count(host + ":" + std::to_string(port)) > 0;
}

double sample_probe_latency_ms(std::uint64_t latency_seed, Region from,
                               Region host_region, util::SimTime when,
                               std::uint64_t ordinal) {
  // Counter-based sampling: the jitter is a pure function of the key, so a
  // probe draws the same latency no matter which thread executes it or how
  // many other probes ran first. A throwaway Rng seeded from the mixed key
  // shapes the draw; it never shares state with anything.
  std::uint64_t key = latency_seed;
  key = util::hash_combine(key, static_cast<std::uint64_t>(from));
  key = util::hash_combine(key, static_cast<std::uint64_t>(host_region));
  key = util::hash_combine(key,
                           static_cast<std::uint64_t>(when.unix_seconds));
  key = util::hash_combine(key, ordinal);
  util::Rng rng(key);
  const double rtt = base_rtt_ms(from, host_region);
  // TCP handshake + request/response: ~2 RTT, with mild jitter.
  return std::max(1.0, rng.normal_approx(2.0 * rtt, 0.15 * rtt));
}

double Network::sample_latency_ms(Region from, const std::string& host,
                                  std::uint64_t ordinal) const {
  Region host_region = Region::kVirginia;
  const auto it = host_regions_.find(host);
  if (it != host_regions_.end()) host_region = it->second;
  // The canonical host name is folded into the seed (rather than passed as
  // a field) so two hosts in the same region still jitter independently.
  const std::uint64_t keyed_seed =
      util::hash_combine(latency_seed_, util::fnv1a64(host));
  return sample_probe_latency_ms(keyed_seed, from, host_region, loop_->now(),
                                 ordinal);
}

FetchResult Network::http_request(Region from, const Url& url,
                                  HttpRequest request) {
  FetchResult result =
      http_request_impl(from, url, std::move(request), fetch_sequence_++);
  record_fetch(from, url, result);
  return result;
}

FetchResult Network::http_request_probe(Region from, const Url& url,
                                        HttpRequest request,
                                        std::uint64_t probe_ordinal) const {
  return http_request_impl(from, url, std::move(request), probe_ordinal);
}

void Network::record_fetch(Region from, const Url& url,
                           const FetchResult& result) {
#if MUSTAPLE_OBS_ENABLED
  obs::Registry& registry = obs::default_registry();
  registry.counter("mustaple_net_fetch_total").inc();
  registry.counter("mustaple_net_fetch_by_region_total",
                   {{"region", to_string(from)}})
      .inc();
  registry.histogram("mustaple_net_fetch_latency_ms")
      .observe(result.latency_ms);
  const char* kind =
      error_kind_label(result.error, result.response.status_code);
  if (kind) {
    registry.counter("mustaple_net_fetch_errors_total", {{"kind", kind}})
        .inc();
    MUSTAPLE_LOG_DEBUG("net", "fetch failed", obs::field("host", url.host),
                       obs::field("kind", kind),
                       obs::field("region", to_string(from)),
                       obs::field("status", result.response.status_code));
  }
  // Lay the exchange on the simulated clock: one track per vantage point,
  // the span's duration being the modelled network latency. The probe's
  // TraceContext (restored by the EventLoop or set by the scanner) rides
  // along so Perfetto can follow one probe across layers.
  if (obs::default_trace_log().enabled()) {
    obs::default_trace_log().complete(
        url.host, "net", loop_->now(), result.latency_ms,
        static_cast<std::uint32_t>(from),
        {{"region", to_string(from)},
         {"outcome", kind ? kind : "ok"},
         {"status", std::to_string(result.response.status_code)}});
  }
#else
  (void)from;
  (void)url;
  (void)result;
#endif
}

FetchResult Network::http_request_impl(Region from, const Url& url,
                                       HttpRequest request,
                                       std::uint64_t ordinal) const {
  FetchResult result;
  const std::string canonical = dns_.canonical_name(url.host);
  result.latency_ms = sample_latency_ms(from, canonical, ordinal);

  // Injected faults are evaluated on the canonical name so CNAME aliases
  // share their target's outages (the Comodo pattern, §5.2).
  const auto fault = faults_.check(canonical, from, loop_->now());
  if (fault) {
    switch (*fault) {
      case FaultMode::kDnsNxDomain:
        result.error = TransportError::kDnsFailure;
        return result;
      case FaultMode::kTcpConnectFailure:
        result.error = TransportError::kTcpFailure;
        return result;
      case FaultMode::kTlsCertInvalid:
        if (url.scheme == "https") {
          result.error = TransportError::kTlsCertInvalid;
          return result;
        }
        break;  // plain HTTP ignores the bad certificate
      case FaultMode::kHttp404:
        result.response = HttpResponse::make(404, default_reason(404), {}, "");
        return result;
      case FaultMode::kHttp500:
        result.response = HttpResponse::make(500, default_reason(500), {}, "");
        return result;
      case FaultMode::kHttp503:
        result.response = HttpResponse::make(503, default_reason(503), {}, "");
        return result;
    }
  }

  if (!dns_.resolve(url.host).ok()) {
    result.error = TransportError::kDnsFailure;
    return result;
  }

  const auto service = services_.find(canonical + ":" + std::to_string(url.port));
  if (service == services_.end()) {
    result.error = TransportError::kTcpFailure;
    return result;
  }

  request.path = url.path;
  request.headers.set("host", url.host);
  // Round-trip through the wire format so handlers see honestly parsed
  // messages and malformed handler output is caught at the client.
  auto reparsed = HttpRequest::parse(request.serialize());
  if (!reparsed.ok()) {
    result.response = HttpResponse::make(400, default_reason(400), {}, "");
    return result;
  }
  result.response = service->second(reparsed.value(), loop_->now(), from);
  return result;
}

FetchResult Network::http_post(Region from, const Url& url, util::Bytes body,
                               const std::string& content_type) {
  HttpRequest request;
  request.method = "POST";
  request.body = std::move(body);
  request.headers.set("content-type", content_type);
  return http_request(from, url, std::move(request));
}

FetchResult Network::http_get(Region from, const Url& url) {
  HttpRequest request;
  request.method = "GET";
  return http_request(from, url, std::move(request));
}

}  // namespace mustaple::net
