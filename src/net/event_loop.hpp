// Discrete-event scheduler driving the simulated clock. Web-server staple
// refresh timers, responder regeneration cycles, and the hourly scanner all
// schedule callbacks here; time jumps between events, so a four-month
// campaign runs in wall-clock milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/trace.hpp"
#include "util/sim_time.hpp"

namespace mustaple::net {

class EventLoop {
 public:
  explicit EventLoop(util::SimTime start) : now_(start) {}

  util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now if in the past).
  void schedule_at(util::SimTime when, std::function<void()> fn);
  void schedule_after(util::Duration delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or the next event is after
  /// `deadline`; the clock lands on `deadline`.
  void run_until(util::SimTime deadline);

  /// Runs everything scheduled; the clock lands on the last event's time.
  void run_all();

  std::size_t pending() const { return queue_.size(); }

  // Lifetime counters, maintained unconditionally (they back the obs
  // metrics but stay available when obs is compiled out).
  std::uint64_t events_dispatched() const { return events_dispatched_; }
  /// Queue-depth high-water mark over the loop's lifetime.
  std::size_t max_pending() const { return max_pending_; }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t sequence;  ///< FIFO tie-break for same-time events
    std::function<void()> fn;
#if MUSTAPLE_OBS_ENABLED
    /// Causal context captured at schedule time, restored for dispatch so a
    /// callback chain keeps the identity of the probe that started it.
    obs::TraceContext trace;
#endif
  };
  void dispatch(Event event);
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.sequence < a.sequence;
    }
  };

  util::SimTime now_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mustaple::net
