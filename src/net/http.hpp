// HTTP/1.1 message model with a real text serializer/parser. OCSP-over-HTTP
// (RFC 6960 Appendix A) rides on POST with Content-Type
// application/ocsp-request; the simulated responders and web servers speak
// this format on the wire so parser-level failures are honest.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace mustaple::net {

/// Header map with case-insensitive keys (stored lowercase).
class HeaderMap {
 public:
  void set(const std::string& name, const std::string& value);
  /// Returns empty string when absent.
  std::string get(const std::string& name) const;
  bool contains(const std::string& name) const;
  const std::map<std::string, std::string>& entries() const { return headers_; }

 private:
  std::map<std::string, std::string> headers_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  HeaderMap headers;
  util::Bytes body;

  std::string host() const { return headers.get("host"); }

  /// Serializes to wire format (adds Content-Length).
  util::Bytes serialize() const;
  static util::Result<HttpRequest> parse(const util::Bytes& wire);
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  HeaderMap headers;
  util::Bytes body;

  bool ok() const { return status_code == 200; }

  util::Bytes serialize() const;
  static util::Result<HttpResponse> parse(const util::Bytes& wire);

  static HttpResponse make(int status, std::string reason, util::Bytes body,
                           const std::string& content_type);
};

const char* default_reason(int status_code);

}  // namespace mustaple::net
