#include "net/event_loop.hpp"

namespace mustaple::net {

void EventLoop::schedule_at(util::SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_sequence_++, std::move(fn)});
}

void EventLoop::run_until(util::SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
  }
  if (deadline > now_) now_ = deadline;
}

void EventLoop::run_all() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.fn();
  }
}

}  // namespace mustaple::net
