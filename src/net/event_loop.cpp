#include "net/event_loop.hpp"

#include "obs/obs.hpp"

namespace mustaple::net {

void EventLoop::schedule_at(util::SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
#if MUSTAPLE_OBS_ENABLED
  queue_.push(Event{when, next_sequence_++, std::move(fn),
                    obs::current_trace()});
#else
  queue_.push(Event{when, next_sequence_++, std::move(fn)});
#endif
  if (queue_.size() > max_pending_) {
    max_pending_ = queue_.size();
    MUSTAPLE_GAUGE_MAX("mustaple_loop_queue_depth_high_water", max_pending_);
  }
}

void EventLoop::dispatch(Event event) {
  now_ = event.when;
#if MUSTAPLE_OBS_ENABLED
  // Window boundaries close BEFORE the event's effects land, so activity at
  // exactly a boundary accrues to the window that starts there.
  obs::advance_installed_timeline(now_);
  const auto dispatch_start = std::chrono::steady_clock::now();
  {
    obs::TraceScope scope(event.trace);
    event.fn();
  }
  using MillisDouble = std::chrono::duration<double, std::milli>;
  const double dispatch_ms =
      MillisDouble(std::chrono::steady_clock::now() - dispatch_start).count();
  MUSTAPLE_OBSERVE("mustaple_loop_dispatch_latency_ms", dispatch_ms);
#else
  event.fn();
#endif
  ++events_dispatched_;
  MUSTAPLE_COUNT("mustaple_loop_events_dispatched_total");
}

void EventLoop::run_until(util::SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    dispatch(std::move(event));
  }
  if (deadline > now_) {
    now_ = deadline;
#if MUSTAPLE_OBS_ENABLED
    obs::advance_installed_timeline(now_);
#endif
  }
}

void EventLoop::run_all() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    dispatch(std::move(event));
  }
}

}  // namespace mustaple::net
