#include "net/vantage.hpp"

namespace mustaple::net {

const char* to_string(Region region) {
  switch (region) {
    case Region::kOregon:
      return "Oregon";
    case Region::kVirginia:
      return "Virginia";
    case Region::kSaoPaulo:
      return "Sao-Paulo";
    case Region::kParis:
      return "Paris";
    case Region::kSydney:
      return "Sydney";
    case Region::kSeoul:
      return "Seoul";
  }
  return "?";
}

double base_rtt_ms(Region from, Region to) {
  // Symmetric matrix of approximate inter-region RTTs (ms).
  static constexpr double kRtt[kRegionCount][kRegionCount] = {
      //            OR     VA     SP     PA     SY     SE
      /* OR */ {5.0, 70.0, 180.0, 140.0, 160.0, 130.0},
      /* VA */ {70.0, 5.0, 120.0, 80.0, 200.0, 180.0},
      /* SP */ {180.0, 120.0, 5.0, 200.0, 310.0, 300.0},
      /* PA */ {140.0, 80.0, 200.0, 5.0, 280.0, 240.0},
      /* SY */ {160.0, 200.0, 310.0, 280.0, 5.0, 130.0},
      /* SE */ {130.0, 180.0, 300.0, 240.0, 130.0, 5.0},
  };
  return kRtt[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

}  // namespace mustaple::net
