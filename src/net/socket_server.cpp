#include "net/socket_server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <limits>

#include "util/hash.hpp"
#include "util/strings.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#define MUSTAPLE_HAVE_EPOLL 1
#else
#define MUSTAPLE_HAVE_EPOLL 0
#endif

namespace mustaple::net {

namespace {

using util::Bytes;

// epoll_event.data.u64 tags: 0 is the worker's wake eventfd, 1..listener
// count are listen sockets (index + 1), and anything larger is a Connection
// pointer (heap addresses are always far above the listener count).
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTagBase = 1;

constexpr std::size_t kHeadSepLen = 4;  // "\r\n\r\n"

/// Finds "\r\n\r\n" in [begin, end); returns npos when absent.
std::size_t find_head_end(const std::uint8_t* data, std::size_t begin,
                          std::size_t end) {
  if (end < begin + kHeadSepLen) return std::string::npos;
  static constexpr std::uint8_t kSep[kHeadSepLen] = {'\r', '\n', '\r', '\n'};
  const std::uint8_t* hit = static_cast<const std::uint8_t*>(
      ::memmem(data + begin, end - begin, kSep, kHeadSepLen));
  if (hit == nullptr) return std::string::npos;
  return static_cast<std::size_t>(hit - data);
}

/// Parses a Content-Length value; false on non-digit or overflow-prone text.
bool parse_content_length(const std::string& declared, std::size_t* out) {
  if (declared.empty()) return false;
  std::size_t length = 0;
  for (const char c : declared) {
    if (c < '0' || c > '9') return false;
    if (length > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
      return false;
    }
    length = length * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = length;
  return true;
}

HttpResponse plain_response(int status, const char* reason,
                            const std::string& body) {
  return HttpResponse::make(status, reason, util::bytes_of(body),
                            "text/plain");
}

}  // namespace

struct SocketServer::Connection {
  int fd = -1;
  std::size_t listener = 0;  ///< index into listeners_ (selects the handler)
  Bytes in;
  std::size_t in_off = 0;  ///< consumed prefix of `in` (compacted lazily)
  Bytes out;
  std::size_t out_off = 0;
  bool close_after_flush = false;
  bool want_write = false;  ///< EPOLLOUT currently armed
  std::chrono::steady_clock::time_point deadline{};
};

struct SocketServer::Worker {
  std::thread thread;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::vector<int> listen_fds;  ///< one per listener, SO_REUSEPORT siblings
  std::vector<std::unique_ptr<Connection>> connections;
};

SocketServer::SocketServer() : SocketServer(Options()) {}

SocketServer::SocketServer(Options options) : options_(std::move(options)) {}

SocketServer::~SocketServer() { stop(); }

std::size_t SocketServer::add_listener(std::string name, std::uint16_t port,
                                       WireHandler handler) {
  auto listener = std::make_unique<Listener>();
  listener->name = std::move(name);
  listener->requested_port = port;
  listener->handler = std::move(handler);
  listeners_.push_back(std::move(listener));
  return listeners_.size() - 1;
}

std::uint16_t SocketServer::port(std::size_t index) const {
  if (index >= listeners_.size()) return 0;
  return listeners_[index]->bound_port.load(std::memory_order_acquire);
}

std::uint16_t SocketServer::port(const std::string& name) const {
  for (const auto& listener : listeners_) {
    if (listener->name == name) {
      return listener->bound_port.load(std::memory_order_acquire);
    }
  }
  return 0;
}

SocketServerStats SocketServer::stats() const {
  SocketServerStats out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.connections_rejected = rejected_.load(std::memory_order_relaxed);
  out.connections_closed = closed_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses_400 = r400_.load(std::memory_order_relaxed);
  out.responses_408 = r408_.load(std::memory_order_relaxed);
  out.responses_431 = r431_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return out;
}

#if MUSTAPLE_HAVE_EPOLL

util::Status SocketServer::start() {
  if (running()) return util::Status::success();
  if (listeners_.empty()) {
    return util::Status::failure("serve.no_listeners",
                                 "add_listener before start");
  }

  std::size_t worker_count = options_.worker_threads;
  if (worker_count == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    worker_count = std::min<std::size_t>(4, hw == 0 ? 1 : hw);
  }

  struct in_addr bind_addr {};
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &bind_addr) != 1) {
    return util::Status::failure("serve.bad_address", options_.bind_address);
  }

  workers_.clear();
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }

  auto fail = [this](const char* code, const std::string& detail) {
    for (auto& worker : workers_) close_worker_fds(*worker);
    workers_.clear();
    for (auto& listener : listeners_) {
      listener->bound_port.store(0, std::memory_order_release);
    }
    return util::Status::failure(code, detail);
  };

  // Bind every listener on every worker. SO_REUSEPORT makes the kernel
  // spread incoming connections across the sibling sockets — one accept
  // queue per worker, no shared lock. For an ephemeral request (port 0) the
  // first worker's bind resolves the port and the siblings reuse it.
  for (std::size_t li = 0; li < listeners_.size(); ++li) {
    Listener& listener = *listeners_[li];
    std::uint16_t resolved = listener.requested_port;
    for (std::size_t w = 0; w < worker_count; ++w) {
      const int fd =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (fd < 0) return fail("serve.socket", std::strerror(errno));
      workers_[w]->listen_fds.push_back(fd);
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
        return fail("serve.reuseport", std::strerror(errno));
      }
      struct sockaddr_in addr {};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(resolved);
      addr.sin_addr = bind_addr;
      if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        return fail("serve.bind",
                    listener.name + ": " + std::strerror(errno));
      }
      if (resolved == 0) {
        struct sockaddr_in bound {};
        socklen_t bound_len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                          &bound_len) != 0) {
          return fail("serve.getsockname", std::strerror(errno));
        }
        resolved = ntohs(bound.sin_port);
      }
      if (::listen(fd, options_.listen_backlog) != 0) {
        return fail("serve.listen",
                    listener.name + ": " + std::strerror(errno));
      }
    }
    listener.bound_port.store(resolved, std::memory_order_release);
  }

  for (auto& worker : workers_) {
    worker->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->wake_fd < 0 || worker->epoll_fd < 0) {
      return fail("serve.epoll", std::strerror(errno));
    }
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev);
    for (std::size_t li = 0; li < worker->listen_fds.size(); ++li) {
      // Level-triggered accept: with SO_REUSEPORT each ready connection
      // lands in exactly one sibling's queue, and level semantics mean a
      // burst never strands queued connections behind a missed edge.
      ev.events = EPOLLIN;
      ev.data.u64 = kListenTagBase + li;
      ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->listen_fds[li],
                  &ev);
    }
  }

  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker->thread = std::thread([this, w] { serve_loop(*w); });
  }
  return util::Status::success();
}

void SocketServer::stop() {
  if (!running()) {
    // start() may have failed mid-way; nothing to join, nothing open.
    return;
  }
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  for (auto& worker : workers_) {
    if (worker->wake_fd >= 0) {
      [[maybe_unused]] const auto n =
          ::write(worker->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    close_worker_fds(*worker);
  }
  workers_.clear();
  for (auto& listener : listeners_) {
    listener->bound_port.store(0, std::memory_order_release);
  }
}

void SocketServer::close_worker_fds(Worker& worker) {
  for (const auto& conn : worker.connections) {
    if (conn->fd >= 0) ::close(conn->fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
  }
  worker.connections.clear();
  for (const int fd : worker.listen_fds) {
    if (fd >= 0) ::close(fd);
  }
  worker.listen_fds.clear();
  if (worker.epoll_fd >= 0) ::close(worker.epoll_fd);
  if (worker.wake_fd >= 0) ::close(worker.wake_fd);
  worker.epoll_fd = worker.wake_fd = -1;
}

void SocketServer::serve_loop(Worker& worker) {
  std::array<struct epoll_event, 64> events{};
  while (running_.load(std::memory_order_acquire)) {
    // Same cadence as the introspection server: tight polls while
    // connections are pending keep the deadline sweep responsive.
    const int timeout_ms = worker.connections.empty() ? 500 : 50;
    const int n = ::epoll_wait(worker.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) continue;  // running_ re-checked by the loop
      if (tag >= kListenTagBase &&
          tag < kListenTagBase + worker.listen_fds.size()) {
        accept_ready(worker, tag - kListenTagBase);
        continue;
      }
      auto* conn = reinterpret_cast<Connection*>(tag);
      if (!connection_ready(worker, *conn, events[i].events)) {
        close_connection(worker, *conn);
      }
    }
    sweep_expired(worker);
  }
}

void SocketServer::accept_ready(Worker& worker, std::size_t listener_index) {
  for (;;) {
    const int fd = ::accept4(worker.listen_fds[listener_index], nullptr,
                             nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (worker.connections.size() >= options_.max_connections) {
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->listener = listener_index;
    conn->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.read_timeout_ms);
    struct epoll_event ev {};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = reinterpret_cast<std::uint64_t>(conn.get());
    if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    worker.connections.push_back(std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SocketServer::connection_ready(Worker& worker, Connection& conn,
                                    std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) return false;

  if ((events & EPOLLIN) != 0) {
    std::uint8_t buf[16384];
    bool peer_closed = false;
    for (;;) {  // edge-triggered: drain to EAGAIN
      const ssize_t got = ::read(conn.fd, buf, sizeof(buf));
      if (got > 0) {
        conn.in.insert(conn.in.end(), buf, buf + got);
        bytes_in_.fetch_add(static_cast<std::uint64_t>(got),
                            std::memory_order_relaxed);
        continue;
      }
      if (got == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (!drain_requests(conn)) return false;
    if (peer_closed) {
      // Half-close: answer what was pipelined, then close after the flush.
      if (conn.out_off >= conn.out.size()) return false;
      conn.close_after_flush = true;
    }
  }

  if (!flush_ready(worker, conn)) return false;
  update_interest(worker, conn);
  return true;
}

bool SocketServer::drain_requests(Connection& conn) {
  bool progressed = false;
  while (!conn.close_after_flush) {
    const std::size_t pending = conn.in.size() - conn.in_off;
    const std::size_t head_end =
        find_head_end(conn.in.data(), conn.in_off, conn.in.size());
    if (head_end == std::string::npos) {
      // No terminator yet: an unterminated head past the cap is rejected
      // before any parse, introspection-server style.
      if (pending > options_.max_request_bytes) {
        queue_response(conn,
                       plain_response(431, "Request Header Fields Too Large",
                                      "request too large\n"),
                       /*close_after=*/true);
        r431_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    const std::size_t head_len = head_end + kHeadSepLen - conn.in_off;
    if (head_len > options_.max_request_bytes) {
      queue_response(conn,
                     plain_response(431, "Request Header Fields Too Large",
                                    "request too large\n"),
                     /*close_after=*/true);
      r431_.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    // Parse the head slice alone: HttpRequest::parse treats everything after
    // CRLFCRLF as body, so pipelined requests must be framed here and the
    // body carved out by Content-Length.
    Bytes head_wire(conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off),
                    conn.in.begin() +
                        static_cast<std::ptrdiff_t>(conn.in_off + head_len));
    auto parsed = HttpRequest::parse(head_wire);
    if (!parsed.ok()) {
      queue_response(
          conn,
          plain_response(400, "Bad Request",
                         parsed.error().to_string() + "\n"),
          /*close_after=*/true);
      r400_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    HttpRequest request = std::move(parsed).take();

    std::size_t body_len = 0;
    const std::string declared = request.headers.get("content-length");
    if (!declared.empty() &&
        !parse_content_length(util::trim(declared), &body_len)) {
      queue_response(conn,
                     plain_response(400, "Bad Request",
                                    "bad content-length: " + declared + "\n"),
                     /*close_after=*/true);
      r400_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (head_len + body_len > options_.max_request_bytes) {
      queue_response(conn,
                     plain_response(431, "Request Header Fields Too Large",
                                    "request too large\n"),
                     /*close_after=*/true);
      r431_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (pending < head_len + body_len) break;  // body still arriving

    request.body.assign(
        conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off + head_len),
        conn.in.begin() +
            static_cast<std::ptrdiff_t>(conn.in_off + head_len + body_len));
    conn.in_off += head_len + body_len;
    progressed = true;

    const bool client_close =
        util::to_lower(request.headers.get("connection")) == "close";
    HttpResponse response = listeners_[conn.listener]->handler(request);
    requests_.fetch_add(1, std::memory_order_relaxed);
    queue_response(conn, std::move(response),
                   /*close_after=*/client_close || !options_.keep_alive);
  }

  if (progressed) {
    // The connection made request progress: fresh deadline window, and the
    // consumed prefix is compacted so a long-lived keep-alive connection
    // does not grow its buffer without bound.
    conn.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.read_timeout_ms);
    if (conn.in_off == conn.in.size()) {
      conn.in.clear();
      conn.in_off = 0;
    } else if (conn.in_off > 4096) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
      conn.in_off = 0;
    }
  }
  return true;
}

void SocketServer::queue_response(Connection& conn, HttpResponse response,
                                  bool close_after) {
  if (close_after || conn.close_after_flush) {
    response.headers.set("Connection", "close");
    conn.close_after_flush = true;
  } else {
    response.headers.set("Connection", "keep-alive");
  }
  const Bytes wire = response.serialize();
  util::append(conn.out, wire);
}

bool SocketServer::flush_ready(Worker& worker, Connection& conn) {
  (void)worker;
  while (conn.out_off < conn.out.size()) {
    const ssize_t sent = ::write(conn.fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
    if (sent > 0) {
      conn.out_off += static_cast<std::size_t>(sent);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(sent),
                           std::memory_order_relaxed);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // retry later
    if (errno == EINTR) continue;
    return false;
  }
  if (conn.out_off > 0) {
    conn.out.clear();
    conn.out_off = 0;
  }
  return !conn.close_after_flush;  // fully flushed: close if marked
}

void SocketServer::update_interest(Worker& worker, Connection& conn) {
  const bool want_write = conn.out_off < conn.out.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  struct epoll_event ev {};
  ev.events = EPOLLIN | EPOLLET | (want_write ? EPOLLOUT : 0);
  ev.data.u64 = reinterpret_cast<std::uint64_t>(&conn);
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void SocketServer::close_connection(Worker& worker, Connection& conn) {
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  const auto it = std::find_if(
      worker.connections.begin(), worker.connections.end(),
      [&](const std::unique_ptr<Connection>& c) { return c.get() == &conn; });
  if (it != worker.connections.end()) worker.connections.erase(it);
}

void SocketServer::sweep_expired(Worker& worker) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<Connection*> expired;
  for (const auto& conn : worker.connections) {
    if (now >= conn->deadline) expired.push_back(conn.get());
  }
  for (Connection* conn : expired) {
    if (conn->out_off < conn->out.size()) {
      // Stalled writer: it had its window to drain the response.
      close_connection(worker, *conn);
    } else if (conn->in.size() > conn->in_off) {
      // Mid-request stall (slow loris): answer 408, close after the flush.
      queue_response(*conn,
                     plain_response(408, "Request Timeout", "timed out\n"),
                     /*close_after=*/true);
      r408_.fetch_add(1, std::memory_order_relaxed);
      conn->deadline = now + std::chrono::milliseconds(options_.read_timeout_ms);
      if (!flush_ready(worker, *conn)) {
        close_connection(worker, *conn);
      } else {
        update_interest(worker, *conn);
      }
    } else {
      // Idle keep-alive connection: close silently, nothing owed.
      close_connection(worker, *conn);
    }
  }
}

#else  // !MUSTAPLE_HAVE_EPOLL

util::Status SocketServer::start() {
  return util::Status::failure("serve.unsupported",
                               "epoll server requires Linux");
}
void SocketServer::stop() {}
void SocketServer::serve_loop(Worker&) {}
void SocketServer::accept_ready(Worker&, std::size_t) {}
bool SocketServer::connection_ready(Worker&, Connection&, std::uint32_t) {
  return false;
}
bool SocketServer::drain_requests(Connection&) { return false; }
void SocketServer::queue_response(Connection&, HttpResponse, bool) {}
bool SocketServer::flush_ready(Worker&, Connection&) { return false; }
void SocketServer::update_interest(Worker&, Connection&) {}
void SocketServer::close_connection(Worker&, Connection&) {}
void SocketServer::sweep_expired(Worker&) {}
void SocketServer::close_worker_fds(Worker&) {}

#endif  // MUSTAPLE_HAVE_EPOLL

WireHandler ResponseCache::wrap(WireHandler inner,
                                std::function<std::uint64_t()> epoch) {
  return [this, inner = std::move(inner),
          epoch = std::move(epoch)](const HttpRequest& request) {
    const std::uint64_t now_epoch = epoch ? epoch() : 0;
    std::uint64_t key = util::fnv1a64(request.method);
    key = util::hash_combine(key, util::fnv1a64(request.path));
    key = util::hash_combine(key, util::fnv1a64(request.body));
    key = util::hash_combine(key, now_epoch);
    if (auto hit = cache_.lookup(key)) {
      // Verify full identity, not just the 64-bit key — same collision
      // discipline as the scanner caches.
      if (hit->method == request.method && hit->path == request.path &&
          hit->body == request.body && hit->epoch == now_epoch) {
        return hit->response;
      }
      cache_.note_collision(key);
    }
    HttpResponse response = inner(request);
    Entry entry;
    entry.method = request.method;
    entry.path = request.path;
    entry.body = request.body;
    entry.epoch = now_epoch;
    entry.response = response;
    cache_.insert(key, std::move(entry));
    return response;
  };
}

}  // namespace mustaple::net
