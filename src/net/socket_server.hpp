// Real-socket serving mode: a multi-worker epoll + eventfd event loop that
// binds the repo's HTTP handler objects (OCSP responder, CRL server, web
// server adapters) to actual TCP listeners and speaks the same HTTP/1.1 +
// OCSP wire formats the simulated Network already exercises — the "serve
// real traffic" pillar of the ROADMAP, generalizing the accept/read/write
// machinery proven in obs::IntrospectionServer.
//
// Differences from the introspection server, which stays a single-threaded
// GET-only diagnostics port:
//
//   * N worker threads, each with its OWN epoll set and its OWN listen
//     socket per configured listener (SO_REUSEPORT): the kernel load-
//     balances accepted connections across workers, so there is no shared
//     accept lock and no cross-worker connection handoff.
//   * Edge-triggered (EPOLLET) readiness with drain-to-EAGAIN read/write
//     loops — one epoll wakeup per readiness transition, not per byte.
//   * HTTP/1.1 keep-alive with pipelining: requests are framed by header
//     terminator + Content-Length and answered in arrival order on the
//     same connection; "Connection: close" (or a protocol error) drains
//     and closes.
//   * Multiple named listeners, each with its own handler — one process
//     serves OCSP, CRL, and web traffic on three ports from one pool.
//
// The protections match the introspection server's posture: a
// per-connection read deadline answers stalled requests with 408, and a
// request-size cap answers oversized heads or bodies with 431 before any
// handler runs. Handlers execute on worker threads — they must be
// thread-safe (the OCSP responder and CRL server already are; the web
// server adapter serializes internally).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/http.hpp"
#include "util/result.hpp"
#include "util/sharded_cache.hpp"

namespace mustaple::net {

/// A request-to-response function bound to one listener. Runs on worker
/// threads: must be thread-safe and must not block indefinitely.
using WireHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Monotone serving counters, aggregated across workers. hits the same
/// conservation discipline as the scanner caches: every accepted connection
/// is eventually counted closed, and every framed request is answered.
struct SocketServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over per-worker capacity
  std::uint64_t connections_closed = 0;
  std::uint64_t requests = 0;          ///< fully framed, handler answered
  std::uint64_t responses_400 = 0;     ///< parse / framing errors
  std::uint64_t responses_408 = 0;     ///< read-deadline sweeps
  std::uint64_t responses_431 = 0;     ///< size-cap rejections
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class SocketServer {
 public:
  struct Options {
    /// Loopback by default; widening this is an explicit operator decision.
    std::string bind_address = "127.0.0.1";
    /// 0 picks min(4, hardware_concurrency). Each worker owns one epoll set
    /// and one SO_REUSEPORT listen socket per listener.
    std::size_t worker_threads = 0;
    /// Accepted connections beyond this PER WORKER are closed immediately.
    std::size_t max_connections = 1024;
    /// A request whose head + declared body exceeds this is answered 431.
    std::size_t max_request_bytes = 256 * 1024;
    /// A connection that has made no request progress within this window is
    /// answered 408 (mid-request) or silently closed (idle keep-alive).
    std::uint64_t read_timeout_ms = 5000;
    /// Answer "Connection: keep-alive" and serve pipelined requests; when
    /// false every response closes, introspection-server style.
    bool keep_alive = true;
    int listen_backlog = 511;
  };

  SocketServer();  ///< default Options
  explicit SocketServer(Options options);
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  /// Registers a listener before start(). `port` 0 asks the kernel for an
  /// ephemeral port (read it back via port()). Returns the listener index.
  std::size_t add_listener(std::string name, std::uint16_t port,
                           WireHandler handler);

  /// Binds every listener on every worker and spawns the worker threads.
  /// Fails with a stable code ("serve.bind", "serve.epoll", ...) rather
  /// than throwing; on failure no threads are left running.
  util::Status start();
  /// Stops all workers and closes every socket (idempotent).
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actually-bound port of listener `index` (0 before start).
  std::uint16_t port(std::size_t index) const;
  /// By name; 0 when unknown.
  std::uint16_t port(const std::string& name) const;
  std::size_t listener_count() const { return listeners_.size(); }
  std::size_t worker_count() const { return workers_.size(); }

  SocketServerStats stats() const;

 private:
  struct Listener {
    std::string name;
    std::uint16_t requested_port = 0;
    WireHandler handler;
    std::atomic<std::uint16_t> bound_port{0};
  };
  struct Connection;
  struct Worker;

  void serve_loop(Worker& worker);
  void accept_ready(Worker& worker, std::size_t listener_index);
  /// Returns false when the connection should be dropped immediately.
  bool connection_ready(Worker& worker, Connection& conn,
                        std::uint32_t events);
  /// Frames and answers every complete pipelined request in conn.in.
  /// Returns false on a fatal framing state (drop without response).
  bool drain_requests(Connection& conn);
  void queue_response(Connection& conn, HttpResponse response,
                      bool close_after);
  /// Flushes conn.out; returns false when the connection must close now.
  bool flush_ready(Worker& worker, Connection& conn);
  void update_interest(Worker& worker, Connection& conn);
  void close_connection(Worker& worker, Connection& conn);
  void sweep_expired(Worker& worker);
  void close_worker_fds(Worker& worker);

  Options options_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};

  // Monotone, relaxed: aggregated into SocketServerStats on demand.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> r400_{0};
  std::atomic<std::uint64_t> r408_{0};
  std::atomic<std::uint64_t> r431_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

/// Lock-striped wire-level response cache for deterministic handlers: maps
/// (method, path, body) — plus an optional caller-supplied epoch, e.g. the
/// responder's pre-generation cycle — to the complete HttpResponse, skipping
/// percent/base64/DER decode and the responder's cache mutex on repeat
/// requests. Hits are verified against the stored request (full compare,
/// not just the 64-bit key), mirroring the scanner caches' collision
/// discipline; a mismatch recomputes and counts via note_collision.
///
/// Only sound in front of handlers that are pure functions of
/// (request, epoch) — the pre-generated OCSP responder and the CRL server
/// qualify; an on-demand responder echoing nonces does not.
class ResponseCache {
 public:
  /// `shards` is rounded up to a power of two; `capacity` bounds total
  /// cached entries (clear-on-limit per shard).
  ResponseCache(std::size_t shards, std::size_t capacity)
      : cache_(shards, capacity) {}

  /// Wraps `inner`; `epoch` (optional) is folded into every key so advancing
  /// it invalidates the whole cache without clearing.
  WireHandler wrap(WireHandler inner,
                   std::function<std::uint64_t()> epoch = nullptr);

  util::ShardedCacheStats stats() const { return cache_.totals(); }

 private:
  struct Entry {
    std::string method;
    std::string path;
    util::Bytes body;
    std::uint64_t epoch = 0;
    HttpResponse response;
  };
  util::ShardedCache<Entry> cache_;
};

}  // namespace mustaple::net
