#include "net/url.hpp"

#include "util/strings.hpp"

namespace mustaple::net {

std::string Url::to_string() const {
  std::string out = scheme + "://" + host;
  const bool default_port =
      (scheme == "http" && port == 80) || (scheme == "https" && port == 443);
  if (!default_port) out += ":" + std::to_string(port);
  out += path;
  return out;
}

util::Result<Url> parse_url(const std::string& text) {
  using R = util::Result<Url>;
  Url url;
  std::string rest;
  if (util::starts_with(text, "http://")) {
    url.scheme = "http";
    url.port = 80;
    rest = text.substr(7);
  } else if (util::starts_with(text, "https://")) {
    url.scheme = "https";
    url.port = 443;
    rest = text.substr(8);
  } else {
    return R::failure("url.unsupported_scheme", text);
  }
  const std::size_t slash = rest.find('/');
  std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
  url.path = slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = authority.find(':');
  if (colon != std::string::npos) {
    url.host = authority.substr(0, colon);
    const std::string port_text = authority.substr(colon + 1);
    if (port_text.empty()) return R::failure("url.empty_port", text);
    std::uint32_t port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') return R::failure("url.bad_port", text);
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
      if (port > 65535) return R::failure("url.bad_port", text);
    }
    // Port 0 is a kernel "pick one" sentinel, never a routable destination:
    // "http://host:0" is as unusable as "http://host:99999".
    if (port == 0) return R::failure("url.bad_port", text);
    url.port = static_cast<std::uint16_t>(port);
  } else {
    url.host = authority;
  }
  if (url.host.empty()) return R::failure("url.empty_host", text);
  url.host = util::to_lower(url.host);
  return url;
}

}  // namespace mustaple::net
