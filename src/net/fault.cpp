#include "net/fault.hpp"

namespace mustaple::net {

const char* to_string(FaultMode mode) {
  switch (mode) {
    case FaultMode::kDnsNxDomain:
      return "dns-nxdomain";
    case FaultMode::kTcpConnectFailure:
      return "tcp-connect-failure";
    case FaultMode::kHttp404:
      return "http-404";
    case FaultMode::kHttp500:
      return "http-500";
    case FaultMode::kHttp503:
      return "http-503";
    case FaultMode::kTlsCertInvalid:
      return "tls-cert-invalid";
  }
  return "?";
}

bool FaultRule::applies(const std::string& host, Region from,
                        util::SimTime now) const {
  if (host != canonical_host) return false;
  if (!regions.empty() && regions.count(from) == 0) return false;
  if (window_start && now < *window_start) return false;
  if (window_end && now >= *window_end) return false;
  return true;
}

void FaultPlan::add(FaultRule rule) { rules_.push_back(std::move(rule)); }

std::optional<FaultMode> FaultPlan::check(const std::string& canonical_host,
                                          Region from,
                                          util::SimTime now) const {
  for (const auto& rule : rules_) {
    if (rule.applies(canonical_host, from, now)) return rule.mode;
  }
  return std::nullopt;
}

}  // namespace mustaple::net
