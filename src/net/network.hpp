// The simulated internet: DNS + fault plan + latency model + registered HTTP
// services (OCSP responders, CRL servers, web servers). A request from a
// vantage point either fails in one of the §5.2 ways or reaches the service
// handler and returns its HTTP response, with a region-dependent latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "net/dns.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/http.hpp"
#include "net/url.hpp"
#include "net/vantage.hpp"
#include "util/hash.hpp"
#include "util/sim_time.hpp"

namespace mustaple::net {

/// Transport-level failure classification for one fetch. HTTP-level errors
/// (4xx/5xx) are NOT transport failures — the response comes back and the
/// caller inspects the status code, as the paper's client does.
enum class TransportError : std::uint8_t {
  kNone = 0,
  kDnsFailure,
  kTcpFailure,
  kTlsCertInvalid,
};

const char* to_string(TransportError error);

/// Inverse of to_string; nullopt for unknown text.
std::optional<TransportError> transport_error_from_string(
    std::string_view text);

/// §5.2 failure-taxonomy metric label for one fetch outcome: "dns", "tcp",
/// "tls", "http" (reached but status >= 400), or nullptr for a clean fetch.
const char* error_kind_label(TransportError error, int status_code);

struct FetchResult {
  TransportError error = TransportError::kNone;
  HttpResponse response;  ///< valid only when error == kNone
  double latency_ms = 0.0;

  /// The paper's "successful request": transport worked AND HTTP 200.
  bool success() const {
    return error == TransportError::kNone && response.status_code == 200;
  }
};

/// An HTTP service bound to host:port. Receives the request, the simulated
/// time, and the caller's region (responders can be region-sensitive).
using HttpHandler = std::function<HttpResponse(
    const HttpRequest&, util::SimTime now, Region from)>;

/// Counter-based latency sample: a pure function of its key, so concurrent
/// probes draw identical jitter no matter which thread or order executes
/// them — the foundation of the scanner's thread-count-independent output.
/// `ordinal` disambiguates multiple fetches to the same host at the same
/// simulated time from the same region.
double sample_probe_latency_ms(std::uint64_t latency_seed, Region from,
                               Region host_region, util::SimTime when,
                               std::uint64_t ordinal);

class Network {
 public:
  Network(EventLoop& loop, std::uint64_t seed)
      : loop_(&loop),
        latency_seed_(
            util::hash_combine(util::mix64(seed), util::fnv1a64("net.latency"))) {}

  DnsZone& dns() { return dns_; }
  const DnsZone& dns() const { return dns_; }
  FaultPlan& faults() { return faults_; }

  /// Hosting region per canonical host (affects latency); defaults to
  /// Virginia when unset.
  void set_host_region(const std::string& canonical_host, Region region);

  void register_service(const std::string& host, std::uint16_t port,
                        HttpHandler handler);
  bool has_service(const std::string& host, std::uint16_t port) const;

  /// Performs one synchronous HTTP exchange at the loop's current time.
  FetchResult http_request(Region from, const Url& url, HttpRequest request);

  /// Convenience: POST `body` to `url` with the given content type.
  FetchResult http_post(Region from, const Url& url, util::Bytes body,
                        const std::string& content_type);
  FetchResult http_get(Region from, const Url& url);

  /// The scanner's parallel fan-out entry point: the same exchange as
  /// http_request, but (a) const — no Network state is touched, so
  /// concurrent calls are sound as long as the registered handlers are
  /// thread-safe — and (b) observability-free: no registry, trace, or log
  /// writes happen here. The caller passes a deterministic `probe_ordinal`
  /// for the latency sample and replays record_fetch() afterwards, in
  /// canonical probe order, so metric/trace output stays bit-identical
  /// across thread counts.
  FetchResult http_request_probe(Region from, const Url& url,
                                 HttpRequest request,
                                 std::uint64_t probe_ordinal) const;

  /// Emits the observability side effects of one fetch (counters, latency
  /// histogram, error counters, net trace span, debug log) against the
  /// loop's current time. http_request calls this inline; deferred-probe
  /// callers replay it at the step barrier.
  void record_fetch(Region from, const Url& url, const FetchResult& result);

  util::SimTime now() const { return loop_->now(); }
  EventLoop& loop() { return *loop_; }

 private:
  double sample_latency_ms(Region from, const std::string& host,
                           std::uint64_t ordinal) const;
  FetchResult http_request_impl(Region from, const Url& url,
                                HttpRequest request,
                                std::uint64_t ordinal) const;

  EventLoop* loop_;
  std::uint64_t latency_seed_;
  /// Ordinal dispenser for non-probe fetches (browser checks, staple
  /// refreshes, audits). Those all run on the coordinating thread, so a
  /// plain counter keeps them deterministic; parallel scanner probes pass
  /// explicit ordinals instead and never touch it.
  std::uint64_t fetch_sequence_ = 0;
  DnsZone dns_;
  FaultPlan faults_;
  std::map<std::string, Region> host_regions_;
  std::map<std::string, HttpHandler> services_;  ///< key "host:port"
};

}  // namespace mustaple::net
