#include "net/http.hpp"

#include <limits>

#include "util/strings.hpp"

namespace mustaple::net {

namespace {

using util::Bytes;
using util::Result;

// Splits the head (start line + headers) from the body at CRLFCRLF.
Result<std::pair<std::string, Bytes>> split_head(const Bytes& wire) {
  using R = Result<std::pair<std::string, Bytes>>;
  static const std::string kSep = "\r\n\r\n";
  const std::string text(wire.begin(), wire.end());
  const std::size_t pos = text.find(kSep);
  if (pos == std::string::npos) {
    return R::failure("http.no_header_terminator");
  }
  Bytes body(wire.begin() + static_cast<std::ptrdiff_t>(pos + kSep.size()),
             wire.end());
  return std::make_pair(text.substr(0, pos), std::move(body));
}

util::Status parse_headers(const std::vector<std::string>& lines,
                           std::size_t first, HeaderMap& out) {
  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return util::Status::failure("http.bad_header", line);
    }
    const std::string name = util::trim(line.substr(0, colon));
    const std::string value = util::trim(line.substr(colon + 1));
    // Duplicate Content-Length headers with CONFLICTING values are the
    // request-smuggling primitive (RFC 9112 §6.3): two length framings for
    // one message body. Reject them; repeats of the identical value are
    // tolerated (seen from naive proxies). Other duplicate headers keep the
    // historical last-wins behaviour.
    if (util::to_lower(name) == "content-length" &&
        out.contains("content-length") &&
        out.get("content-length") != value) {
      return util::Status::failure("http.duplicate_content_length",
                                   out.get("content-length") + " vs " + value);
    }
    out.set(name, value);
  }
  return util::Status::success();
}

}  // namespace

void HeaderMap::set(const std::string& name, const std::string& value) {
  headers_[util::to_lower(name)] = value;
}

std::string HeaderMap::get(const std::string& name) const {
  const auto it = headers_.find(util::to_lower(name));
  return it == headers_.end() ? std::string() : it->second;
}

bool HeaderMap::contains(const std::string& name) const {
  return headers_.count(util::to_lower(name)) > 0;
}

const char* default_reason(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 301:
      return "Moved Permanently";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

util::Bytes HttpRequest::serialize() const {
  std::string head = method + " " + path + " HTTP/1.1\r\n";
  for (const auto& [name, value] : headers.entries()) {
    head += name + ": " + value + "\r\n";
  }
  if (!headers.contains("content-length")) {
    head += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  head += "\r\n";
  Bytes out = util::bytes_of(head);
  util::append(out, body);
  return out;
}

util::Result<HttpRequest> HttpRequest::parse(const util::Bytes& wire) {
  using R = Result<HttpRequest>;
  auto head = split_head(wire);
  if (!head.ok()) return R::failure(head.error().code, head.error().detail);
  const auto lines = util::split(head.value().first, '\n');
  if (lines.empty()) return R::failure("http.empty_head");
  const auto parts = util::split(util::trim(lines[0]), ' ');
  if (parts.size() != 3) return R::failure("http.bad_request_line", lines[0]);
  HttpRequest req;
  req.method = parts[0];
  req.path = parts[1];
  if (!util::starts_with(parts[2], "HTTP/1.")) {
    return R::failure("http.bad_version", parts[2]);
  }
  std::vector<std::string> trimmed;
  trimmed.reserve(lines.size());
  for (const auto& l : lines) trimmed.push_back(util::trim(l));
  auto status = parse_headers(trimmed, 1, req.headers);
  if (!status.ok()) return R::failure(status.error().code, status.error().detail);
  req.body = head.value().second;
  return req;
}

util::Bytes HttpResponse::serialize() const {
  std::string head =
      "HTTP/1.1 " + std::to_string(status_code) + " " + reason + "\r\n";
  for (const auto& [name, value] : headers.entries()) {
    head += name + ": " + value + "\r\n";
  }
  if (!headers.contains("content-length")) {
    head += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  head += "\r\n";
  Bytes out = util::bytes_of(head);
  util::append(out, body);
  return out;
}

util::Result<HttpResponse> HttpResponse::parse(const util::Bytes& wire) {
  using R = Result<HttpResponse>;
  auto head = split_head(wire);
  if (!head.ok()) return R::failure(head.error().code, head.error().detail);
  const auto lines = util::split(head.value().first, '\n');
  if (lines.empty()) return R::failure("http.empty_head");
  const std::string status_line = util::trim(lines[0]);
  if (!util::starts_with(status_line, "HTTP/1.")) {
    return R::failure("http.bad_version", status_line);
  }
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) return R::failure("http.bad_status_line");
  const std::size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string code_text =
      status_line.substr(sp1 + 1, sp2 == std::string::npos
                                      ? std::string::npos
                                      : sp2 - sp1 - 1);
  // An empty or oversized code token must be rejected, not folded to status
  // 0 — "HTTP/1.1  OK" used to parse as status 0, which success() treated
  // as a non-HTTP-error transport result.
  if (code_text.empty() || code_text.size() > 3) {
    return R::failure("http.bad_status_code", code_text);
  }
  HttpResponse resp;
  resp.status_code = 0;
  for (char c : code_text) {
    if (c < '0' || c > '9') return R::failure("http.bad_status_code", code_text);
    resp.status_code = resp.status_code * 10 + (c - '0');
  }
  resp.reason = sp2 == std::string::npos ? "" : status_line.substr(sp2 + 1);
  std::vector<std::string> trimmed;
  trimmed.reserve(lines.size());
  for (const auto& l : lines) trimmed.push_back(util::trim(l));
  auto status = parse_headers(trimmed, 1, resp.headers);
  if (!status.ok()) return R::failure(status.error().code, status.error().detail);
  resp.body = head.value().second;
  if (resp.headers.contains("content-length")) {
    const std::string declared = util::trim(resp.headers.get("content-length"));
    std::size_t length = 0;
    if (declared.empty()) return R::failure("http.bad_content_length", declared);
    for (char c : declared) {
      if (c < '0' || c > '9') {
        return R::failure("http.bad_content_length", declared);
      }
      if (length > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
        return R::failure("http.bad_content_length", declared);
      }
      length = length * 10 + static_cast<std::size_t>(c - '0');
    }
    if (length != resp.body.size()) {
      return R::failure("http.content_length_mismatch",
                        declared + " vs " + std::to_string(resp.body.size()));
    }
  }
  return resp;
}

HttpResponse HttpResponse::make(int status, std::string reason,
                                util::Bytes body,
                                const std::string& content_type) {
  HttpResponse resp;
  resp.status_code = status;
  resp.reason = std::move(reason);
  resp.body = std::move(body);
  if (!content_type.empty()) resp.headers.set("content-type", content_type);
  return resp;
}

}  // namespace mustaple::net
