// The six measurement vantage points of paper §5.1 and a simple geographic
// latency model between them and responder hosting regions.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace mustaple::net {

/// Matches the paper's AWS regions exactly.
enum class Region : std::uint8_t {
  kOregon = 0,
  kVirginia,
  kSaoPaulo,
  kParis,
  kSydney,
  kSeoul,
};

constexpr std::size_t kRegionCount = 6;

constexpr std::array<Region, kRegionCount> all_regions() {
  return {Region::kOregon,  Region::kVirginia, Region::kSaoPaulo,
          Region::kParis,   Region::kSydney,   Region::kSeoul};
}

const char* to_string(Region region);

/// Baseline round-trip time between two regions, in milliseconds. Derived
/// from public inter-region RTT tables (rounded); only the ordering matters
/// for the study's latency-shaped results.
double base_rtt_ms(Region from, Region to);

}  // namespace mustaple::net
