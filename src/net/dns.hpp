// Simulated DNS. Supports CNAME chains (the paper found eight Comodo OCSP
// responders whose outage was shared because their names CNAME'd to
// ocsp.comodoca.com) and address records shared across names (six more
// resolved to the same IP).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/result.hpp"

namespace mustaple::net {

/// A simulated IPv4-ish address.
using Address = std::uint32_t;

enum class DnsError {
  kNxDomain,
  kCnameLoop,
};

class DnsZone {
 public:
  void add_a(const std::string& name, Address address);
  void add_cname(const std::string& name, const std::string& target);
  bool has_name(const std::string& name) const;
  /// Whether any A record already maps to `address` (used by the network's
  /// auto-assignment to probe past collisions).
  bool has_address(Address address) const;

  /// Follows CNAMEs (max 8 hops) to an address.
  util::Result<Address> resolve(const std::string& name) const;

  /// The canonical (post-CNAME) name, used by the fault engine so an outage
  /// of the canonical host takes down every alias — the Comodo pattern.
  std::string canonical_name(const std::string& name) const;

 private:
  std::map<std::string, Address> a_records_;
  std::map<std::string, std::string> cnames_;
};

}  // namespace mustaple::net
