#include "net/dns.hpp"

#include "util/strings.hpp"

namespace mustaple::net {

void DnsZone::add_a(const std::string& name, Address address) {
  a_records_[util::to_lower(name)] = address;
}

void DnsZone::add_cname(const std::string& name, const std::string& target) {
  cnames_[util::to_lower(name)] = util::to_lower(target);
}

bool DnsZone::has_name(const std::string& name) const {
  const std::string key = util::to_lower(name);
  return a_records_.count(key) > 0 || cnames_.count(key) > 0;
}

bool DnsZone::has_address(Address address) const {
  for (const auto& [name, assigned] : a_records_) {
    if (assigned == address) return true;
  }
  return false;
}

util::Result<Address> DnsZone::resolve(const std::string& name) const {
  using R = util::Result<Address>;
  std::string current = util::to_lower(name);
  for (int hop = 0; hop < 8; ++hop) {
    const auto a = a_records_.find(current);
    if (a != a_records_.end()) return a->second;
    const auto cname = cnames_.find(current);
    if (cname == cnames_.end()) return R::failure("dns.nxdomain", current);
    current = cname->second;
  }
  return R::failure("dns.cname_loop", name);
}

std::string DnsZone::canonical_name(const std::string& name) const {
  std::string current = util::to_lower(name);
  for (int hop = 0; hop < 8; ++hop) {
    const auto cname = cnames_.find(current);
    if (cname == cnames_.end()) return current;
    current = cname->second;
  }
  return current;
}

}  // namespace mustaple::net
