// Browser behaviour models for the paper's §6 client experiment (Table 2).
// Each profile encodes three observable behaviours:
//   1. does the browser solicit a staple (Certificate Status Request)?
//   2. does it respect OCSP Must-Staple (hard-fail without a valid staple)?
//   3. failing that, does it fall back to its own OCSP request?
// The paper's measured answer for the 2018 browser matrix: (1) all yes,
// (2) only Firefox on desktop + Android, (3) nobody.
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "tls/handshake.hpp"
#include "x509/verify.hpp"

namespace mustaple::browser {

struct BrowserProfile {
  std::string name;  ///< e.g. "Firefox 60"
  std::string os;    ///< e.g. "Linux"
  bool mobile = false;
  /// Table 2 row 1: adds the Certificate Status Request extension.
  bool sends_status_request = true;
  /// Table 2 row 2: hard-fails a Must-Staple certificate without a valid
  /// staple.
  bool respects_must_staple = false;
  /// Table 2 row 3: falls back to its own OCSP request when no staple
  /// arrives (no 2018 browser did).
  bool sends_own_ocsp = false;
  /// RFC 6961 status_request_v2: solicit staples for the whole chain (no
  /// 2018 browser did — §2.3's "yet to see wide adoption"); used by the
  /// what-if analyses.
  bool requests_multi_staple = false;
  /// Falls back to downloading the CRL when OCSP yields nothing (the
  /// heavyweight legacy path of §2.2 — "up to 76 MB").
  bool checks_crl = false;

  std::string display_name() const { return name + " (" + os + ")"; }
};

/// The 16 browser/OS combinations of Table 2.
const std::vector<BrowserProfile>& standard_profiles();

/// What the browser decided about a page visit.
enum class Verdict : std::uint8_t {
  /// TLS up, chain valid, fresh revocation info says Good.
  kAccept,
  /// TLS up, chain valid, but NO usable revocation information — the
  /// "soft-failure" the paper warns about (§2.3).
  kAcceptSoftFail,
  /// Must-Staple certificate without a valid staple, browser respects the
  /// extension: certificate error page.
  kHardFail,
  /// Revocation info said Revoked.
  kRejectRevoked,
  /// Chain validation failed (expired, bad signature, untrusted...).
  kCertificateInvalid,
  /// No TLS endpoint / handshake failed.
  kConnectionFailed,
};

const char* to_string(Verdict verdict);

struct VisitResult {
  Verdict verdict = Verdict::kConnectionFailed;
  bool sent_status_request = false;
  bool received_staple = false;
  bool staple_valid = false;
  bool sent_own_ocsp_request = false;
  bool downloaded_crl = false;
  double handshake_delay_ms = 0.0;
  x509::ChainError chain_error = x509::ChainError::kOk;
};

/// Drives one TLS visit with a given profile. `network`/`from` are used
/// only for the own-OCSP fallback (none of the standard 2018 profiles use
/// it, but the "future browser" ablation does).
VisitResult visit(const BrowserProfile& profile,
                  const tls::TlsDirectory& directory,
                  const std::string& domain, const x509::RootStore& roots,
                  util::SimTime now, net::Network* network = nullptr,
                  net::Region from = net::Region::kVirginia);

}  // namespace mustaple::browser
