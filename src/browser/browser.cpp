#include "browser/browser.hpp"

#include "crl/crl.hpp"
#include "ocsp/request.hpp"

namespace mustaple::browser {

const std::vector<BrowserProfile>& standard_profiles() {
  // Table 2, verbatim. Only Firefox on the three desktop OSes and on
  // Android respects Must-Staple; Firefox on iOS (WebKit shell) does not.
  static const std::vector<BrowserProfile> profiles = [] {
    std::vector<BrowserProfile> p;
    auto add = [&p](std::string name, std::string os, bool mobile,
                    bool respects) {
      BrowserProfile profile;
      profile.name = std::move(name);
      profile.os = std::move(os);
      profile.mobile = mobile;
      profile.sends_status_request = true;  // all 2018 browsers do
      profile.respects_must_staple = respects;
      profile.sends_own_ocsp = false;  // none do
      p.push_back(std::move(profile));
    };
    add("Chrome 66", "OS X", false, false);
    add("Chrome 66", "Linux", false, false);
    add("Chrome 66", "Windows", false, false);
    add("Firefox 60", "OS X", false, true);
    add("Firefox 60", "Linux", false, true);
    add("Firefox 60", "Windows", false, true);
    add("Opera", "OS X", false, false);
    add("Opera", "Windows", false, false);
    add("Safari 11", "OS X", false, false);
    add("IE 11", "Windows", false, false);
    add("Edge 42", "Windows", false, false);
    add("Safari", "iOS", true, false);
    add("Chrome", "iOS", true, false);
    add("Chrome", "Android", true, false);
    add("Firefox", "iOS", true, false);   // the paper's incomplete-support case
    add("Firefox", "Android", true, true);
    return p;
  }();
  return profiles;
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccept:
      return "accept";
    case Verdict::kAcceptSoftFail:
      return "accept-soft-fail";
    case Verdict::kHardFail:
      return "hard-fail";
    case Verdict::kRejectRevoked:
      return "reject-revoked";
    case Verdict::kCertificateInvalid:
      return "certificate-invalid";
    case Verdict::kConnectionFailed:
      return "connection-failed";
  }
  return "?";
}

namespace {

/// Own-OCSP fallback: query the leaf's responder directly, as a
/// hypothetical diligent client would.
bool fetch_own_ocsp(const tls::HandshakeObservation& obs,
                    const tls::ServerHello& server, net::Network& network,
                    net::Region from, util::SimTime now,
                    ocsp::VerifiedResponse& out) {
  if (obs.leaf == nullptr || obs.leaf->extensions().ocsp_urls.empty()) {
    return false;
  }
  auto url = net::parse_url(obs.leaf->extensions().ocsp_urls.front());
  if (!url.ok()) return false;
  const x509::Certificate& issuer =
      server.chain.size() > 1 ? server.chain[1] : server.chain[0];
  const auto id = ocsp::CertId::for_certificate(*obs.leaf, issuer);
  const auto request = ocsp::OcspRequest::single(id);
  net::FetchResult result = network.http_post(
      from, url.value(), request.encode_der(), "application/ocsp-request");
  if (result.error != net::TransportError::kNone ||
      result.response.status_code != 200) {
    return false;
  }
  out = ocsp::verify_ocsp_response(result.response.body, id,
                                   issuer.public_key(), now);
  return true;
}

}  // namespace

VisitResult visit(const BrowserProfile& profile,
                  const tls::TlsDirectory& directory,
                  const std::string& domain, const x509::RootStore& roots,
                  util::SimTime now, net::Network* network,
                  net::Region from) {
  VisitResult result;
  result.sent_status_request = profile.sends_status_request;

  tls::ClientHello hello;
  hello.server_name = domain;
  hello.status_request = profile.sends_status_request;
  hello.status_request_v2 = profile.requests_multi_staple;

  tls::ServerHello server;
  const tls::HandshakeObservation obs =
      tls::observe_handshake(directory, hello, roots, now, server);
  result.handshake_delay_ms = obs.handshake_delay_ms;
  if (!obs.connected) {
    result.verdict = Verdict::kConnectionFailed;
    return result;
  }
  result.chain_error = obs.chain_error;
  if (!obs.certificate_valid) {
    result.verdict = Verdict::kCertificateInvalid;
    return result;
  }

  result.received_staple = obs.staple_present;
  if (obs.staple_check) result.staple_valid = obs.staple_check->usable();

  // RFC 6961 multi-staple path: the whole chain's statuses at once. Any
  // validated Revoked anywhere in the chain is fatal; a fully-Good set of
  // staples settles the visit.
  if (profile.requests_multi_staple && !obs.staple_chain_checks.empty()) {
    bool all_usable_good = true;
    for (const auto& check : obs.staple_chain_checks) {
      if (check.usable() && check.status == ocsp::CertStatus::kRevoked) {
        result.verdict = Verdict::kRejectRevoked;
        return result;
      }
      if (!check.usable() || check.status != ocsp::CertStatus::kGood) {
        all_usable_good = false;
      }
    }
    if (all_usable_good) {
      result.received_staple = true;
      result.staple_valid = true;
      result.verdict = Verdict::kAccept;
      return result;
    }
  }

  // A valid staple settles the question for everyone who asked for it.
  if (obs.staple_check && obs.staple_check->usable()) {
    if (obs.staple_check->status == ocsp::CertStatus::kRevoked) {
      result.verdict = Verdict::kRejectRevoked;
    } else {
      result.verdict = Verdict::kAccept;
    }
    return result;
  }

  // No staple, or an unusable one.
  if (obs.must_staple && profile.respects_must_staple) {
    result.verdict = Verdict::kHardFail;
    return result;
  }

  if (profile.sends_own_ocsp && network != nullptr) {
    ocsp::VerifiedResponse own;
    if (fetch_own_ocsp(obs, server, *network, from, now, own)) {
      result.sent_own_ocsp_request = true;
      if (own.usable()) {
        result.verdict = own.status == ocsp::CertStatus::kRevoked
                             ? Verdict::kRejectRevoked
                             : Verdict::kAccept;
        return result;
      }
    }
  }

  // CRL fallback — the legacy path of §2.2: download the full list, look up
  // the serial. Only a fresh CRL counts.
  if (profile.checks_crl && network != nullptr && obs.leaf != nullptr &&
      !obs.leaf->extensions().crl_urls.empty()) {
    auto url = net::parse_url(obs.leaf->extensions().crl_urls.front());
    if (url.ok()) {
      net::FetchResult fetched = network->http_get(from, url.value());
      if (fetched.success()) {
        auto parsed = crl::Crl::parse(fetched.response.body);
        if (parsed.ok() && parsed.value().is_fresh_at(now) &&
            parsed.value().verify_signature(
                (server.chain.size() > 1 ? server.chain[1] : server.chain[0])
                    .public_key())) {
          result.downloaded_crl = true;
          result.verdict = parsed.value().is_revoked(obs.leaf->serial())
                               ? Verdict::kRejectRevoked
                               : Verdict::kAccept;
          return result;
        }
      }
    }
  }

  // The 2018 status quo: accept with no revocation information at all.
  result.verdict = Verdict::kAcceptSoftFail;
  return result;
}

}  // namespace mustaple::browser
