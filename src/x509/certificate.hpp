// X.509 v3 certificates: structure, extensions, DER encode/parse, and a
// builder used by the CA simulation. The extension set covers exactly what
// the paper measures: AIA (OCSP responder URL — §4/§5), CRL Distribution
// Points (§5.4 consistency), OCSP Must-Staple / TLS Feature (the headline
// extension), plus SAN and BasicConstraints for realistic chains.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/der.hpp"
#include "crypto/signer.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sim_time.hpp"
#include "x509/name.hpp"

namespace mustaple::x509 {

/// Certificate validity window; inclusive bounds per RFC 5280.
struct Validity {
  util::SimTime not_before;
  util::SimTime not_after;

  bool contains(util::SimTime t) const {
    return not_before <= t && t <= not_after;
  }
  util::Duration length() const { return not_after - not_before; }
};

/// The decoded extension set (absent extensions are empty/nullopt).
struct Extensions {
  /// AIA id-ad-ocsp URLs. Multiple entries model the paper's 0.008% of
  /// certificates with several responders (§5.1 step 2).
  std::vector<std::string> ocsp_urls;
  /// AIA id-ad-caIssuers URL.
  std::optional<std::string> ca_issuers_url;
  /// CRL Distribution Point URLs.
  std::vector<std::string> crl_urls;
  /// OCSP Must-Staple: TLS Feature extension containing status_request (5).
  bool must_staple = false;
  /// TLS Feature extension content: every feature id present, in encoded
  /// order. nullopt = extension absent; an empty list models the RFC
  /// 7633-violating empty SEQUENCE. `must_staple` stays the derived
  /// convenience flag (list contains 5).
  std::optional<std::vector<std::int64_t>> tls_features;
  /// Subject Alternative Names (dNSName entries).
  std::vector<std::string> san_dns;
  /// BasicConstraints: present on CA certificates.
  std::optional<bool> is_ca;

  bool supports_ocsp() const { return !ocsp_urls.empty(); }
  bool supports_crl() const { return !crl_urls.empty(); }
};

/// An X.509 certificate. Immutable once built/parsed; the raw TBS bytes are
/// retained so signatures verify over exactly what was signed.
class Certificate {
 public:
  Certificate() = default;

  const util::Bytes& serial() const { return serial_; }
  const DistinguishedName& subject() const { return subject_; }
  const DistinguishedName& issuer() const { return issuer_; }
  const Validity& validity() const { return validity_; }
  const crypto::PublicKey& public_key() const { return public_key_; }
  const Extensions& extensions() const { return extensions_; }
  const util::Bytes& signature() const { return signature_; }
  const util::Bytes& tbs_der() const { return tbs_der_; }
  crypto::SignatureAlgorithm signature_algorithm() const { return sig_alg_; }

  bool is_self_signed() const { return subject_ == issuer_; }
  bool is_expired_at(util::SimTime t) const { return t > validity_.not_after; }

  /// Serial as lowercase hex — the map key used throughout the study.
  std::string serial_hex() const { return util::to_hex(serial_); }

  /// SHA-256 over the full DER encoding.
  util::Bytes fingerprint() const;

  /// Verifies this certificate's signature against an issuer key.
  bool verify_signature(const crypto::PublicKey& issuer_key) const;

  /// Full DER: SEQUENCE { tbs, algorithm, BIT STRING signature }.
  util::Bytes encode_der() const;

  /// Parses DER; classifies malformed input via Result (never throws).
  static util::Result<Certificate> parse(const util::Bytes& der);

  friend class CertificateBuilder;

 private:
  util::Bytes serial_;
  DistinguishedName subject_;
  DistinguishedName issuer_;
  Validity validity_{};
  crypto::PublicKey public_key_;
  Extensions extensions_;
  util::Bytes tbs_der_;
  util::Bytes signature_;
  crypto::SignatureAlgorithm sig_alg_ = crypto::SignatureAlgorithm::kSimHashSig;
};

/// Fluent builder: fill fields, then sign with the issuer's key.
class CertificateBuilder {
 public:
  CertificateBuilder& serial(util::Bytes serial);
  CertificateBuilder& serial_number(std::uint64_t serial);
  CertificateBuilder& subject(DistinguishedName name);
  CertificateBuilder& issuer(DistinguishedName name);
  CertificateBuilder& validity(util::SimTime not_before, util::SimTime not_after);
  CertificateBuilder& public_key(crypto::PublicKey key);
  CertificateBuilder& add_ocsp_url(std::string url);
  CertificateBuilder& ca_issuers_url(std::string url);
  CertificateBuilder& add_crl_url(std::string url);
  CertificateBuilder& must_staple(bool enabled);
  /// Writes a TLS Feature extension with exactly these feature ids (an empty
  /// list writes an empty SEQUENCE — used to exercise lint's RFC 7633
  /// checks). Overrides must_staple()'s implicit {5}.
  CertificateBuilder& tls_features(std::vector<std::int64_t> features);
  CertificateBuilder& add_san(std::string dns_name);
  CertificateBuilder& ca(bool is_ca);

  /// Encodes the TBS, signs it with `issuer_key`, and returns the finished
  /// certificate. Throws std::logic_error if required fields are missing.
  Certificate sign(const crypto::KeyPair& issuer_key) const;

 private:
  util::Bytes encode_tbs(crypto::SignatureAlgorithm sig_alg) const;

  util::Bytes serial_;
  DistinguishedName subject_;
  DistinguishedName issuer_;
  Validity validity_{};
  crypto::PublicKey public_key_;
  Extensions extensions_;
};

}  // namespace mustaple::x509
