// X.501 distinguished names, restricted to the attributes this study needs
// (CN / O / C). Encoded as a standard RDNSequence.
#pragma once

#include <string>

#include "asn1/der.hpp"
#include "util/result.hpp"

namespace mustaple::x509 {

struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  /// "CN=example.com, O=Example CA, C=US" (omits empty attributes).
  std::string to_string() const;

  /// Writes the RDNSequence into `w`.
  void encode(asn1::Writer& w) const;

  /// Parses an RDNSequence TLV (the SEQUENCE must already be read).
  static util::Result<DistinguishedName> decode(const asn1::Tlv& sequence);
  /// Zero-copy overload: traverses the RDNSequence in place; only the
  /// attribute strings are materialized.
  static util::Result<DistinguishedName> decode(const asn1::TlvView& sequence);

  friend bool operator==(const DistinguishedName&,
                         const DistinguishedName&) = default;
};

}  // namespace mustaple::x509
