#include "x509/certificate.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace mustaple::x509 {

namespace {

using asn1::Oid;
using asn1::Reader;
using asn1::Tag;
using asn1::Tlv;
using asn1::Writer;
using util::Bytes;
using util::Result;

const Oid& signature_oid_for(crypto::SignatureAlgorithm alg) {
  switch (alg) {
    case crypto::SignatureAlgorithm::kRsaSha256:
      return asn1::oids::sha256_with_rsa();
    case crypto::SignatureAlgorithm::kSimHashSig:
      return asn1::oids::sim_hash_sig();
  }
  throw std::logic_error("signature_oid_for: unreachable");
}

void write_algorithm_identifier(Writer& w, const Oid& oid) {
  w.sequence([&](Writer& alg) {
    alg.oid(oid);
    alg.null();
  });
}

Result<Oid> read_algorithm_identifier(Reader& r) {
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return Result<Oid>::failure(seq.error().code, seq.error().detail);
  Reader body(seq.value().content);
  auto oid = body.read_oid();
  if (!oid.ok()) return oid;
  // Optional NULL parameters; ignore anything trailing.
  return oid;
}

// --- extension value encoders -------------------------------------------

Bytes encode_aia(const Extensions& ext) {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& url : ext.ocsp_urls) {
      seq.sequence([&](Writer& ad) {
        ad.oid(asn1::oids::aia_ocsp());
        ad.implicit_context(6, util::bytes_of(url));  // GeneralName: URI
      });
    }
    if (ext.ca_issuers_url) {
      seq.sequence([&](Writer& ad) {
        ad.oid(asn1::oids::aia_ca_issuers());
        ad.implicit_context(6, util::bytes_of(*ext.ca_issuers_url));
      });
    }
  });
  return w.take();
}

Bytes encode_crldp(const std::vector<std::string>& urls) {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& url : urls) {
      seq.sequence([&](Writer& dp) {
        dp.explicit_context(0, [&](Writer& dpn) {
          dpn.explicit_context(0, [&](Writer& names) {
            names.implicit_context(6, util::bytes_of(url));
          });
        });
      });
    }
  });
  return w.take();
}

Bytes encode_tls_feature(const std::vector<std::int64_t>& features) {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const std::int64_t feature : features) seq.integer(feature);
  });
  return w.take();
}

Bytes encode_san(const std::vector<std::string>& dns) {
  Writer w;
  w.sequence([&](Writer& seq) {
    for (const auto& name : dns) {
      seq.implicit_context(2, util::bytes_of(name));  // dNSName
    }
  });
  return w.take();
}

Bytes encode_basic_constraints(bool is_ca) {
  Writer w;
  w.sequence([&](Writer& seq) {
    if (is_ca) seq.boolean(true);  // DEFAULT FALSE is omitted in DER
  });
  return w.take();
}

void write_extension(Writer& w, const Oid& oid, bool critical,
                     const Bytes& value) {
  w.sequence([&](Writer& ext) {
    ext.oid(oid);
    if (critical) ext.boolean(true);
    ext.octet_string(value);
  });
}

// --- extension value decoders -------------------------------------------

util::Status decode_aia(util::BytesView value, Extensions& out) {
  Reader r(value);
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return util::Status::failure(seq.error().code);
  Reader body(seq.value().content);
  while (!body.at_end()) {
    auto ad = body.expect_view(Tag::kSequence);
    if (!ad.ok()) return util::Status::failure(ad.error().code);
    Reader ad_body(ad.value().content);
    auto method = ad_body.read_oid();
    if (!method.ok()) return util::Status::failure(method.error().code);
    auto loc = ad_body.read_any_view();
    if (!loc.ok()) return util::Status::failure(loc.error().code);
    if (!loc.value().is_context(6, false)) continue;  // only URIs matter here
    const std::string url = util::text_of(loc.value().content);
    if (method.value() == asn1::oids::aia_ocsp()) {
      out.ocsp_urls.push_back(url);
    } else if (method.value() == asn1::oids::aia_ca_issuers()) {
      out.ca_issuers_url = url;
    }
  }
  return util::Status::success();
}

util::Status decode_crldp(util::BytesView value, Extensions& out) {
  Reader r(value);
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return util::Status::failure(seq.error().code);
  Reader body(seq.value().content);
  while (!body.at_end()) {
    auto dp = body.expect_view(Tag::kSequence);
    if (!dp.ok()) return util::Status::failure(dp.error().code);
    Reader dp_body(dp.value().content);
    if (dp_body.at_end()) continue;
    auto dpn = dp_body.expect_context_view(0, true);
    if (!dpn.ok()) return util::Status::failure(dpn.error().code);
    Reader dpn_body(dpn.value().content);
    auto full_name = dpn_body.expect_context_view(0, true);
    if (!full_name.ok()) return util::Status::failure(full_name.error().code);
    Reader names(full_name.value().content);
    while (!names.at_end()) {
      auto name = names.read_any_view();
      if (!name.ok()) return util::Status::failure(name.error().code);
      if (name.value().is_context(6, false)) {
        out.crl_urls.push_back(util::text_of(name.value().content));
      }
    }
  }
  return util::Status::success();
}

util::Status decode_tls_feature(util::BytesView value, Extensions& out) {
  Reader r(value);
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return util::Status::failure(seq.error().code);
  Reader body(seq.value().content);
  out.tls_features.emplace();
  while (!body.at_end()) {
    auto feature = body.read_integer();
    if (!feature.ok()) return util::Status::failure(feature.error().code);
    out.tls_features->push_back(feature.value());
    if (feature.value() == 5) out.must_staple = true;
  }
  return util::Status::success();
}

util::Status decode_san(util::BytesView value, Extensions& out) {
  Reader r(value);
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return util::Status::failure(seq.error().code);
  Reader body(seq.value().content);
  while (!body.at_end()) {
    auto name = body.read_any_view();
    if (!name.ok()) return util::Status::failure(name.error().code);
    if (name.value().is_context(2, false)) {
      out.san_dns.push_back(util::text_of(name.value().content));
    }
  }
  return util::Status::success();
}

util::Status decode_basic_constraints(util::BytesView value, Extensions& out) {
  Reader r(value);
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return util::Status::failure(seq.error().code);
  Reader body(seq.value().content);
  bool is_ca = false;
  if (!body.at_end() && body.peek_tag() == static_cast<std::uint8_t>(Tag::kBoolean)) {
    auto flag = body.read_boolean();
    if (!flag.ok()) return util::Status::failure(flag.error().code);
    is_ca = flag.value();
  }
  out.is_ca = is_ca;
  return util::Status::success();
}

}  // namespace

// ---------------------------------------------------------------------------
// Certificate
// ---------------------------------------------------------------------------

util::Bytes Certificate::fingerprint() const {
  return crypto::Sha256::hash(encode_der());
}

bool Certificate::verify_signature(const crypto::PublicKey& issuer_key) const {
  return issuer_key.verify(tbs_der_, signature_);
}

util::Bytes Certificate::encode_der() const {
  Writer w;
  w.sequence([&](Writer& cert) {
    cert.raw(tbs_der_);
    write_algorithm_identifier(cert, signature_oid_for(sig_alg_));
    cert.bit_string(signature_);
  });
  return w.take();
}

util::Result<Certificate> Certificate::parse(const util::Bytes& der) {
  // Zero-copy discipline (DESIGN.md §9): the whole TBS traversal runs on
  // views borrowing from `der`; only fields retained in the Certificate
  // (tbs_der_, serial_, signature_, key, names, extension strings) allocate.
  using R = Result<Certificate>;
  Reader top(der);
  auto outer = top.expect_view(Tag::kSequence);
  if (!outer.ok()) return R::failure(outer.error().code, outer.error().detail);

  Reader cert_reader(outer.value().content);
  // Re-encode the TBS TLV so signatures verify over the exact bytes.
  auto tbs = cert_reader.expect_view(Tag::kSequence);
  if (!tbs.ok()) return R::failure(tbs.error().code, tbs.error().detail);
  Writer tbs_rewriter;
  tbs_rewriter.tlv(static_cast<std::uint8_t>(Tag::kSequence), tbs.value().content);

  Certificate cert;
  cert.tbs_der_ = tbs_rewriter.take();

  auto outer_alg = read_algorithm_identifier(cert_reader);
  if (!outer_alg.ok()) {
    return R::failure(outer_alg.error().code, outer_alg.error().detail);
  }
  if (outer_alg.value() == asn1::oids::sha256_with_rsa()) {
    cert.sig_alg_ = crypto::SignatureAlgorithm::kRsaSha256;
  } else if (outer_alg.value() == asn1::oids::sim_hash_sig()) {
    cert.sig_alg_ = crypto::SignatureAlgorithm::kSimHashSig;
  } else {
    return R::failure("x509.unknown_signature_algorithm",
                      outer_alg.value().to_string());
  }
  auto sig = cert_reader.read_bit_string_view();
  if (!sig.ok()) return R::failure(sig.error().code, sig.error().detail);
  cert.signature_ = sig.value().to_bytes();

  // --- TBS fields ---
  Reader tbs_reader(tbs.value().content);
  auto version = tbs_reader.expect_context_view(0, true);
  if (!version.ok()) return R::failure(version.error().code, "version");
  auto serial = tbs_reader.read_integer_bytes_view();
  if (!serial.ok()) return R::failure(serial.error().code, "serial");
  cert.serial_ = serial.value().to_bytes();
  auto tbs_alg = read_algorithm_identifier(tbs_reader);
  if (!tbs_alg.ok()) return R::failure(tbs_alg.error().code, "tbs algorithm");
  // RFC 5280 §4.1.1.2: the outer signatureAlgorithm MUST equal the TBS
  // signature field — the outer one is not covered by the signature.
  if (!(tbs_alg.value() == outer_alg.value())) {
    return R::failure("x509.algorithm_mismatch",
                      "outer signatureAlgorithm != tbs signature");
  }

  auto issuer_tlv = tbs_reader.expect_view(Tag::kSequence);
  if (!issuer_tlv.ok()) return R::failure(issuer_tlv.error().code, "issuer");
  auto issuer = DistinguishedName::decode(issuer_tlv.value());
  if (!issuer.ok()) return R::failure(issuer.error().code, "issuer");
  cert.issuer_ = issuer.value();

  auto validity_tlv = tbs_reader.expect_view(Tag::kSequence);
  if (!validity_tlv.ok()) return R::failure(validity_tlv.error().code, "validity");
  Reader validity_reader(validity_tlv.value().content);
  auto nb = validity_reader.read_generalized_time();
  if (!nb.ok()) return R::failure(nb.error().code, "notBefore");
  auto na = validity_reader.read_generalized_time();
  if (!na.ok()) return R::failure(na.error().code, "notAfter");
  cert.validity_ = Validity{nb.value(), na.value()};

  auto subject_tlv = tbs_reader.expect_view(Tag::kSequence);
  if (!subject_tlv.ok()) return R::failure(subject_tlv.error().code, "subject");
  auto subject = DistinguishedName::decode(subject_tlv.value());
  if (!subject.ok()) return R::failure(subject.error().code, "subject");
  cert.subject_ = subject.value();

  auto spki = tbs_reader.expect_view(Tag::kSequence);
  if (!spki.ok()) return R::failure(spki.error().code, "spki");
  Reader spki_reader(spki.value().content);
  auto spki_alg = read_algorithm_identifier(spki_reader);
  if (!spki_alg.ok()) return R::failure(spki_alg.error().code, "spki alg");
  auto key_bits = spki_reader.read_bit_string_view();
  if (!key_bits.ok()) return R::failure(key_bits.error().code, "spki key");
  auto key = crypto::PublicKey::decode(key_bits.value().to_bytes());
  if (!key.ok()) return R::failure(key.error().code, "spki key");
  cert.public_key_ = key.value();

  // Optional extensions.
  if (!tbs_reader.at_end()) {
    auto ext_wrapper = tbs_reader.expect_context_view(3, true);
    if (!ext_wrapper.ok()) {
      return R::failure(ext_wrapper.error().code, "extensions");
    }
    Reader ext_outer(ext_wrapper.value().content);
    auto ext_seq = ext_outer.expect_view(Tag::kSequence);
    if (!ext_seq.ok()) return R::failure(ext_seq.error().code, "extensions");
    Reader exts(ext_seq.value().content);
    while (!exts.at_end()) {
      auto ext = exts.expect_view(Tag::kSequence);
      if (!ext.ok()) return R::failure(ext.error().code, "extension");
      Reader ext_reader(ext.value().content);
      auto oid = ext_reader.read_oid();
      if (!oid.ok()) return R::failure(oid.error().code, "extension oid");
      if (ext_reader.peek_tag() == static_cast<std::uint8_t>(Tag::kBoolean)) {
        auto critical = ext_reader.read_boolean();
        if (!critical.ok()) return R::failure(critical.error().code, "critical");
      }
      auto value = ext_reader.read_octet_string_view();
      if (!value.ok()) return R::failure(value.error().code, "extension value");

      util::Status status = util::Status::success();
      if (oid.value() == asn1::oids::authority_info_access()) {
        status = decode_aia(value.value(), cert.extensions_);
      } else if (oid.value() == asn1::oids::crl_distribution_points()) {
        status = decode_crldp(value.value(), cert.extensions_);
      } else if (oid.value() == asn1::oids::tls_feature()) {
        status = decode_tls_feature(value.value(), cert.extensions_);
      } else if (oid.value() == asn1::oids::subject_alt_name()) {
        status = decode_san(value.value(), cert.extensions_);
      } else if (oid.value() == asn1::oids::basic_constraints()) {
        status = decode_basic_constraints(value.value(), cert.extensions_);
      }
      if (!status.ok()) return R::failure(status.error().code, "extension body");
    }
  }
  return cert;
}

// ---------------------------------------------------------------------------
// CertificateBuilder
// ---------------------------------------------------------------------------

CertificateBuilder& CertificateBuilder::serial(util::Bytes serial) {
  serial_ = std::move(serial);
  return *this;
}

CertificateBuilder& CertificateBuilder::serial_number(std::uint64_t serial) {
  util::Bytes bytes;
  for (int i = 7; i >= 0; --i) {
    const auto b = static_cast<std::uint8_t>(serial >> (8 * i));
    if (!bytes.empty() || b != 0 || i == 0) bytes.push_back(b);
  }
  return this->serial(std::move(bytes));
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName name) {
  subject_ = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName name) {
  issuer_ = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(util::SimTime not_before,
                                                 util::SimTime not_after) {
  validity_ = Validity{not_before, not_after};
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(crypto::PublicKey key) {
  public_key_ = std::move(key);
  return *this;
}

CertificateBuilder& CertificateBuilder::add_ocsp_url(std::string url) {
  extensions_.ocsp_urls.push_back(std::move(url));
  return *this;
}

CertificateBuilder& CertificateBuilder::ca_issuers_url(std::string url) {
  extensions_.ca_issuers_url = std::move(url);
  return *this;
}

CertificateBuilder& CertificateBuilder::add_crl_url(std::string url) {
  extensions_.crl_urls.push_back(std::move(url));
  return *this;
}

CertificateBuilder& CertificateBuilder::must_staple(bool enabled) {
  extensions_.must_staple = enabled;
  return *this;
}

CertificateBuilder& CertificateBuilder::tls_features(
    std::vector<std::int64_t> features) {
  extensions_.must_staple =
      std::find(features.begin(), features.end(), 5) != features.end();
  extensions_.tls_features = std::move(features);
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san(std::string dns_name) {
  extensions_.san_dns.push_back(std::move(dns_name));
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(bool is_ca) {
  extensions_.is_ca = is_ca;
  return *this;
}

util::Bytes CertificateBuilder::encode_tbs(
    crypto::SignatureAlgorithm sig_alg) const {
  Writer w;
  w.sequence([&](Writer& tbs) {
    tbs.explicit_context(0, [](Writer& v) { v.integer(2); });  // v3
    tbs.integer_bytes(serial_);
    write_algorithm_identifier(tbs, signature_oid_for(sig_alg));
    issuer_.encode(tbs);
    tbs.sequence([&](Writer& validity) {
      validity.generalized_time(validity_.not_before);
      validity.generalized_time(validity_.not_after);
    });
    subject_.encode(tbs);
    tbs.sequence([&](Writer& spki) {
      write_algorithm_identifier(
          spki, public_key_.algorithm() == crypto::SignatureAlgorithm::kRsaSha256
                    ? asn1::oids::rsa_encryption()
                    : asn1::oids::sim_hash_sig());
      spki.bit_string(public_key_.encode());
    });
    const bool tls_feature_present =
        extensions_.must_staple || extensions_.tls_features.has_value();
    const bool any_ext = !extensions_.ocsp_urls.empty() ||
                         extensions_.ca_issuers_url.has_value() ||
                         !extensions_.crl_urls.empty() ||
                         tls_feature_present ||
                         !extensions_.san_dns.empty() ||
                         extensions_.is_ca.has_value();
    if (any_ext) {
      tbs.explicit_context(3, [&](Writer& wrapper) {
        wrapper.sequence([&](Writer& exts) {
          if (!extensions_.ocsp_urls.empty() || extensions_.ca_issuers_url) {
            write_extension(exts, asn1::oids::authority_info_access(), false,
                            encode_aia(extensions_));
          }
          if (!extensions_.crl_urls.empty()) {
            write_extension(exts, asn1::oids::crl_distribution_points(), false,
                            encode_crldp(extensions_.crl_urls));
          }
          if (tls_feature_present) {
            write_extension(exts, asn1::oids::tls_feature(), false,
                            encode_tls_feature(extensions_.tls_features
                                                   ? *extensions_.tls_features
                                                   : std::vector<std::int64_t>{
                                                         5}));
          }
          if (!extensions_.san_dns.empty()) {
            write_extension(exts, asn1::oids::subject_alt_name(), false,
                            encode_san(extensions_.san_dns));
          }
          if (extensions_.is_ca.has_value()) {
            write_extension(exts, asn1::oids::basic_constraints(), true,
                            encode_basic_constraints(*extensions_.is_ca));
          }
        });
      });
    }
  });
  return w.take();
}

Certificate CertificateBuilder::sign(const crypto::KeyPair& issuer_key) const {
  if (serial_.empty()) {
    throw std::logic_error("CertificateBuilder: serial is required");
  }
  if (public_key_.empty()) {
    throw std::logic_error("CertificateBuilder: public key is required");
  }
  if (subject_.common_name.empty()) {
    throw std::logic_error("CertificateBuilder: subject CN is required");
  }
  Certificate cert;
  cert.serial_ = serial_;
  cert.subject_ = subject_;
  cert.issuer_ = issuer_;
  cert.validity_ = validity_;
  cert.public_key_ = public_key_;
  cert.extensions_ = extensions_;
  cert.sig_alg_ = issuer_key.algorithm();
  cert.tbs_der_ = encode_tbs(cert.sig_alg_);
  cert.signature_ = issuer_key.sign(cert.tbs_der_);
  return cert;
}

}  // namespace mustaple::x509
