#include "x509/name.hpp"

namespace mustaple::x509 {

std::string DistinguishedName::to_string() const {
  std::string out;
  auto add = [&out](const char* label, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out += ", ";
    out += label;
    out += '=';
    out += value;
  };
  add("CN", common_name);
  add("O", organization);
  add("C", country);
  return out;
}

void DistinguishedName::encode(asn1::Writer& w) const {
  w.sequence([this](asn1::Writer& rdns) {
    auto attribute = [&rdns](const asn1::Oid& type, const std::string& value) {
      if (value.empty()) return;
      rdns.set([&](asn1::Writer& set) {
        set.sequence([&](asn1::Writer& atv) {
          atv.oid(type);
          atv.utf8_string(value);
        });
      });
    };
    attribute(asn1::oids::country(), country);
    attribute(asn1::oids::organization(), organization);
    attribute(asn1::oids::common_name(), common_name);
  });
}

util::Result<DistinguishedName> DistinguishedName::decode(
    const asn1::Tlv& sequence) {
  return decode(asn1::TlvView{sequence.tag, sequence.content});
}

util::Result<DistinguishedName> DistinguishedName::decode(
    const asn1::TlvView& sequence) {
  using R = util::Result<DistinguishedName>;
  if (!sequence.is(asn1::Tag::kSequence)) {
    return R::failure("x509.name.not_sequence");
  }
  DistinguishedName name;
  asn1::Reader rdns(sequence.content);
  while (!rdns.at_end()) {
    auto set = rdns.expect_view(asn1::Tag::kSet);
    if (!set.ok()) return R::failure(set.error().code, set.error().detail);
    asn1::Reader set_reader(set.value().content);
    while (!set_reader.at_end()) {
      auto atv = set_reader.expect_view(asn1::Tag::kSequence);
      if (!atv.ok()) return R::failure(atv.error().code, atv.error().detail);
      asn1::Reader atv_reader(atv.value().content);
      auto type = atv_reader.read_oid();
      if (!type.ok()) return R::failure(type.error().code, type.error().detail);
      auto value = atv_reader.read_string();
      if (!value.ok()) {
        return R::failure(value.error().code, value.error().detail);
      }
      if (type.value() == asn1::oids::common_name()) {
        name.common_name = value.value();
      } else if (type.value() == asn1::oids::organization()) {
        name.organization = value.value();
      } else if (type.value() == asn1::oids::country()) {
        name.country = value.value();
      }
      // Unknown attributes are skipped, as real parsers do.
    }
  }
  return name;
}

}  // namespace mustaple::x509
