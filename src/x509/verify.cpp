#include "x509/verify.hpp"

namespace mustaple::x509 {

void RootStore::add(const Certificate& root) {
  roots_.insert_or_assign(root.subject().to_string(), root);
}

bool RootStore::contains_subject(const std::string& subject) const {
  return roots_.count(subject) > 0;
}

const Certificate* RootStore::find_issuer(const DistinguishedName& issuer) const {
  const auto it = roots_.find(issuer.to_string());
  return it == roots_.end() ? nullptr : &it->second;
}

const char* to_string(ChainError error) {
  switch (error) {
    case ChainError::kOk:
      return "ok";
    case ChainError::kEmptyChain:
      return "empty chain";
    case ChainError::kExpired:
      return "certificate expired";
    case ChainError::kNotYetValid:
      return "certificate not yet valid";
    case ChainError::kBadSignature:
      return "bad signature";
    case ChainError::kIssuerMismatch:
      return "issuer name mismatch";
    case ChainError::kIntermediateNotCa:
      return "intermediate lacks CA basic constraint";
    case ChainError::kUntrustedRoot:
      return "chain does not terminate at a trusted root";
  }
  return "unknown";
}

ChainResult verify_chain(const std::vector<Certificate>& chain,
                         const RootStore& roots, util::SimTime now) {
  if (chain.empty()) return {ChainError::kEmptyChain, 0};

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.validity().not_before) return {ChainError::kNotYetValid, i};
    if (now > cert.validity().not_after) return {ChainError::kExpired, i};
    if (i > 0) {
      // chain[i] issues chain[i-1]; it must be a CA.
      if (!cert.extensions().is_ca.value_or(false)) {
        return {ChainError::kIntermediateNotCa, i};
      }
    }
  }

  // Verify each signature link within the presented chain.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (!(chain[i].issuer() == chain[i + 1].subject())) {
      return {ChainError::kIssuerMismatch, i};
    }
    if (!chain[i].verify_signature(chain[i + 1].public_key())) {
      return {ChainError::kBadSignature, i};
    }
  }

  // The top of the chain must be trusted: either it IS a root (self-signed,
  // in the store) or a trusted root issued it.
  const Certificate& top = chain.back();
  if (top.is_self_signed()) {
    if (!roots.contains_subject(top.subject().to_string())) {
      return {ChainError::kUntrustedRoot, chain.size() - 1};
    }
    if (!top.verify_signature(top.public_key())) {
      return {ChainError::kBadSignature, chain.size() - 1};
    }
    return {ChainError::kOk, 0};
  }
  const Certificate* root = roots.find_issuer(top.issuer());
  if (root == nullptr) return {ChainError::kUntrustedRoot, chain.size() - 1};
  if (now < root->validity().not_before) {
    return {ChainError::kNotYetValid, chain.size() - 1};
  }
  if (now > root->validity().not_after) {
    return {ChainError::kExpired, chain.size() - 1};
  }
  if (!top.verify_signature(root->public_key())) {
    return {ChainError::kBadSignature, chain.size() - 1};
  }
  return {ChainError::kOk, 0};
}

}  // namespace mustaple::x509
