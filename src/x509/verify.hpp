// Certificate-chain validation: the client-side checks of paper §2.1 —
// correct signatures up to a trusted root, validity windows, CA flags.
// Revocation is deliberately out of scope here (that is what CRL/OCSP are
// for, and the study measures it separately).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "x509/certificate.hpp"

namespace mustaple::x509 {

/// Trusted self-signed roots, keyed by subject string. Mirrors the paper's
/// footnote 2: clients obtain roots out-of-band.
class RootStore {
 public:
  void add(const Certificate& root);
  bool contains_subject(const std::string& subject) const;
  const Certificate* find_issuer(const DistinguishedName& issuer) const;
  std::size_t size() const { return roots_.size(); }

 private:
  std::map<std::string, Certificate> roots_;
};

enum class ChainError {
  kOk,
  kEmptyChain,
  kExpired,
  kNotYetValid,
  kBadSignature,
  kIssuerMismatch,
  kIntermediateNotCa,
  kUntrustedRoot,
};

const char* to_string(ChainError error);

struct ChainResult {
  ChainError error = ChainError::kOk;
  std::size_t failing_index = 0;  ///< chain index where validation failed

  bool ok() const { return error == ChainError::kOk; }
};

/// Validates `chain` (leaf first, root or root-signed intermediate last) at
/// time `now` against `roots`. Every certificate must be inside its validity
/// window; every link must verify; intermediates must carry CA=true; the top
/// must chain to (or be) a trusted root.
ChainResult verify_chain(const std::vector<Certificate>& chain,
                         const RootStore& roots, util::SimTime now);

}  // namespace mustaple::x509
