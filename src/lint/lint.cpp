#include "lint/lint.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace mustaple::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
    case Severity::kFatal:
      return "fatal";
  }
  return "?";
}

const char* to_string(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kCertificate:
      return "certificate";
    case ArtifactKind::kCrl:
      return "crl";
    case ArtifactKind::kOcspResponse:
      return "ocsp-response";
    case ArtifactKind::kCrlOcspPair:
      return "crl-ocsp-pair";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Artifact
// ---------------------------------------------------------------------------

void Artifact::parse() {
  if (parsed_) return;
  parsed_ = true;
  switch (kind) {
    case ArtifactKind::kCertificate: {
      auto parsed = x509::Certificate::parse(der);
      if (parsed.ok()) {
        cert = std::move(parsed).take();
      } else {
        parse_error = parsed.error().code;
      }
      break;
    }
    case ArtifactKind::kCrl: {
      auto parsed = crl::Crl::parse(der);
      if (parsed.ok()) {
        crl = std::move(parsed).take();
      } else {
        parse_error = parsed.error().code;
      }
      break;
    }
    case ArtifactKind::kOcspResponse:
    case ArtifactKind::kCrlOcspPair: {
      auto parsed = ocsp::OcspResponse::parse(der);
      if (parsed.ok()) {
        ocsp = std::move(parsed).take();
      } else {
        parse_error = parsed.error().code;
      }
      break;
    }
  }
}

Artifact Artifact::deferred(ArtifactKind kind, std::string id, util::Bytes der,
                            Context ctx) {
  Artifact artifact;
  artifact.kind = kind;
  artifact.id = std::move(id);
  artifact.der = std::move(der);
  artifact.context = ctx;
  return artifact;
}

Artifact Artifact::certificate(std::string id, util::Bytes der, Context ctx) {
  Artifact artifact = deferred(ArtifactKind::kCertificate, std::move(id),
                               std::move(der), ctx);
  artifact.parse();
  return artifact;
}

Artifact Artifact::certificate(std::string id, const x509::Certificate& cert,
                               Context ctx) {
  Artifact artifact = deferred(ArtifactKind::kCertificate, std::move(id),
                               cert.encode_der(), ctx);
  // The parsed form is already in hand — trust it instead of re-decoding.
  artifact.cert = cert;
  artifact.parsed_ = true;
  return artifact;
}

Artifact Artifact::crl_list(std::string id, util::Bytes der, Context ctx) {
  Artifact artifact =
      deferred(ArtifactKind::kCrl, std::move(id), std::move(der), ctx);
  artifact.parse();
  return artifact;
}

Artifact Artifact::ocsp_response(std::string id, util::Bytes der, Context ctx) {
  Artifact artifact = deferred(ArtifactKind::kOcspResponse, std::move(id),
                               std::move(der), ctx);
  artifact.parse();
  return artifact;
}

Artifact Artifact::crl_ocsp_pair(std::string id, util::Bytes ocsp_der,
                                 const crl::Crl& crl, Context ctx) {
  ctx.crl = &crl;
  Artifact artifact = deferred(ArtifactKind::kCrlOcspPair, std::move(id),
                               std::move(ocsp_der), ctx);
  artifact.parse();
  return artifact;
}

// ---------------------------------------------------------------------------
// RuleRegistry
// ---------------------------------------------------------------------------

void RuleRegistry::add(Rule rule) {
  if (by_id_.count(rule.info.id) > 0) {
    throw std::logic_error("RuleRegistry: duplicate rule id " + rule.info.id);
  }
  by_id_.emplace(rule.info.id, rules_.size());
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::by_id(std::string_view id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &rules_[it->second];
}

std::vector<const Rule*> RuleRegistry::by_severity(Severity severity) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.info.severity == severity) out.push_back(&rule);
  }
  return out;
}

std::vector<const Rule*> RuleRegistry::by_kind(ArtifactKind kind) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.info.kind == kind) out.push_back(&rule);
  }
  return out;
}

std::vector<Finding> lint_artifact(const RuleRegistry& registry,
                                   const Artifact& artifact) {
  std::vector<Finding> findings;
  std::vector<std::string> messages;
  for (const Rule& rule : registry.rules()) {
    const bool kind_match =
        rule.info.kind == artifact.kind ||
        (artifact.kind == ArtifactKind::kCrlOcspPair &&
         rule.info.kind == ArtifactKind::kOcspResponse);
    if (!kind_match) continue;
    if (rule.applies && !rule.applies(artifact)) continue;
    messages.clear();
    rule.check(artifact, messages);
    for (std::string& message : messages) {
      findings.push_back(Finding{rule.info.id, rule.info.severity, artifact.id,
                                 std::move(message)});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// LintReport
// ---------------------------------------------------------------------------

void LintReport::add(const std::vector<Finding>& findings) {
  ++artifacts_;
  MUSTAPLE_COUNT("mustaple_lint_artifacts_total");
  for (const Finding& finding : findings) {
    ++by_severity_[static_cast<std::size_t>(finding.severity)];
    ++by_rule_[finding.rule_id];
    MUSTAPLE_COUNT_L("mustaple_lint_findings_total", "severity",
                     to_string(finding.severity));
    if (findings_.size() < finding_capacity_) {
      findings_.push_back(finding);
    } else {
      ++dropped_;
    }
  }
}

void LintReport::merge(const LintReport& other) {
  artifacts_ += other.artifacts_;
  for (std::size_t s = 0; s < kSeverityCount; ++s) {
    by_severity_[s] += other.by_severity_[s];
  }
  for (const auto& [rule, n] : other.by_rule_) by_rule_[rule] += n;
  for (const Finding& finding : other.findings_) {
    if (findings_.size() < finding_capacity_) {
      findings_.push_back(finding);
    } else {
      ++dropped_;
    }
  }
  dropped_ += other.dropped_;
}

std::uint64_t LintReport::total_findings() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : by_severity_) total += n;
  return total;
}

std::uint64_t LintReport::count(std::string_view rule_id) const {
  const auto it = by_rule_.find(std::string(rule_id));
  return it == by_rule_.end() ? 0 : it->second;
}

namespace {

void json_escape(std::ostringstream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << util::format(
              "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string LintReport::render_json() const {
  std::ostringstream out;
  out << "{\"artifacts\":" << artifacts_
      << ",\"findings_total\":" << total_findings() << ",\"by_severity\":{";
  for (std::size_t s = 0; s < kSeverityCount; ++s) {
    if (s > 0) out << ",";
    out << "\"" << to_string(static_cast<Severity>(s))
        << "\":" << by_severity_[s];
  }
  out << "},\"by_rule\":{";
  bool first = true;
  for (const auto& [rule, n] : by_rule_) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    json_escape(out, rule);
    out << "\":" << n;
  }
  out << "},\"dropped\":" << dropped_ << ",\"findings\":[";
  first = true;
  for (const Finding& finding : findings_) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":\"";
    json_escape(out, finding.rule_id);
    out << "\",\"severity\":\"" << to_string(finding.severity)
        << "\",\"artifact\":\"";
    json_escape(out, finding.artifact);
    out << "\",\"message\":\"";
    json_escape(out, finding.message);
    out << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string LintReport::render_csv(const RuleRegistry& registry) const {
  std::ostringstream out;
  out << "rule,severity,citation,count\n";
  for (const Rule& rule : registry.rules()) {
    out << rule.info.id << "," << to_string(rule.info.severity) << ","
        << rule.info.citation << "," << count(rule.info.id) << "\n";
  }
  // Findings from rules the registry doesn't know (custom registries merged
  // in) still surface, after the catalog.
  for (const auto& [rule, n] : by_rule_) {
    if (registry.by_id(rule) == nullptr) {
      out << rule << ",?,?," << n << "\n";
    }
  }
  return out.str();
}

std::string LintReport::summary() const {
  return util::format(
      "%llu artifacts, %llu findings (%llu info, %llu warn, %llu error, "
      "%llu fatal)",
      static_cast<unsigned long long>(artifacts_),
      static_cast<unsigned long long>(total_findings()),
      static_cast<unsigned long long>(count(Severity::kInfo)),
      static_cast<unsigned long long>(count(Severity::kWarn)),
      static_cast<unsigned long long>(count(Severity::kError)),
      static_cast<unsigned long long>(count(Severity::kFatal)));
}

// ---------------------------------------------------------------------------
// Batch runner
// ---------------------------------------------------------------------------

LintReport run_batch(const RuleRegistry& registry,
                     std::vector<Artifact>& artifacts, std::size_t threads,
                     std::size_t finding_capacity) {
  MUSTAPLE_SPAN(span_batch, "lint-batch");
  const std::size_t thread_count =
      threads > 0 ? threads : util::ThreadPool::env_threads(1);
  util::ThreadPool pool(thread_count);

  // Phase 1 (parallel): parse + rule evaluation into canonical slots.
  // Phase 2 (sequential): merge in index order — report bytes never depend
  // on scheduling (same discipline as DESIGN.md §7).
  std::vector<std::vector<Finding>> slots(artifacts.size());
  pool.parallel_for_index(artifacts.size(), [&](std::size_t i) {
    artifacts[i].parse();
    slots[i] = lint_artifact(registry, artifacts[i]);
  });

  LintReport report(finding_capacity);
  for (const auto& findings : slots) report.add(findings);
  MUSTAPLE_LOG_DEBUG("lint", "batch complete",
                     obs::field("artifacts", artifacts.size()),
                     obs::field("findings", report.total_findings()),
                     obs::field("threads", pool.threads()));
  return report;
}

}  // namespace mustaple::lint
