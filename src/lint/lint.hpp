// mustaple::lint — a zlint/certlint-style static analyzer over encoded DER
// artifacts (X.509 certificates, CRLs, OCSP responses) with no network or
// event-loop involvement. The paper's CA findings (§4–§5, Table 1, Fig 5)
// are conformance results at heart; this subsystem turns them into named,
// citable rules:
//
//   * RFC 5280 certificate/CRL shape (validity ordering, serial bounds,
//     extension criticality, duplicate extensions),
//   * RFC 6960 response hygiene (thisUpdate <= producedAt <= nextUpdate,
//     nonce echo, stale/overlong windows — paper §5.3/§5.4),
//   * RFC 7633 Must-Staple (TLS Feature encoding, and the paper's headline
//     "unusable: Must-Staple without issuer OCSP URL" condition),
//   * cross-artifact CRL<->OCSP status disagreement (Table 1).
//
// Rules run against an Artifact (raw DER + parsed form + optional request
// context) in registry order, so a report is a pure function of its inputs;
// run_batch() fans out on util::ThreadPool and merges findings in artifact
// index order, keeping reports bit-identical at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crl/crl.hpp"
#include "ocsp/response.hpp"
#include "util/bytes.hpp"
#include "util/sim_time.hpp"
#include "x509/certificate.hpp"

namespace mustaple::lint {

// ---------------------------------------------------------------------------
// Severity / artifact taxonomy
// ---------------------------------------------------------------------------

/// Rule severities, zlint-style. `kFatal` is reserved for conditions that
/// make an artifact unusable for any further analysis (and that a healthy
/// ecosystem must never produce — CI fails the build on any fatal finding).
enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2, kFatal = 3 };
constexpr std::size_t kSeverityCount = 4;

const char* to_string(Severity severity);

enum class ArtifactKind : std::uint8_t {
  kCertificate = 0,
  kCrl = 1,
  kOcspResponse = 2,
  /// An OCSP response paired with the issuing CA's CRL (via Context::crl):
  /// runs every kOcspResponse rule PLUS the cross-artifact x-check rules.
  kCrlOcspPair = 3,
};

const char* to_string(ArtifactKind kind);

// ---------------------------------------------------------------------------
// Artifact
// ---------------------------------------------------------------------------

/// Optional request/issuer context a rule may consult. Pointers are borrowed
/// and must outlive the Artifact (the universal inline-lint pattern: the
/// scanner/audit owns the issuer certificate and CRL).
struct Context {
  /// Expected signer of the artifact (issuing CA certificate).
  const x509::Certificate* issuer = nullptr;
  /// Cross-check partner for kCrlOcspPair artifacts.
  const crl::Crl* crl = nullptr;
  /// Serial the OCSP request asked about (enables serial-mismatch and the
  /// cross-artifact status rules).
  std::optional<util::Bytes> requested_serial;
  /// Nonce the request carried (enables the RFC 6960 §4.4.1 echo rule).
  std::optional<util::Bytes> expected_nonce;
  /// Clock for freshness rules (stale/premature). Absent = clock-free lint,
  /// which is what the scanner's per-body finding cache requires.
  std::optional<util::SimTime> now;
};

/// One DER artifact plus whatever parsed form survives. Parse failure is
/// itself a finding (the *_unparseable rules), so construction never fails.
struct Artifact {
  ArtifactKind kind = ArtifactKind::kCertificate;
  /// Label carried into findings: responder host, serial hex, file name...
  std::string id;
  util::Bytes der;
  Context context;

  std::optional<x509::Certificate> cert;
  std::optional<crl::Crl> crl;
  std::optional<ocsp::OcspResponse> ocsp;
  /// Parse error code when the DER did not decode.
  std::string parse_error;

  /// Decodes `der` into the parsed slot for `kind`. Idempotent; factories
  /// call it eagerly, deferred() leaves it for run_batch's parallel phase.
  void parse();
  bool parsed() const { return parsed_; }

  static Artifact certificate(std::string id, util::Bytes der, Context ctx = {});
  /// Wraps an already-parsed certificate (re-encodes for the raw view).
  static Artifact certificate(std::string id, const x509::Certificate& cert,
                              Context ctx = {});
  static Artifact crl_list(std::string id, util::Bytes der, Context ctx = {});
  static Artifact ocsp_response(std::string id, util::Bytes der,
                                Context ctx = {});
  /// OCSP body + the issuing CA's CRL: runs OCSP rules and the Table-1
  /// cross-checks. `crl` is borrowed into the context and must outlive the
  /// artifact.
  static Artifact crl_ocsp_pair(std::string id, util::Bytes ocsp_der,
                                const crl::Crl& crl, Context ctx = {});
  /// Construction without parsing — bench/batch callers pay the decode in
  /// run_batch's parallel phase instead of at build time.
  static Artifact deferred(ArtifactKind kind, std::string id, util::Bytes der,
                           Context ctx = {});

 private:
  bool parsed_ = false;
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule_id;
  Severity severity = Severity::kInfo;
  std::string artifact;  ///< Artifact::id
  std::string message;
};

struct RuleInfo {
  std::string id;        ///< e.g. "e_ocsp_window_inverted" (prefix = severity)
  std::string citation;  ///< e.g. "RFC 6960 §4.2.2.1"
  std::string description;
  Severity severity = Severity::kError;
  ArtifactKind kind = ArtifactKind::kCertificate;
};

/// One lint rule, zlint-style: metadata, an applies-to predicate, and a
/// check that emits zero or more messages (each becomes a Finding).
struct Rule {
  RuleInfo info;
  /// Extra applicability gate beyond the kind match (e.g. "context carries a
  /// nonce"). Null = kind match suffices.
  std::function<bool(const Artifact&)> applies;
  /// Appends one message per violation found.
  std::function<void(const Artifact&, std::vector<std::string>&)> check;
};

/// Ordered rule collection with by-id/by-severity/by-kind filtering. Order
/// is registration order and determines finding order within an artifact.
class RuleRegistry {
 public:
  /// Throws std::logic_error on a duplicate rule id.
  void add(Rule rule);

  const std::vector<Rule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }

  const Rule* by_id(std::string_view id) const;
  std::vector<const Rule*> by_severity(Severity severity) const;
  std::vector<const Rule*> by_kind(ArtifactKind kind) const;

  /// The shipped rule catalog (see docs/LINT.md). Built once, immutable.
  static const RuleRegistry& builtin();

 private:
  std::vector<Rule> rules_;
  std::map<std::string, std::size_t, std::less<>> by_id_;
};

/// Runs every applicable rule over one artifact, in registry order.
/// kCrlOcspPair artifacts also run the kOcspResponse rules.
std::vector<Finding> lint_artifact(const RuleRegistry& registry,
                                   const Artifact& artifact);

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Aggregates findings across artifacts: exact per-rule/per-severity counts,
/// plus the first `finding_capacity` individual findings (the rest are
/// counted as dropped — counts stay exact). add() feeds the obs metrics
/// (mustaple_lint_artifacts_total, mustaple_lint_findings_total{severity});
/// merge() deliberately does not, so combining sub-reports never
/// double-counts.
class LintReport {
 public:
  explicit LintReport(std::size_t finding_capacity = 10'000)
      : finding_capacity_(finding_capacity) {}

  /// Records one linted artifact's findings (possibly none).
  void add(const std::vector<Finding>& findings);
  /// Folds another report in (counts, findings up to capacity). No metrics.
  void merge(const LintReport& other);

  std::uint64_t artifacts() const { return artifacts_; }
  std::uint64_t total_findings() const;
  std::uint64_t count(Severity severity) const {
    return by_severity_[static_cast<std::size_t>(severity)];
  }
  std::uint64_t count(std::string_view rule_id) const;
  const std::map<std::string, std::uint64_t>& by_rule() const {
    return by_rule_;
  }
  bool has_fatal() const { return count(Severity::kFatal) > 0; }

  const std::vector<Finding>& findings() const { return findings_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Deterministic JSON object: totals, per-severity and per-rule counts,
  /// retained findings. Bit-identical for identical inputs.
  std::string render_json() const;
  /// Rule-catalog CSV: rule,severity,citation,count (registry rules with
  /// zero hits included, unknown-to-registry rules appended).
  std::string render_csv(const RuleRegistry& registry) const;
  /// One human line, e.g. "12 artifacts, 3 findings (1 warn, 2 error)".
  std::string summary() const;

 private:
  std::size_t finding_capacity_;
  std::uint64_t artifacts_ = 0;
  std::array<std::uint64_t, kSeverityCount> by_severity_{};
  std::map<std::string, std::uint64_t> by_rule_;
  std::vector<Finding> findings_;
  std::uint64_t dropped_ = 0;
};

/// Lints every artifact on `threads` workers (0 = auto via
/// MUSTAPLE_SCAN_THREADS, else 1) and merges findings in artifact index
/// order — the report is bit-identical at every thread count. Parses
/// deferred artifacts in the parallel phase.
LintReport run_batch(const RuleRegistry& registry,
                     std::vector<Artifact>& artifacts, std::size_t threads = 1,
                     std::size_t finding_capacity = 10'000);

}  // namespace mustaple::lint
