// The shipped rule catalog (see docs/LINT.md for the full table). Severity
// policy: `fatal` is reserved for structural breakage the seed ecosystem
// never produces (CI fails the build on any fatal finding in the seed
// world); conditions the paper actually observes in the wild — malformed
// OCSP bodies, blank nextUpdate, premature thisUpdate, Table-1 status
// disagreements — rank error or below so the lint gate measures them
// without tripping on them.
//
// The OCSP rules deliberately mirror ocsp::verify_ocsp_response_static's
// classification order (parse -> successful -> serial match -> signature),
// so per-probe lint counts are provably equal to the scanner's Fig-5
// accounting (asserted in tests/measurement_test.cpp and examples/pki_lint).
#include <algorithm>
#include <set>

#include "asn1/der.hpp"
#include "asn1/oid.hpp"
#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace mustaple::lint {

namespace {

using asn1::Oid;
using asn1::Reader;
using asn1::Tag;
using util::Bytes;

constexpr std::int64_t kDay = 86'400;
/// CA/B Forum BR §6.3.2 leaf lifetime ceiling at the paper's time frame.
constexpr std::int64_t kMaxLeafValidityDays = 825;
/// Overlong-window threshold for CRLs and OCSP responses (paper §5.3 calls
/// out multi-month windows; 31 days matches the "huge validity" cutoff).
constexpr std::int64_t kMaxWindowDays = 31;

/// One decoded extension header from a TBS walk (value bytes included so
/// content rules can re-parse).
struct RawExtension {
  Oid oid;
  bool critical = false;
  Bytes value;
};

/// Walks tbs_der's extension list [3] directly — the parsed
/// x509::Extensions keeps only known fields, while criticality/duplication
/// rules need every extension header as encoded.
util::Result<std::vector<RawExtension>> raw_extensions(const Bytes& tbs_der) {
  using R = util::Result<std::vector<RawExtension>>;
  std::vector<RawExtension> out;
  Reader top(tbs_der);
  auto tbs = top.expect(Tag::kSequence);
  if (!tbs.ok()) return R::failure(tbs.error().code, "tbs");
  Reader fields(tbs.value().content);
  while (!fields.at_end()) {
    auto tlv = fields.read_any();
    if (!tlv.ok()) return R::failure(tlv.error().code, "tbs field");
    if (!tlv.value().is_context(3, true)) continue;
    Reader wrapper(tlv.value().content);
    auto list = wrapper.expect(Tag::kSequence);
    if (!list.ok()) return R::failure(list.error().code, "extensions");
    Reader exts(list.value().content);
    while (!exts.at_end()) {
      auto ext = exts.expect(Tag::kSequence);
      if (!ext.ok()) return R::failure(ext.error().code, "extension");
      Reader ext_reader(ext.value().content);
      auto oid = ext_reader.read_oid();
      if (!oid.ok()) return R::failure(oid.error().code, "extension oid");
      RawExtension raw;
      raw.oid = oid.value();
      if (ext_reader.peek_tag() == static_cast<std::uint8_t>(Tag::kBoolean)) {
        auto critical = ext_reader.read_boolean();
        if (!critical.ok()) {
          return R::failure(critical.error().code, "critical");
        }
        raw.critical = critical.value();
      }
      auto value = ext_reader.read_octet_string();
      if (!value.ok()) return R::failure(value.error().code, "extension value");
      raw.value = value.value();
      out.push_back(std::move(raw));
    }
  }
  return out;
}

bool extensions_this_library_understands(const Oid& oid) {
  return oid == asn1::oids::authority_info_access() ||
         oid == asn1::oids::crl_distribution_points() ||
         oid == asn1::oids::tls_feature() ||
         oid == asn1::oids::subject_alt_name() ||
         oid == asn1::oids::basic_constraints() ||
         oid == asn1::oids::key_usage();
}

bool serial_is_zero(const Bytes& serial) {
  return std::all_of(serial.begin(), serial.end(),
                     [](std::uint8_t b) { return b == 0; });
}

// Mirrors ocsp::verify_ocsp_response_static's delegation-aware signature
// check: a delegation cert embedded in the response (itself signed by the
// issuer) may sign, else the issuer key directly.
bool ocsp_signature_ok(const ocsp::OcspResponse& response,
                       const crypto::PublicKey& issuer_key) {
  for (const auto& cert : response.certs()) {
    if (!cert.verify_signature(issuer_key)) continue;
    if (response.verify_signature(cert.public_key())) return true;
  }
  return response.verify_signature(issuer_key);
}

// --- rule builder helpers --------------------------------------------------

using Check = std::function<void(const Artifact&, std::vector<std::string>&)>;
using Applies = std::function<bool(const Artifact&)>;

Rule make_rule(ArtifactKind kind, Severity severity, std::string id,
               std::string citation, std::string description, Check check,
               Applies applies = nullptr) {
  Rule rule;
  rule.info =
      RuleInfo{std::move(id), std::move(citation), std::move(description),
               severity, kind};
  rule.applies = std::move(applies);
  rule.check = std::move(check);
  return rule;
}

/// Most rules only make sense once the artifact parsed; the *_unparseable
/// rules own the failure case.
Applies parsed_cert() {
  return [](const Artifact& a) { return a.cert.has_value(); };
}
Applies parsed_crl() {
  return [](const Artifact& a) { return a.crl.has_value(); };
}
Applies parsed_ocsp() {
  return [](const Artifact& a) { return a.ocsp.has_value(); };
}

void add_certificate_rules(RuleRegistry& registry) {
  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kFatal, "f_cert_unparseable",
      "RFC 5280 §4.1", "certificate DER must decode",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.cert) {
          out.push_back("certificate does not parse: " + a.parse_error);
        }
      }));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kFatal, "f_cert_validity_inverted",
      "RFC 5280 §4.1.2.5", "notBefore must not exceed notAfter",
      [](const Artifact& a, std::vector<std::string>& out) {
        const x509::Validity& v = a.cert->validity();
        if (v.not_after < v.not_before) {
          out.push_back(util::format(
              "notAfter %s precedes notBefore %s",
              util::format_time(v.not_after).c_str(),
              util::format_time(v.not_before).c_str()));
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError, "e_cert_serial_zero",
      "RFC 5280 §4.1.2.2", "serial number must be a positive integer",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (serial_is_zero(a.cert->serial())) {
          out.push_back("serial number is zero or empty");
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError, "e_cert_serial_overlong",
      "RFC 5280 §4.1.2.2", "serial number must not exceed 20 octets",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.cert->serial().size() > 20) {
          out.push_back(util::format("serial number is %zu octets",
                                     a.cert->serial().size()));
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kInfo, "i_cert_serial_low_entropy",
      "CA/B BR §7.1", "serial numbers should carry >= 64 bits of entropy",
      [](const Artifact& a, std::vector<std::string>& out) {
        const std::size_t n = a.cert->serial().size();
        if (n > 0 && n < 8 && !serial_is_zero(a.cert->serial())) {
          out.push_back(util::format("serial number is only %zu octets", n));
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kWarn, "w_cert_validity_overlong",
      "CA/B BR §6.3.2", "subscriber validity should not exceed 825 days",
      [](const Artifact& a, std::vector<std::string>& out) {
        // CA certificates legitimately run long; this targets leaves.
        if (a.cert->extensions().is_ca.value_or(false)) return;
        const std::int64_t days = a.cert->validity().length().seconds / kDay;
        if (days > kMaxLeafValidityDays) {
          out.push_back(util::format("validity spans %lld days",
                                     static_cast<long long>(days)));
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError,
      "e_cert_duplicate_extension", "RFC 5280 §4.2",
      "a certificate must not carry two extensions with the same OID",
      [](const Artifact& a, std::vector<std::string>& out) {
        auto raw = raw_extensions(a.cert->tbs_der());
        if (!raw.ok()) return;  // f_cert_unparseable territory
        std::set<std::string> seen;
        for (const RawExtension& ext : raw.value()) {
          if (!seen.insert(ext.oid.to_string()).second) {
            out.push_back("duplicate extension " + ext.oid.to_string());
          }
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError,
      "e_cert_basic_constraints_not_critical", "RFC 5280 §4.2.1.9",
      "BasicConstraints on a CA certificate must be critical",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.cert->extensions().is_ca.value_or(false)) return;
        auto raw = raw_extensions(a.cert->tbs_der());
        if (!raw.ok()) return;
        for (const RawExtension& ext : raw.value()) {
          if (ext.oid == asn1::oids::basic_constraints() && !ext.critical) {
            out.push_back("cA=TRUE BasicConstraints is not critical");
          }
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError,
      "e_cert_unknown_critical_extension", "RFC 5280 §4.2",
      "critical extensions outside the supported set break validation",
      [](const Artifact& a, std::vector<std::string>& out) {
        auto raw = raw_extensions(a.cert->tbs_der());
        if (!raw.ok()) return;
        for (const RawExtension& ext : raw.value()) {
          if (ext.critical && !extensions_this_library_understands(ext.oid)) {
            out.push_back("unknown critical extension " + ext.oid.to_string());
          }
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError,
      "e_cert_must_staple_without_ocsp_url", "RFC 7633 §4.2.3.1; paper §4",
      "Must-Staple without an AIA OCSP URL makes the certificate unusable: "
      "no staple can ever be fetched",
      [](const Artifact& a, std::vector<std::string>& out) {
        const x509::Extensions& ext = a.cert->extensions();
        if (ext.must_staple && !ext.supports_ocsp()) {
          out.push_back(
              "TLS Feature requests status_request but AIA carries no OCSP "
              "URL");
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kError, "e_cert_tls_feature_empty",
      "RFC 7633 §3", "a TLS Feature extension must list at least one feature",
      [](const Artifact& a, std::vector<std::string>& out) {
        const auto& features = a.cert->extensions().tls_features;
        if (features && features->empty()) {
          out.push_back("TLS Feature extension is an empty SEQUENCE");
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kWarn,
      "w_cert_tls_feature_without_status_request", "RFC 7633 §4.2.1",
      "a TLS Feature extension without status_request(5) does not request "
      "stapling",
      [](const Artifact& a, std::vector<std::string>& out) {
        const auto& features = a.cert->extensions().tls_features;
        if (features && !features->empty() &&
            std::find(features->begin(), features->end(), 5) ==
                features->end()) {
          std::string listed;
          for (const std::int64_t f : *features) {
            if (!listed.empty()) listed += ",";
            listed += std::to_string(f);
          }
          out.push_back("TLS Feature lists {" + listed +
                        "} but not status_request(5)");
        }
      },
      parsed_cert()));

  registry.add(make_rule(
      ArtifactKind::kCertificate, Severity::kWarn,
      "w_cert_no_revocation_source", "paper §2.1",
      "a leaf without OCSP or CRL pointers cannot be revoked effectively",
      [](const Artifact& a, std::vector<std::string>& out) {
        const x509::Extensions& ext = a.cert->extensions();
        if (ext.is_ca.value_or(false)) return;
        if (!ext.supports_ocsp() && !ext.supports_crl()) {
          out.push_back("no AIA OCSP URL and no CRL Distribution Point");
        }
      },
      parsed_cert()));
}

void add_crl_rules(RuleRegistry& registry) {
  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kFatal, "f_crl_unparseable",
      "RFC 5280 §5.1", "CRL DER must decode",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.crl) out.push_back("CRL does not parse: " + a.parse_error);
      }));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kFatal, "f_crl_window_inverted",
      "RFC 5280 §5.1.2.5", "nextUpdate must not precede thisUpdate",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.crl->next_update() < a.crl->this_update()) {
          out.push_back(util::format(
              "nextUpdate %s precedes thisUpdate %s",
              util::format_time(a.crl->next_update()).c_str(),
              util::format_time(a.crl->this_update()).c_str()));
        }
      },
      parsed_crl()));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kWarn, "w_crl_window_overlong",
      "RFC 5280 §5.1.2.5; paper §5.3",
      "multi-month CRL windows leave revocations invisible for too long",
      [](const Artifact& a, std::vector<std::string>& out) {
        const std::int64_t days =
            (a.crl->next_update() - a.crl->this_update()).seconds / kDay;
        if (days > kMaxWindowDays) {
          out.push_back(util::format("validity window spans %lld days",
                                     static_cast<long long>(days)));
        }
      },
      parsed_crl()));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kError, "e_crl_duplicate_serial",
      "RFC 5280 §5.1.2.6", "a serial must appear at most once per CRL",
      [](const Artifact& a, std::vector<std::string>& out) {
        std::set<std::string> seen;
        for (const crl::RevokedEntry& entry : a.crl->entries()) {
          if (!seen.insert(util::to_hex(entry.serial)).second) {
            out.push_back("serial " + util::to_hex(entry.serial) +
                          " listed more than once");
          }
        }
      },
      parsed_crl()));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kError, "e_crl_entry_after_this_update",
      "RFC 5280 §5.1.2.6",
      "a revocation dated after thisUpdate cannot be in this CRL snapshot",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const crl::RevokedEntry& entry : a.crl->entries()) {
          if (entry.revocation_time > a.crl->this_update()) {
            out.push_back("serial " + util::to_hex(entry.serial) +
                          " revoked after thisUpdate");
          }
        }
      },
      parsed_crl()));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kInfo, "i_crl_empty", "RFC 5280 §5.1.2.6",
      "an empty CRL is valid but worth noting in an audit",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.crl->entries().empty()) out.push_back("CRL lists no serials");
      },
      parsed_crl()));

  registry.add(make_rule(
      ArtifactKind::kCrl, Severity::kWarn, "w_crl_stale",
      "RFC 5280 §5.1.2.5", "nextUpdate has passed at the observation clock",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (*a.context.now > a.crl->next_update()) {
          out.push_back("CRL expired " +
                        util::format_time(a.crl->next_update()));
        }
      },
      [](const Artifact& a) {
        return a.crl.has_value() && a.context.now.has_value();
      }));
}

void add_ocsp_rules(RuleRegistry& registry) {
  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_unparseable",
      "RFC 6960 §4.2.1; paper Fig 5",
      "the body does not decode as an OCSPResponse (the paper's 'ASN.1 "
      "Unparseable' class: empty bodies, the literal '0', JavaScript pages)",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.ocsp) out.push_back("body does not parse: " + a.parse_error);
      }));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kInfo, "i_ocsp_not_successful",
      "RFC 6960 §4.2.1",
      "responseStatus != successful (tryLater, internalError, ...)",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.ocsp->successful()) {
          out.push_back("responseStatus is not successful");
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError,
      "e_ocsp_no_single_responses", "RFC 6960 §4.2.2.1",
      "a successful response must answer for at least one certificate",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.ocsp->successful() && a.ocsp->responses().empty()) {
          out.push_back("successful response carries no SingleResponses");
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_window_inverted",
      "RFC 6960 §4.2.2.1", "nextUpdate must not precede thisUpdate",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          if (single.next_update && *single.next_update < single.this_update) {
            out.push_back(util::format(
                "serial %s: nextUpdate %s precedes thisUpdate %s",
                util::to_hex(single.cert_id.serial).c_str(),
                util::format_time(*single.next_update).c_str(),
                util::format_time(single.this_update).c_str()));
          }
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kWarn,
      "w_ocsp_produced_outside_window", "RFC 6960 §2.4; paper Fig 9",
      "producedAt should satisfy thisUpdate <= producedAt <= nextUpdate",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          const util::SimTime produced = a.ocsp->produced_at();
          if (produced < single.this_update) {
            out.push_back(
                util::format("serial %s: producedAt %s precedes thisUpdate %s",
                             util::to_hex(single.cert_id.serial).c_str(),
                             util::format_time(produced).c_str(),
                             util::format_time(single.this_update).c_str()));
          } else if (single.next_update && produced > *single.next_update) {
            out.push_back(util::format(
                "serial %s: producedAt %s follows nextUpdate %s",
                util::to_hex(single.cert_id.serial).c_str(),
                util::format_time(produced).c_str(),
                util::format_time(*single.next_update).c_str()));
          }
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kWarn, "w_ocsp_blank_next_update",
      "RFC 5019 §2.2.4; paper Fig 8",
      "absent nextUpdate means the response never expires client-side "
      "(9.1% of the paper's responders)",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          if (!single.next_update) {
            out.push_back("serial " + util::to_hex(single.cert_id.serial) +
                          ": nextUpdate is blank");
          }
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kWarn, "w_ocsp_window_overlong",
      "paper §5.3",
      "multi-month response windows defeat timely revocation (2% of the "
      "paper's responders exceed days-long windows)",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          if (!single.next_update) continue;
          const std::int64_t days =
              (*single.next_update - single.this_update).seconds / kDay;
          if (days > kMaxWindowDays) {
            out.push_back(util::format(
                "serial %s: validity window spans %lld days",
                util::to_hex(single.cert_id.serial).c_str(),
                static_cast<long long>(days)));
          }
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_serial_mismatch",
      "RFC 6960 §4.2.2.1; paper Fig 5",
      "no SingleResponse answers for the requested serial ('SerialUnmatch')",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.ocsp->successful()) return;
        if (a.ocsp->find_by_serial(*a.context.requested_serial) == nullptr) {
          out.push_back("requested serial " +
                        util::to_hex(*a.context.requested_serial) +
                        " not answered");
        }
      },
      [](const Artifact& a) {
        return a.ocsp.has_value() && a.context.requested_serial.has_value();
      }));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_bad_signature",
      "RFC 6960 §4.2.1; paper Fig 5",
      "the signature verifies under neither a delegation certificate nor "
      "the issuer key",
      [](const Artifact& a, std::vector<std::string>& out) {
        // Mirror the scanner's order: only a successful response whose
        // requested serial matched gets its signature judged, so this
        // rule's count equals the Fig-5 'Signature' class exactly.
        if (!a.ocsp->successful()) return;
        if (a.context.requested_serial &&
            a.ocsp->find_by_serial(*a.context.requested_serial) == nullptr) {
          return;
        }
        if (!ocsp_signature_ok(*a.ocsp, a.context.issuer->public_key())) {
          out.push_back("signature does not verify");
        }
      },
      [](const Artifact& a) {
        return a.ocsp.has_value() && a.context.issuer != nullptr;
      }));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kWarn, "w_ocsp_nonce_not_echoed",
      "RFC 6960 §4.4.1",
      "the request carried a nonce the response failed to echo (structural "
      "for pre-generated responders)",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (!a.ocsp->successful()) return;
        if (!a.ocsp->nonce() ||
            *a.ocsp->nonce() != *a.context.expected_nonce) {
          out.push_back("request nonce missing from response");
        }
      },
      [](const Artifact& a) {
        return a.ocsp.has_value() && a.context.expected_nonce.has_value();
      }));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kInfo, "i_ocsp_multi_serial",
      "paper Fig 7",
      "unsolicited extra SingleResponses (3.3% of responders pack 20)",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.ocsp->responses().size() > 1) {
          out.push_back(util::format("%zu SingleResponses in one response",
                                     a.ocsp->responses().size()));
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kInfo, "i_ocsp_superfluous_certs",
      "paper Fig 6",
      "more than one embedded certificate (14.5% of responders)",
      [](const Artifact& a, std::vector<std::string>& out) {
        if (a.ocsp->certs().size() > 1) {
          out.push_back(util::format("%zu certificates attached",
                                     a.ocsp->certs().size()));
        }
      },
      parsed_ocsp()));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_stale",
      "RFC 6960 §4.2.2.1", "nextUpdate has passed at the observation clock",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          if (single.next_update && *single.next_update < *a.context.now) {
            out.push_back("serial " + util::to_hex(single.cert_id.serial) +
                          ": response expired " +
                          util::format_time(*single.next_update));
          }
        }
      },
      [](const Artifact& a) {
        return a.ocsp.has_value() && a.context.now.has_value();
      }));

  registry.add(make_rule(
      ArtifactKind::kOcspResponse, Severity::kError, "e_ocsp_premature",
      "RFC 6960 §4.2.2.1; paper Fig 9",
      "thisUpdate is in the observer's future (the premature class of "
      "Fig 9; 3% of responders)",
      [](const Artifact& a, std::vector<std::string>& out) {
        for (const ocsp::SingleResponse& single : a.ocsp->responses()) {
          if (single.this_update > *a.context.now) {
            out.push_back("serial " + util::to_hex(single.cert_id.serial) +
                          ": thisUpdate " +
                          util::format_time(single.this_update) +
                          " is in the future");
          }
        }
      },
      [](const Artifact& a) {
        return a.ocsp.has_value() && a.context.now.has_value();
      }));
}

void add_cross_rules(RuleRegistry& registry) {
  const auto pair_ready = [](const Artifact& a) {
    return a.kind == ArtifactKind::kCrlOcspPair && a.ocsp.has_value() &&
           a.context.crl != nullptr && a.context.requested_serial.has_value();
  };

  registry.add(make_rule(
      ArtifactKind::kCrlOcspPair, Severity::kError,
      "e_xcheck_crl_revoked_ocsp_good", "paper Table 1",
      "the CA's own CRL lists the serial as revoked but its OCSP responder "
      "answers Good",
      [](const Artifact& a, std::vector<std::string>& out) {
        const Bytes& serial = *a.context.requested_serial;
        if (a.context.crl->find(serial) == nullptr) return;
        const ocsp::SingleResponse* single = a.ocsp->find_by_serial(serial);
        if (single != nullptr && single->status == ocsp::CertStatus::kGood) {
          out.push_back("serial " + util::to_hex(serial) +
                        ": CRL says revoked, OCSP says good");
        }
      },
      pair_ready));

  registry.add(make_rule(
      ArtifactKind::kCrlOcspPair, Severity::kError,
      "e_xcheck_crl_revoked_ocsp_unknown", "paper Table 1",
      "the CA's own CRL lists the serial as revoked but its OCSP responder "
      "answers Unknown",
      [](const Artifact& a, std::vector<std::string>& out) {
        const Bytes& serial = *a.context.requested_serial;
        if (a.context.crl->find(serial) == nullptr) return;
        const ocsp::SingleResponse* single = a.ocsp->find_by_serial(serial);
        if (single != nullptr &&
            single->status == ocsp::CertStatus::kUnknown) {
          out.push_back("serial " + util::to_hex(serial) +
                        ": CRL says revoked, OCSP says unknown");
        }
      },
      pair_ready));

  registry.add(make_rule(
      ArtifactKind::kCrlOcspPair, Severity::kWarn,
      "w_xcheck_revocation_time_differs", "paper Fig 10",
      "both channels say revoked but disagree on when (0.15% of the "
      "paper's pairs, up to 4+ years apart)",
      [](const Artifact& a, std::vector<std::string>& out) {
        const Bytes& serial = *a.context.requested_serial;
        const crl::RevokedEntry* entry = a.context.crl->find(serial);
        if (entry == nullptr) return;
        const ocsp::SingleResponse* single = a.ocsp->find_by_serial(serial);
        if (single == nullptr || single->status != ocsp::CertStatus::kRevoked ||
            !single->revoked) {
          return;
        }
        const std::int64_t delta =
            (single->revoked->revocation_time - entry->revocation_time)
                .seconds;
        if (delta != 0) {
          out.push_back(util::format(
              "serial %s: OCSP revocation time differs by %llds",
              util::to_hex(serial).c_str(), static_cast<long long>(delta)));
        }
      },
      pair_ready));

  registry.add(make_rule(
      ArtifactKind::kCrlOcspPair, Severity::kWarn,
      "w_xcheck_reason_code_differs", "paper §5.4",
      "revocation reason disagrees between CRL and OCSP (99.99% of the "
      "paper's differing pairs: CRL has one, OCSP dropped it)",
      [](const Artifact& a, std::vector<std::string>& out) {
        const Bytes& serial = *a.context.requested_serial;
        const crl::RevokedEntry* entry = a.context.crl->find(serial);
        if (entry == nullptr) return;
        const ocsp::SingleResponse* single = a.ocsp->find_by_serial(serial);
        if (single == nullptr || single->status != ocsp::CertStatus::kRevoked ||
            !single->revoked) {
          return;
        }
        const bool crl_has = entry->reason.has_value();
        const bool ocsp_has = single->revoked->reason.has_value();
        if (crl_has != ocsp_has ||
            (crl_has && *entry->reason != *single->revoked->reason)) {
          out.push_back("serial " + util::to_hex(serial) +
                        ": revocation reason disagrees" +
                        (crl_has && !ocsp_has ? " (OCSP dropped it)" : ""));
        }
      },
      pair_ready));
}

}  // namespace

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry* const kRegistry = [] {
    auto* registry = new RuleRegistry();
    add_certificate_rules(*registry);
    add_crl_rules(*registry);
    add_ocsp_rules(*registry);
    add_cross_rules(*registry);
    return registry;
  }();
  return *kRegistry;
}

}  // namespace mustaple::lint
