// Web-server OCSP Stapling models, implementing the exact behaviours the
// paper measured in §7.2 (Table 3):
//
//                       | Apache 2.4.18        | Nginx 1.13.12        | Ideal
//   Prefetch response   | no (pauses conn.)    | no (no staple first) | yes
//   Cache response      | yes                  | yes                  | yes
//   Respect nextUpdate  | no (serves expired)  | yes                  | yes
//   Retain on error     | no (deletes/serves   | yes (serves valid    | yes
//                       |  the error response) |  response til expiry)|
//
// plus Nginx's 5-minute refresh floor (footnote 28: with a validity period
// under 5 minutes clients can receive an expired cached response) and the
// "Ideal" model implementing the paper's §8 recommendation 2 — proactive
// periodic prefetch — as the ablation baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/socket_server.hpp"
#include "util/mutex.hpp"
#include "ocsp/response.hpp"
#include "tls/handshake.hpp"
#include "x509/certificate.hpp"

namespace mustaple::webserver {

enum class Software : std::uint8_t {
  kApache,
  kNginx,
  kIdeal,
};

const char* to_string(Software software);

struct WebServerConfig {
  Software software = Software::kApache;
  /// SSLUseStapling / ssl_stapling: both servers ship with stapling OFF by
  /// default (paper footnote 26).
  bool stapling_enabled = true;
  /// Apache's staple cache TTL — refreshed on this cadence regardless of
  /// the response's nextUpdate.
  util::Duration apache_cache_ttl = util::Duration::hours(1);
  /// Nginx refresh floor (footnote 28).
  util::Duration nginx_refresh_floor = util::Duration::minutes(5);
  /// Ideal model: refresh when this fraction of the validity has elapsed.
  double ideal_refresh_fraction = 0.5;
  /// Region the server is hosted in (affects OCSP fetch latency).
  net::Region region = net::Region::kVirginia;
  /// RFC 6961 multi-stapling (Ideal model only — the paper notes no 2018
  /// server software shipped it). Requires enable_multi_staple() with the
  /// intermediate's issuing root so the chain CertID can be formed.
  bool multi_staple = false;
  /// Verify fetched responses (signature + serial) before caching them —
  /// nginx's ssl_stapling_verify, which ships OFF: by default real servers
  /// happily staple garbage the responder hands them.
  bool verify_staple = false;
};

/// A simulated web server for one domain: owns the certificate chain and a
/// staple cache, fetches OCSP responses over the simulated network, and
/// answers TLS handshakes.
class WebServer {
 public:
  WebServer(std::string domain, std::vector<x509::Certificate> chain,
            WebServerConfig config, net::Network& network);

  const std::string& domain() const { return domain_; }
  const WebServerConfig& config() const { return config_; }
  const x509::Certificate& leaf() const { return chain_.front(); }

  /// Binds this server into a TLS directory under its domain.
  void install(tls::TlsDirectory& directory);

  /// TLS handshake entry point.
  tls::ServerHello handshake(const tls::ClientHello& hello, util::SimTime now);

  /// HTTP view of this server for real-socket serving:
  ///   /        text status page (software, stapling config, cache state)
  ///   /staple  runs a stapling handshake, serves the staple DER (404 when
  ///            the model has nothing to staple — that IS the finding)
  ///   /chain   the certificate chain, DER certificates concatenated
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                util::SimTime now);

  /// Adapts handle_http() to a net::SocketServer listener. A WebServer is
  /// NOT thread-safe (handshakes mutate the staple cache), so the returned
  /// handler serializes every request on an internal mutex. The server must
  /// outlive the handler.
  net::WireHandler wire_handler(std::function<util::SimTime()> clock);

  /// Ideal model: perform the startup prefetch and schedule refreshes on
  /// the network's event loop. No-op for Apache/Nginx (they don't
  /// prefetch — that is the finding).
  void start(util::SimTime now);

  /// Provides the root certificate that issued this chain's intermediate,
  /// unlocking RFC 6961 multi-staple fetches for the whole chain.
  void enable_multi_staple(x509::Certificate root);

  /// Introspection for tests/benches.
  bool has_cached_staple() const { return cache_.has_value(); }
  std::optional<util::SimTime> cached_expiry() const {
    return cache_ ? cache_->expiry : std::nullopt;
  }
  std::size_t fetch_count() const { return fetch_count_; }

 private:
  struct CacheEntry {
    util::Bytes der;
    std::optional<util::SimTime> expiry;  ///< from nextUpdate; nullopt = blank
    util::SimTime fetched_at{};
    bool is_error_response = false;  ///< parsed but responseStatus != successful
  };

  struct FetchOutcome {
    bool transport_ok = false;
    std::optional<CacheEntry> entry;  ///< set when a parseable body came back
    double latency_ms = 0.0;
  };

  FetchOutcome fetch_staple(util::SimTime now);
  tls::ServerHello hello_with(std::optional<util::Bytes> staple,
                              double delay_ms) const;
  void schedule_ideal_refresh(util::SimTime now);

  tls::ServerHello handshake_apache(bool wants_staple, util::SimTime now);
  tls::ServerHello handshake_nginx(bool wants_staple, util::SimTime now);
  tls::ServerHello handshake_ideal(bool wants_staple, util::SimTime now);

  std::string domain_;
  std::vector<x509::Certificate> chain_;
  WebServerConfig config_;
  net::Network* network_;
  std::optional<net::Url> ocsp_url_;

  FetchOutcome fetch_chain_staple(util::SimTime now);

  std::optional<CacheEntry> cache_;
  /// RFC 6961: the staple for chain[1] (the intermediate).
  std::optional<CacheEntry> chain_cache_;
  std::optional<x509::Certificate> multi_staple_root_;
  std::optional<util::SimTime> last_fetch_attempt_;
  std::size_t fetch_count_ = 0;
  bool ideal_refresh_scheduled_ = false;
  /// Serializes wire_handler() requests (the guarded state is the whole
  /// server, so no per-field GUARDED_BY applies). Heap-held so WebServer
  /// stays movable (the analysis suites move servers into vectors).
  std::unique_ptr<util::Mutex> http_mu_ = std::make_unique<util::Mutex>();
};

}  // namespace mustaple::webserver
