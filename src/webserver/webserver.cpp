#include "webserver/webserver.hpp"

#include "obs/obs.hpp"
#include "ocsp/request.hpp"
#include "ocsp/verify.hpp"

namespace mustaple::webserver {

const char* to_string(Software software) {
  switch (software) {
    case Software::kApache:
      return "apache";
    case Software::kNginx:
      return "nginx";
    case Software::kIdeal:
      return "ideal";
  }
  return "?";
}

WebServer::WebServer(std::string domain, std::vector<x509::Certificate> chain,
                     WebServerConfig config, net::Network& network)
    : domain_(std::move(domain)),
      chain_(std::move(chain)),
      config_(config),
      network_(&network) {
  if (chain_.empty()) {
    throw std::invalid_argument("WebServer: empty certificate chain");
  }
  const auto& urls = chain_.front().extensions().ocsp_urls;
  if (!urls.empty()) {
    auto parsed = net::parse_url(urls.front());
    if (parsed.ok()) ocsp_url_ = parsed.value();
  }
}

void WebServer::install(tls::TlsDirectory& directory) {
  directory.bind(domain_,
                 [this](const tls::ClientHello& hello, util::SimTime now) {
                   return handshake(hello, now);
                 });
}

tls::ServerHello WebServer::hello_with(std::optional<util::Bytes> staple,
                                       double delay_ms) const {
  tls::ServerHello hello;
  hello.chain = chain_;
  hello.stapled_ocsp = std::move(staple);
  hello.extra_delay_ms = delay_ms;
  return hello;
}

WebServer::FetchOutcome WebServer::fetch_staple(util::SimTime now) {
  FetchOutcome outcome;
  last_fetch_attempt_ = now;
  ++fetch_count_;
  if (!ocsp_url_) return outcome;

  // Build a real OCSPRequest for the leaf (issuer = next chain element).
  const x509::Certificate& issuer = chain_.size() > 1 ? chain_[1] : chain_[0];
  const auto id = ocsp::CertId::for_certificate(chain_.front(), issuer);
  const auto request = ocsp::OcspRequest::single(id);

  net::FetchResult result = network_->http_post(
      config_.region, *ocsp_url_, request.encode_der(),
      "application/ocsp-request");
  outcome.latency_ms = result.latency_ms;
  const bool transport_ok = result.error == net::TransportError::kNone &&
                            result.response.status_code == 200;
  MUSTAPLE_TRACE_INSTANT("staple-fetch", "webserver", now,
                         static_cast<std::uint32_t>(config_.region),
                         {"domain", domain_},
                         {"outcome", transport_ok ? "ok" : "fail"});
  if (!transport_ok) {
    return outcome;  // transport_ok stays false
  }
  outcome.transport_ok = true;

  auto parsed = ocsp::OcspResponse::parse(result.response.body);
  if (!parsed.ok()) return outcome;  // unparseable body: nothing cacheable

  // ssl_stapling_verify: refuse to cache a response that would not pass the
  // client's own checks (wrong serial, bad signature). Off by default, as
  // it is in the wild.
  if (config_.verify_staple && parsed.value().successful()) {
    const x509::Certificate& issuer = chain_.size() > 1 ? chain_[1] : chain_[0];
    const auto verdict = ocsp::verify_ocsp_response_static(
        result.response.body,
        ocsp::CertId::for_certificate(chain_.front(), issuer),
        issuer.public_key());
    if (verdict.outcome != ocsp::CheckOutcome::kOk) return outcome;
  }

  CacheEntry entry;
  entry.der = result.response.body;
  entry.fetched_at = now;
  entry.is_error_response = !parsed.value().successful();
  if (!entry.is_error_response) {
    const auto* single =
        parsed.value().find_by_serial(chain_.front().serial());
    if (single != nullptr) entry.expiry = single->next_update;
  }
  outcome.entry = std::move(entry);
  return outcome;
}

void WebServer::enable_multi_staple(x509::Certificate root) {
  multi_staple_root_ = std::move(root);
  config_.multi_staple = true;
}

WebServer::FetchOutcome WebServer::fetch_chain_staple(util::SimTime now) {
  FetchOutcome outcome;
  if (!ocsp_url_ || chain_.size() < 2 || !multi_staple_root_) return outcome;
  // CertID for the INTERMEDIATE, issued by the root.
  const auto id =
      ocsp::CertId::for_certificate(chain_[1], *multi_staple_root_);
  const auto request = ocsp::OcspRequest::single(id);
  net::FetchResult result = network_->http_post(
      config_.region, *ocsp_url_, request.encode_der(),
      "application/ocsp-request");
  outcome.latency_ms = result.latency_ms;
  if (result.error != net::TransportError::kNone ||
      result.response.status_code != 200) {
    return outcome;
  }
  outcome.transport_ok = true;
  auto parsed = ocsp::OcspResponse::parse(result.response.body);
  if (!parsed.ok()) return outcome;
  CacheEntry entry;
  entry.der = result.response.body;
  entry.fetched_at = now;
  entry.is_error_response = !parsed.value().successful();
  if (!entry.is_error_response) {
    const auto* single = parsed.value().find_by_serial(chain_[1].serial());
    if (single != nullptr) entry.expiry = single->next_update;
  }
  outcome.entry = std::move(entry);
  return outcome;
}

tls::ServerHello WebServer::handshake(const tls::ClientHello& hello,
                                      util::SimTime now) {
  const bool wants_staple = hello.status_request && config_.stapling_enabled;
  tls::ServerHello response;
  switch (config_.software) {
    case Software::kApache:
      response = handshake_apache(wants_staple, now);
      break;
    case Software::kNginx:
      response = handshake_nginx(wants_staple, now);
      break;
    case Software::kIdeal:
      response = handshake_ideal(wants_staple, now);
      break;
  }
  // RFC 6961 ocsp_multi: only when the client advertised v2 and this server
  // supports it (Ideal only).
  if (hello.status_request_v2 && config_.multi_staple &&
      config_.software == Software::kIdeal && config_.stapling_enabled) {
    util::Bytes leaf_staple;
    if (cache_ && !cache_->is_error_response &&
        !(cache_->expiry && *cache_->expiry < now)) {
      leaf_staple = cache_->der;
    }
    util::Bytes chain_staple;
    if (chain_cache_ && !chain_cache_->is_error_response &&
        !(chain_cache_->expiry && *chain_cache_->expiry < now)) {
      chain_staple = chain_cache_->der;
    }
    response.stapled_ocsp_list = {leaf_staple, chain_staple};
  }
  return response;
}

net::HttpResponse WebServer::handle_http(const net::HttpRequest& request,
                                         util::SimTime now) {
  if (request.method != "GET") {
    return net::HttpResponse::make(405, "Method Not Allowed",
                                   util::bytes_of("GET only\n"), "text/plain");
  }
  if (request.path == "/") {
    std::string body = domain_;
    body += " (";
    body += to_string(config_.software);
    body += ")\n";
    body += "stapling:      ";
    body += config_.stapling_enabled ? "enabled" : "disabled";
    body += "\n";
    body += "staple cached: ";
    body += cache_ ? "yes" : "no";
    body += "\n";
    body += "ocsp fetches:  " + std::to_string(fetch_count_) + "\n";
    return net::HttpResponse::make(200, "OK", util::bytes_of(body),
                                   "text/plain");
  }
  if (request.path == "/staple") {
    // A real stapling handshake, surfaced over HTTP: whatever this server
    // model would hand a TLS client right now — including nothing, which is
    // exactly the Table 3 pathology being reproduced.
    tls::ClientHello hello;
    hello.server_name = domain_;
    hello.status_request = true;
    const tls::ServerHello reply = handshake(hello, now);
    if (!reply.stapled_ocsp) {
      return net::HttpResponse::make(404, "Not Found",
                                     util::bytes_of("no staple\n"),
                                     "text/plain");
    }
    return net::HttpResponse::make(200, "OK", *reply.stapled_ocsp,
                                   "application/ocsp-response");
  }
  if (request.path == "/chain") {
    util::Bytes der;
    for (const auto& cert : chain_) util::append(der, cert.encode_der());
    return net::HttpResponse::make(200, "OK", std::move(der),
                                   "application/pkix-cert");
  }
  return net::HttpResponse::make(404, "Not Found",
                                 util::bytes_of("not found\n"), "text/plain");
}

net::WireHandler WebServer::wire_handler(std::function<util::SimTime()> clock) {
  return [this, clock = std::move(clock)](const net::HttpRequest& request) {
    util::MutexLock lock(*http_mu_);
    return handle_http(request, clock());
  };
}

// ---------------------------------------------------------------------------
// Apache: on-demand fetch that PAUSES the handshake; cache refreshed on its
// own TTL regardless of nextUpdate (serves expired responses); on a refresh
// error the old response is deleted and any OCSP *error response* from the
// responder is stapled to clients.
// ---------------------------------------------------------------------------
tls::ServerHello WebServer::handshake_apache(bool wants_staple,
                                             util::SimTime now) {
  if (!wants_staple) return hello_with(std::nullopt, 0.0);

  const bool cache_fresh =
      cache_ && (now - cache_->fetched_at) < config_.apache_cache_ttl;
  if (cache_fresh) {
    // NOTE: no nextUpdate check — the Table 3 "respect nextUpdate: no" bug
    // (Apache Bugzilla #62400, reported by the authors).
    return hello_with(cache_->der, 0.0);
  }

  // Fetch on demand, pausing this client's handshake.
  FetchOutcome outcome = fetch_staple(now);
  if (outcome.entry && !outcome.entry->is_error_response) {
    cache_ = outcome.entry;
    return hello_with(cache_->der, outcome.latency_ms);
  }
  // Error path: delete the old (possibly still valid) response.
  cache_.reset();
  if (outcome.entry && outcome.entry->is_error_response) {
    // Apache staples the responder's error response itself.
    return hello_with(outcome.entry->der, outcome.latency_ms);
  }
  return hello_with(std::nullopt, outcome.latency_ms);
}

// ---------------------------------------------------------------------------
// Nginx: no prefetch — the first client gets NO staple while the fetch
// happens in the background; the cache respects nextUpdate; refreshes are
// rate-limited to one per 5 minutes (so sub-5-minute validity periods can
// leak expired responses); on refresh error the old response is retained
// and served until it expires.
// ---------------------------------------------------------------------------
tls::ServerHello WebServer::handshake_nginx(bool wants_staple,
                                            util::SimTime now) {
  if (!wants_staple) return hello_with(std::nullopt, 0.0);

  const bool throttled =
      last_fetch_attempt_ &&
      (now - *last_fetch_attempt_) < config_.nginx_refresh_floor;

  if (cache_ && !cache_->is_error_response) {
    const bool expired = cache_->expiry && *cache_->expiry < now;
    if (!expired) return hello_with(cache_->der, 0.0);
    if (throttled) {
      // Footnote 28: within the refresh floor an EXPIRED cached response is
      // still handed to clients.
      return hello_with(cache_->der, 0.0);
    }
    // Expired and allowed to refresh: background fetch; this client gets
    // nothing this round if the fetch fails.
    FetchOutcome outcome = fetch_staple(now);
    if (outcome.entry && !outcome.entry->is_error_response) {
      cache_ = outcome.entry;
      return hello_with(cache_->der, 0.0);
    }
    // Retain the (expired) entry for throttle bookkeeping; staple nothing.
    return hello_with(std::nullopt, 0.0);
  }

  // Cold cache: first client never gets a staple; trigger background fetch.
  if (!throttled) {
    FetchOutcome outcome = fetch_staple(now);
    if (outcome.entry && !outcome.entry->is_error_response) {
      cache_ = outcome.entry;  // available from the NEXT handshake on
    }
  }
  return hello_with(std::nullopt, 0.0);
}

// ---------------------------------------------------------------------------
// Ideal (paper §8 recommendation 2): prefetch at startup, refresh halfway
// through the validity period via the event loop, retain valid responses on
// error, never staple expired responses, never delay a handshake.
// ---------------------------------------------------------------------------
void WebServer::start(util::SimTime now) {
  if (config_.software != Software::kIdeal || !config_.stapling_enabled) return;
  // Give this server's refresh chain its own trace identity: the EventLoop
  // captures it at every schedule_after below, so the whole four-month chain
  // of background refreshes shares one trace id in the exported trace.
  MUSTAPLE_TRACE_SCOPE(trace_scope,
                       (obs::TraceContext{obs::next_trace_id(), 0}));
  FetchOutcome outcome = fetch_staple(now);
  if (outcome.entry && !outcome.entry->is_error_response) {
    cache_ = outcome.entry;
  }
  if (config_.multi_staple) {
    FetchOutcome chain_outcome = fetch_chain_staple(now);
    if (chain_outcome.entry && !chain_outcome.entry->is_error_response) {
      chain_cache_ = chain_outcome.entry;
    }
  }
  schedule_ideal_refresh(now);
}

void WebServer::schedule_ideal_refresh(util::SimTime now) {
  util::Duration delay = util::Duration::minutes(10);  // retry cadence
  if (cache_ && cache_->expiry) {
    const util::Duration validity = *cache_->expiry - cache_->fetched_at;
    const auto refresh_after = static_cast<std::int64_t>(
        static_cast<double>(validity.seconds) * config_.ideal_refresh_fraction);
    const util::SimTime refresh_at =
        cache_->fetched_at + util::Duration::secs(refresh_after);
    delay = refresh_at > now ? refresh_at - now : util::Duration::minutes(1);
  }
  network_->loop().schedule_after(delay, [this] {
    const util::SimTime when = network_->now();
    FetchOutcome outcome = fetch_staple(when);
    if (outcome.entry && !outcome.entry->is_error_response) {
      cache_ = outcome.entry;  // on error: retain the old response
    }
    if (config_.multi_staple) {
      FetchOutcome chain_outcome = fetch_chain_staple(when);
      if (chain_outcome.entry && !chain_outcome.entry->is_error_response) {
        chain_cache_ = chain_outcome.entry;
      }
    }
    schedule_ideal_refresh(when);
  });
}

tls::ServerHello WebServer::handshake_ideal(bool wants_staple,
                                            util::SimTime now) {
  if (!wants_staple) return hello_with(std::nullopt, 0.0);
  if (cache_ && !cache_->is_error_response) {
    const bool expired = cache_->expiry && *cache_->expiry < now;
    if (!expired) return hello_with(cache_->der, 0.0);
  }
  return hello_with(std::nullopt, 0.0);
}

}  // namespace mustaple::webserver
