#include "ocsp/request.hpp"

#include "asn1/der.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"

namespace mustaple::ocsp {

namespace {
using asn1::Reader;
using asn1::Tag;
using asn1::Writer;
using util::Result;
}  // namespace

void encode_cert_id(Writer& w, const CertId& id) {
  w.sequence([&](Writer& cid) {
    cid.sequence([&](Writer& alg) {
      alg.oid(asn1::oids::sha1());
      alg.null();
    });
    cid.octet_string(id.issuer_name_hash);
    cid.octet_string(id.issuer_key_hash);
    cid.integer_bytes(id.serial);
  });
}

util::Result<CertId> decode_cert_id(Reader& r) {
  using R = Result<CertId>;
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return R::failure(seq.error().code, "certID");
  Reader body(seq.value().content);
  auto alg = body.expect_view(Tag::kSequence);
  if (!alg.ok()) return R::failure(alg.error().code, "certID alg");
  CertId id;
  auto name_hash = body.read_octet_string_view();
  if (!name_hash.ok()) return R::failure(name_hash.error().code, "nameHash");
  id.issuer_name_hash = name_hash.value().to_bytes();
  auto key_hash = body.read_octet_string_view();
  if (!key_hash.ok()) return R::failure(key_hash.error().code, "keyHash");
  id.issuer_key_hash = key_hash.value().to_bytes();
  auto serial = body.read_integer_bytes_view();
  if (!serial.ok()) return R::failure(serial.error().code, "serial");
  id.serial = serial.value().to_bytes();
  return id;
}

util::Bytes OcspRequest::encode_der() const {
  Writer w;
  w.sequence([&](Writer& request) {
    request.sequence([&](Writer& tbs) {       // TBSRequest
      tbs.sequence([&](Writer& list) {        // requestList
        for (const auto& id : cert_ids_) {
          list.sequence([&](Writer& single) {  // Request
            encode_cert_id(single, id);
          });
        }
      });
      if (nonce_) {
        // [2] EXPLICIT requestExtensions.
        tbs.explicit_context(2, [&](Writer& wrapper) {
          wrapper.sequence([&](Writer& exts) {
            exts.sequence([&](Writer& ext) {
              ext.oid(asn1::oids::ocsp_nonce());
              ext.octet_string(*nonce_);
            });
          });
        });
      }
    });
  });
  return w.take();
}

util::Result<OcspRequest> OcspRequest::parse(const util::Bytes& der) {
  using R = Result<OcspRequest>;
  Reader top(der);
  auto outer = top.expect_view(Tag::kSequence);
  if (!outer.ok()) return R::failure(outer.error().code, "OCSPRequest");
  Reader req(outer.value().content);
  auto tbs = req.expect_view(Tag::kSequence);
  if (!tbs.ok()) return R::failure(tbs.error().code, "TBSRequest");
  Reader tbs_reader(tbs.value().content);
  auto list = tbs_reader.expect_view(Tag::kSequence);
  if (!list.ok()) return R::failure(list.error().code, "requestList");
  Reader list_reader(list.value().content);
  std::vector<CertId> ids;
  while (!list_reader.at_end()) {
    auto single = list_reader.expect_view(Tag::kSequence);
    if (!single.ok()) return R::failure(single.error().code, "Request");
    Reader single_reader(single.value().content);
    auto id = decode_cert_id(single_reader);
    if (!id.ok()) return R::failure(id.error().code, id.error().detail);
    ids.push_back(id.value());
  }
  if (ids.empty()) return R::failure("ocsp.request.empty", "no CertIDs");
  OcspRequest request(std::move(ids));

  // Optional [2] requestExtensions: pick out the nonce.
  if (!tbs_reader.at_end() &&
      tbs_reader.peek_tag() == asn1::context_tag(2, /*constructed=*/true)) {
    auto wrapper = tbs_reader.expect_context_view(2, true);
    if (!wrapper.ok()) return R::failure(wrapper.error().code, "extensions");
    Reader ext_outer(wrapper.value().content);
    auto exts = ext_outer.expect_view(Tag::kSequence);
    if (!exts.ok()) return R::failure(exts.error().code, "extensions");
    Reader exts_reader(exts.value().content);
    while (!exts_reader.at_end()) {
      auto ext = exts_reader.expect_view(Tag::kSequence);
      if (!ext.ok()) return R::failure(ext.error().code, "extension");
      Reader ext_reader(ext.value().content);
      auto oid = ext_reader.read_oid();
      if (!oid.ok()) return R::failure(oid.error().code, "extension oid");
      auto value = ext_reader.read_octet_string_view();
      if (!value.ok()) return R::failure(value.error().code, "extension value");
      if (oid.value() == asn1::oids::ocsp_nonce()) {
        request.set_nonce(value.value().to_bytes());
      }
    }
  }
  return request;
}

std::string OcspRequest::encode_get_path() const {
  return "/" + util::base64url_encode(encode_der());
}

util::Result<OcspRequest> OcspRequest::parse_get_path(const std::string& path) {
  using R = Result<OcspRequest>;
  if (path.empty() || path[0] != '/') {
    return R::failure("ocsp.get.bad_path", path);
  }
  // RFC 6960 Appendix A.1: the path segment is the base64 request
  // "URL-encoded" — real clients escape '+', '/', and '=' as %2B/%2F/%3D,
  // so the escapes must be undone BEFORE base64 decoding. A malformed
  // escape ("%GZ", truncated "%A") is a bad request outright; decoded
  // garbage like "%00" passes through here and is rejected by the base64
  // layer below.
  auto decoded = util::percent_decode(path.substr(1));
  if (!decoded.ok()) {
    return R::failure("ocsp.get.bad_escape", decoded.error().detail);
  }
  const std::string encoded = std::move(decoded).take();
  auto der = util::base64url_decode(encoded);
  if (!der.ok()) {
    // Real clients often use standard base64 in GET paths; accept both.
    der = util::base64_decode(encoded);
    if (!der.ok()) return R::failure(der.error().code, "GET path");
  }
  return parse(der.value());
}

}  // namespace mustaple::ocsp
