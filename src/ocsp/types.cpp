#include "ocsp/types.hpp"

#include "asn1/der.hpp"
#include "crypto/sha1.hpp"

namespace mustaple::ocsp {

CertId CertId::for_certificate(const x509::Certificate& subject,
                               const x509::Certificate& issuer) {
  asn1::Writer issuer_name;
  issuer.subject().encode(issuer_name);
  CertId id;
  id.issuer_name_hash = crypto::Sha1::hash(issuer_name.bytes());
  id.issuer_key_hash = crypto::Sha1::hash(issuer.public_key().encode());
  id.serial = subject.serial();
  return id;
}

const char* to_string(CertStatus status) {
  switch (status) {
    case CertStatus::kGood:
      return "good";
    case CertStatus::kRevoked:
      return "revoked";
    case CertStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kSuccessful:
      return "successful";
    case ResponseStatus::kMalformedRequest:
      return "malformedRequest";
    case ResponseStatus::kInternalError:
      return "internalError";
    case ResponseStatus::kTryLater:
      return "tryLater";
    case ResponseStatus::kSigRequired:
      return "sigRequired";
    case ResponseStatus::kUnauthorized:
      return "unauthorized";
  }
  return "?";
}

}  // namespace mustaple::ocsp
