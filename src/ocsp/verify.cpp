#include "ocsp/verify.hpp"

namespace mustaple::ocsp {

const char* to_string(CheckOutcome outcome) {
  switch (outcome) {
    case CheckOutcome::kOk:
      return "ok";
    case CheckOutcome::kUnparseable:
      return "asn1-unparseable";
    case CheckOutcome::kNotSuccessful:
      return "not-successful";
    case CheckOutcome::kSerialMismatch:
      return "serial-mismatch";
    case CheckOutcome::kBadSignature:
      return "bad-signature";
    case CheckOutcome::kNotYetValid:
      return "not-yet-valid";
    case CheckOutcome::kExpired:
      return "expired";
    case CheckOutcome::kNonceMismatch:
      return "nonce-mismatch";
  }
  return "?";
}

VerifiedResponse verify_ocsp_response_static(
    const util::Bytes& raw_body, const CertId& requested,
    const crypto::PublicKey& issuer_key,
    const std::optional<util::Bytes>& expected_nonce) {
  VerifiedResponse out;

  auto parsed = OcspResponse::parse(raw_body);
  if (!parsed.ok()) {
    out.outcome = CheckOutcome::kUnparseable;
    out.error_code = parsed.error().code;
    return out;
  }
  const OcspResponse response = std::move(parsed).take();

  if (!response.successful()) {
    out.outcome = CheckOutcome::kNotSuccessful;
    out.error_code = to_string(response.response_status());
    return out;
  }

  out.num_certs = response.certs().size();
  out.num_serials = response.responses().size();
  out.produced_at = response.produced_at();

  const SingleResponse* single = response.find_by_serial(requested.serial);
  if (single == nullptr) {
    out.outcome = CheckOutcome::kSerialMismatch;
    return out;
  }
  out.status = single->status;
  out.revoked = single->revoked;
  out.this_update = single->this_update;
  out.next_update = single->next_update;

  // Signature: first try OCSP Signature Authority Delegation — a certificate
  // embedded in the response, itself signed by the issuer (paper §2.2) —
  // then fall back to the issuer key directly.
  bool signature_ok = false;
  for (const auto& cert : response.certs()) {
    if (!cert.verify_signature(issuer_key)) continue;  // not a delegation cert
    if (response.verify_signature(cert.public_key())) {
      signature_ok = true;
      break;
    }
  }
  if (!signature_ok) {
    signature_ok = response.verify_signature(issuer_key);
  }
  if (!signature_ok) {
    out.outcome = CheckOutcome::kBadSignature;
    return out;
  }

  // Strict-nonce policy: a client that sent a nonce expects it echoed.
  if (expected_nonce &&
      (!response.nonce() || *response.nonce() != *expected_nonce)) {
    out.outcome = CheckOutcome::kNonceMismatch;
    return out;
  }

  out.outcome = CheckOutcome::kOk;  // clock-dependent checks still pending
  return out;
}

VerifiedResponse apply_time_checks(VerifiedResponse static_result,
                                   util::SimTime now) {
  if (static_result.outcome != CheckOutcome::kOk) return static_result;
  // Validity window against the client clock. A missing nextUpdate means the
  // response is "technically always regarded as valid" (paper §5.4).
  if (static_result.this_update > now) {
    static_result.outcome = CheckOutcome::kNotYetValid;
    return static_result;
  }
  if (static_result.next_update && *static_result.next_update < now) {
    static_result.outcome = CheckOutcome::kExpired;
    return static_result;
  }
  return static_result;
}

VerifiedResponse verify_ocsp_response(const util::Bytes& raw_body,
                                      const CertId& requested,
                                      const crypto::PublicKey& issuer_key,
                                      util::SimTime now) {
  return apply_time_checks(
      verify_ocsp_response_static(raw_body, requested, issuer_key), now);
}

}  // namespace mustaple::ocsp
