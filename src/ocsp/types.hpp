// Shared OCSP data types (RFC 6960 profile).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crl/crl.hpp"
#include "util/bytes.hpp"
#include "util/sim_time.hpp"
#include "x509/certificate.hpp"

namespace mustaple::ocsp {

/// CertID: identifies the certificate whose status is requested. Per RFC
/// 6960 it carries a hash of the issuer's name and key plus the serial —
/// "so that CAs can verify that they issued the certificate before
/// responding" (paper §2.2).
struct CertId {
  util::Bytes issuer_name_hash;  ///< SHA-1 of issuer DN (DER)
  util::Bytes issuer_key_hash;   ///< SHA-1 of issuer public key bytes
  util::Bytes serial;

  /// Derives the CertID for `subject` issued by `issuer`.
  static CertId for_certificate(const x509::Certificate& subject,
                                const x509::Certificate& issuer);

  friend bool operator==(const CertId&, const CertId&) = default;
};

/// certStatus values (paper §2.2).
enum class CertStatus : std::uint8_t {
  kGood = 0,
  kRevoked = 1,
  kUnknown = 2,
};

const char* to_string(CertStatus status);

/// Revocation detail attached to a Revoked status.
struct RevokedInfo {
  util::SimTime revocation_time{};
  std::optional<crl::ReasonCode> reason;
};

/// Top-level OCSPResponse responseStatus (RFC 6960 §4.2.1).
enum class ResponseStatus : std::uint8_t {
  kSuccessful = 0,
  kMalformedRequest = 1,
  kInternalError = 2,
  kTryLater = 3,
  kSigRequired = 5,
  kUnauthorized = 6,
};

const char* to_string(ResponseStatus status);

}  // namespace mustaple::ocsp
