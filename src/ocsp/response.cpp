#include "ocsp/response.hpp"

#include <algorithm>

#include "asn1/der.hpp"

namespace mustaple::ocsp {

namespace {

using asn1::Reader;
using asn1::Tag;
using asn1::Writer;
using util::Bytes;
using util::Result;

void write_alg(Writer& w, crypto::SignatureAlgorithm alg) {
  w.sequence([&](Writer& seq) {
    seq.oid(alg == crypto::SignatureAlgorithm::kRsaSha256
                ? asn1::oids::sha256_with_rsa()
                : asn1::oids::sim_hash_sig());
    seq.null();
  });
}

void encode_single(Writer& w, const SingleResponse& single) {
  w.sequence([&](Writer& s) {
    encode_cert_id(s, single.cert_id);
    switch (single.status) {
      case CertStatus::kGood:
        s.implicit_context(0, {});  // [0] IMPLICIT NULL
        break;
      case CertStatus::kRevoked: {
        // [1] IMPLICIT RevokedInfo (constructed).
        Writer info;
        const RevokedInfo& rev =
            single.revoked.value_or(RevokedInfo{single.this_update, {}});
        info.generalized_time(rev.revocation_time);
        if (rev.reason) {
          info.explicit_context(0, [&](Writer& reason) {
            reason.enumerated(static_cast<std::int64_t>(*rev.reason));
          });
        }
        s.tlv(asn1::context_tag(1, /*constructed=*/true), info.bytes());
        break;
      }
      case CertStatus::kUnknown:
        s.implicit_context(2, {});
        break;
    }
    s.generalized_time(single.this_update);
    if (single.next_update) {
      s.explicit_context(0, [&](Writer& nu) {
        nu.generalized_time(*single.next_update);
      });
    }
  });
}

Result<SingleResponse> decode_single(Reader& r) {
  using R = Result<SingleResponse>;
  auto seq = r.expect_view(Tag::kSequence);
  if (!seq.ok()) return R::failure(seq.error().code, "SingleResponse");
  Reader body(seq.value().content);
  SingleResponse single;
  auto id = decode_cert_id(body);
  if (!id.ok()) return R::failure(id.error().code, id.error().detail);
  single.cert_id = id.value();

  auto status_tlv = body.read_any_view();
  if (!status_tlv.ok()) return R::failure(status_tlv.error().code, "certStatus");
  if (status_tlv.value().is_context(0, false)) {
    single.status = CertStatus::kGood;
  } else if (status_tlv.value().is_context(1, true)) {
    single.status = CertStatus::kRevoked;
    Reader info(status_tlv.value().content);
    RevokedInfo revoked;
    auto when = info.read_generalized_time();
    if (!when.ok()) return R::failure(when.error().code, "revocationTime");
    revoked.revocation_time = when.value();
    if (!info.at_end()) {
      auto reason_wrap = info.expect_context_view(0, true);
      if (!reason_wrap.ok()) {
        return R::failure(reason_wrap.error().code, "revocationReason");
      }
      Reader reason_reader(reason_wrap.value().content);
      auto reason = reason_reader.read_enumerated();
      if (!reason.ok()) return R::failure(reason.error().code, "reason");
      revoked.reason = static_cast<crl::ReasonCode>(reason.value());
    }
    single.revoked = revoked;
  } else if (status_tlv.value().is_context(2, false)) {
    single.status = CertStatus::kUnknown;
  } else {
    return R::failure("ocsp.bad_cert_status", "unrecognized CHOICE tag");
  }

  auto this_update = body.read_generalized_time();
  if (!this_update.ok()) {
    return R::failure(this_update.error().code, "thisUpdate");
  }
  single.this_update = this_update.value();
  if (!body.at_end() &&
      body.peek_tag() == asn1::context_tag(0, /*constructed=*/true)) {
    auto nu_wrap = body.expect_context_view(0, true);
    if (!nu_wrap.ok()) return R::failure(nu_wrap.error().code, "nextUpdate");
    Reader nu_reader(nu_wrap.value().content);
    auto nu = nu_reader.read_generalized_time();
    if (!nu.ok()) return R::failure(nu.error().code, "nextUpdate");
    single.next_update = nu.value();
  }
  return single;
}

}  // namespace

const SingleResponse* OcspResponse::find_by_serial(
    const util::Bytes& serial) const {
  const auto it = std::find_if(responses_.begin(), responses_.end(),
                               [&serial](const SingleResponse& s) {
                                 return s.cert_id.serial == serial;
                               });
  return it == responses_.end() ? nullptr : &*it;
}

util::Bytes OcspResponse::encode_der() const {
  Writer w;
  w.sequence([&](Writer& response) {
    response.enumerated(static_cast<std::int64_t>(response_status_));
    if (response_status_ == ResponseStatus::kSuccessful) {
      response.explicit_context(0, [&](Writer& rb) {
        rb.sequence([&](Writer& response_bytes) {
          response_bytes.oid(asn1::oids::ocsp_basic());
          // BasicOCSPResponse, wrapped in an OCTET STRING.
          Writer basic;
          basic.sequence([&](Writer& b) {
            b.raw(tbs_der_);
            write_alg(b, sig_alg_);
            b.bit_string(signature_);
            if (!certs_.empty()) {
              b.explicit_context(0, [&](Writer& certs_wrap) {
                certs_wrap.sequence([&](Writer& list) {
                  for (const auto& cert : certs_) {
                    list.raw(cert.encode_der());
                  }
                });
              });
            }
          });
          response_bytes.octet_string(basic.bytes());
        });
      });
    }
  });
  return w.take();
}

util::Result<OcspResponse> OcspResponse::parse(const util::Bytes& der) {
  using R = Result<OcspResponse>;
  Reader top(der);
  auto outer = top.expect_view(Tag::kSequence);
  if (!outer.ok()) return R::failure(outer.error().code, "OCSPResponse");
  Reader resp(outer.value().content);
  auto status = resp.read_enumerated();
  if (!status.ok()) return R::failure(status.error().code, "responseStatus");
  OcspResponse out;
  switch (status.value()) {
    case 0:
      out.response_status_ = ResponseStatus::kSuccessful;
      break;
    case 1:
      out.response_status_ = ResponseStatus::kMalformedRequest;
      break;
    case 2:
      out.response_status_ = ResponseStatus::kInternalError;
      break;
    case 3:
      out.response_status_ = ResponseStatus::kTryLater;
      break;
    case 5:
      out.response_status_ = ResponseStatus::kSigRequired;
      break;
    case 6:
      out.response_status_ = ResponseStatus::kUnauthorized;
      break;
    default:
      return R::failure("ocsp.bad_response_status",
                        std::to_string(status.value()));
  }
  if (out.response_status_ != ResponseStatus::kSuccessful) return out;

  auto rb_wrap = resp.expect_context_view(0, true);
  if (!rb_wrap.ok()) return R::failure(rb_wrap.error().code, "responseBytes");
  Reader rb_reader(rb_wrap.value().content);
  auto rb_seq = rb_reader.expect_view(Tag::kSequence);
  if (!rb_seq.ok()) return R::failure(rb_seq.error().code, "responseBytes");
  Reader rb_body(rb_seq.value().content);
  auto response_type = rb_body.read_oid();
  if (!response_type.ok()) {
    return R::failure(response_type.error().code, "responseType");
  }
  if (!(response_type.value() == asn1::oids::ocsp_basic())) {
    return R::failure("ocsp.unsupported_response_type",
                      response_type.value().to_string());
  }
  auto basic_octets = rb_body.read_octet_string_view();
  if (!basic_octets.ok()) {
    return R::failure(basic_octets.error().code, "response octets");
  }

  Reader basic_top(basic_octets.value());
  auto basic_seq = basic_top.expect_view(Tag::kSequence);
  if (!basic_seq.ok()) {
    return R::failure(basic_seq.error().code, "BasicOCSPResponse");
  }
  Reader basic(basic_seq.value().content);
  auto tbs = basic.expect_view(Tag::kSequence);
  if (!tbs.ok()) return R::failure(tbs.error().code, "tbsResponseData");
  {
    Writer rewriter;
    rewriter.tlv(static_cast<std::uint8_t>(Tag::kSequence), tbs.value().content);
    out.tbs_der_ = rewriter.take();
  }
  {
    auto alg_seq = basic.expect_view(Tag::kSequence);
    if (!alg_seq.ok()) return R::failure(alg_seq.error().code, "sig alg");
    Reader alg_body(alg_seq.value().content);
    auto oid = alg_body.read_oid();
    if (!oid.ok()) return R::failure(oid.error().code, "sig alg oid");
    out.sig_alg_ = oid.value() == asn1::oids::sha256_with_rsa()
                       ? crypto::SignatureAlgorithm::kRsaSha256
                       : crypto::SignatureAlgorithm::kSimHashSig;
  }
  auto sig = basic.read_bit_string_view();
  if (!sig.ok()) return R::failure(sig.error().code, "signature");
  out.signature_ = sig.value().to_bytes();
  if (!basic.at_end()) {
    auto certs_wrap = basic.expect_context_view(0, true);
    if (!certs_wrap.ok()) return R::failure(certs_wrap.error().code, "certs");
    Reader certs_outer(certs_wrap.value().content);
    auto certs_seq = certs_outer.expect_view(Tag::kSequence);
    if (!certs_seq.ok()) return R::failure(certs_seq.error().code, "certs");
    Reader certs_reader(certs_seq.value().content);
    while (!certs_reader.at_end()) {
      auto cert_tlv = certs_reader.read_any_view();
      if (!cert_tlv.ok()) return R::failure(cert_tlv.error().code, "cert");
      Writer rewriter;
      rewriter.tlv(cert_tlv.value().tag, cert_tlv.value().content);
      auto cert = x509::Certificate::parse(rewriter.bytes());
      if (!cert.ok()) return R::failure(cert.error().code, "embedded cert");
      out.certs_.push_back(std::move(cert).take());
    }
  }

  // tbsResponseData fields.
  Reader tbs_reader(tbs.value().content);
  auto produced = tbs_reader.read_generalized_time();
  if (!produced.ok()) return R::failure(produced.error().code, "producedAt");
  out.produced_at_ = produced.value();
  auto singles_seq = tbs_reader.expect_view(Tag::kSequence);
  if (!singles_seq.ok()) return R::failure(singles_seq.error().code, "responses");
  Reader singles(singles_seq.value().content);
  while (!singles.at_end()) {
    auto single = decode_single(singles);
    if (!single.ok()) return R::failure(single.error().code, single.error().detail);
    out.responses_.push_back(std::move(single).take());
  }
  if (out.responses_.empty()) {
    return R::failure("ocsp.no_single_responses");
  }
  // Optional [1] responseExtensions: the nonce.
  if (!tbs_reader.at_end() &&
      tbs_reader.peek_tag() == asn1::context_tag(1, /*constructed=*/true)) {
    auto wrapper = tbs_reader.expect_context_view(1, true);
    if (!wrapper.ok()) return R::failure(wrapper.error().code, "extensions");
    Reader ext_outer(wrapper.value().content);
    auto exts = ext_outer.expect_view(Tag::kSequence);
    if (!exts.ok()) return R::failure(exts.error().code, "extensions");
    Reader exts_reader(exts.value().content);
    while (!exts_reader.at_end()) {
      auto ext = exts_reader.expect_view(Tag::kSequence);
      if (!ext.ok()) return R::failure(ext.error().code, "extension");
      Reader ext_reader(ext.value().content);
      auto oid = ext_reader.read_oid();
      if (!oid.ok()) return R::failure(oid.error().code, "extension oid");
      auto value = ext_reader.read_octet_string_view();
      if (!value.ok()) return R::failure(value.error().code, "extension value");
      if (oid.value() == asn1::oids::ocsp_nonce()) {
        out.nonce_ = value.value().to_bytes();
      }
    }
  }
  return out;
}

OcspResponse OcspResponseBuilder::error(ResponseStatus status) {
  OcspResponse out;
  out.response_status_ = status;
  return out;
}

OcspResponseBuilder& OcspResponseBuilder::produced_at(util::SimTime t) {
  produced_at_ = t;
  return *this;
}

OcspResponseBuilder& OcspResponseBuilder::add_single(SingleResponse single) {
  responses_.push_back(std::move(single));
  return *this;
}

OcspResponseBuilder& OcspResponseBuilder::add_cert(x509::Certificate cert) {
  certs_.push_back(std::move(cert));
  return *this;
}

OcspResponseBuilder& OcspResponseBuilder::nonce(util::Bytes value) {
  nonce_ = std::move(value);
  return *this;
}

OcspResponse OcspResponseBuilder::sign(const crypto::KeyPair& key) const {
  Writer tbs;
  tbs.sequence([&](Writer& body) {
    body.generalized_time(produced_at_);
    body.sequence([&](Writer& singles) {
      for (const auto& single : responses_) encode_single(singles, single);
    });
    if (nonce_) {
      body.explicit_context(1, [&](Writer& wrapper) {
        wrapper.sequence([&](Writer& exts) {
          exts.sequence([&](Writer& ext) {
            ext.oid(asn1::oids::ocsp_nonce());
            ext.octet_string(*nonce_);
          });
        });
      });
    }
  });

  OcspResponse out;
  out.response_status_ = ResponseStatus::kSuccessful;
  out.produced_at_ = produced_at_;
  out.nonce_ = nonce_;
  out.responses_ = responses_;
  out.certs_ = certs_;
  out.sig_alg_ = key.algorithm();
  out.tbs_der_ = tbs.take();
  out.signature_ = key.sign(out.tbs_der_);
  return out;
}

}  // namespace mustaple::ocsp
