// Client-side OCSP response validation — the measurement client's check
// pipeline from paper §5.3/§5.4. Each probe's body flows through
// verify_ocsp_response(), which classifies it into exactly the categories
// the paper reports: malformed ASN.1, serial mismatch, bad signature, and
// the validity-window pathologies of Figures 8/9.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/signer.hpp"
#include "ocsp/response.hpp"
#include "ocsp/types.hpp"
#include "util/sim_time.hpp"

namespace mustaple::ocsp {

enum class CheckOutcome : std::uint8_t {
  kOk = 0,
  /// Body did not parse as an OCSPResponse (Fig 5 "ASN.1 Unparseable":
  /// empty bodies, the literal "0", JavaScript pages, ...).
  kUnparseable,
  /// Parsed, but responseStatus != successful (tryLater, internalError...).
  kNotSuccessful,
  /// No SingleResponse carries the serial we asked about (Fig 5
  /// "SerialUnmatch").
  kSerialMismatch,
  /// Signature fails under both delegation certs and the issuer key
  /// (Fig 5 "Signature").
  kBadSignature,
  /// thisUpdate is in the client's future — the premature values of Fig 9;
  /// a client with an accurate clock rejects the response as not yet valid.
  kNotYetValid,
  /// nextUpdate has passed (the paper looked for these and found none in
  /// the wild; web-server caches can still produce them — Table 3).
  kExpired,
  /// The client sent a nonce (RFC 6960 §4.4.1) and the response failed to
  /// echo it — typical of pre-generated (cached) responders, which cannot
  /// personalize responses.
  kNonceMismatch,
};

const char* to_string(CheckOutcome outcome);

/// Everything the analysis layer wants to know about one validated response.
struct VerifiedResponse {
  CheckOutcome outcome = CheckOutcome::kUnparseable;
  std::string error_code;  ///< underlying parse error, when unparseable

  CertStatus status = CertStatus::kUnknown;
  std::optional<RevokedInfo> revoked;

  util::SimTime produced_at{};
  util::SimTime this_update{};
  std::optional<util::SimTime> next_update;  ///< nullopt = blank (Fig 8)

  std::size_t num_certs = 0;    ///< certificates attached (Fig 6)
  std::size_t num_serials = 0;  ///< SingleResponses in the body (Fig 7)

  /// Whether a Must-Staple-respecting client would treat the staple as
  /// usable at `now` (i.e. outcome == kOk).
  bool usable() const { return outcome == CheckOutcome::kOk; }
};

/// Validates `raw_body` (the HTTP response body) for the certificate
/// identified by `requested`, using `issuer_key` to check signatures
/// (directly or via OCSP Signature Authority Delegation through certs
/// embedded in the response), against the client clock `now`.
VerifiedResponse verify_ocsp_response(const util::Bytes& raw_body,
                                      const CertId& requested,
                                      const crypto::PublicKey& issuer_key,
                                      util::SimTime now);

/// The time-invariant part of validation: parse, serial match, signature.
/// The returned value's `outcome` is kOk when only the clock-dependent
/// checks remain. Cacheable by (responder, body bytes): the hourly scanner
/// exploits the fact that pre-generated responders re-serve identical DER
/// for a whole update cycle.
VerifiedResponse verify_ocsp_response_static(
    const util::Bytes& raw_body, const CertId& requested,
    const crypto::PublicKey& issuer_key,
    const std::optional<util::Bytes>& expected_nonce = std::nullopt);

/// Applies the clock-dependent checks (premature thisUpdate, expired
/// nextUpdate) to a static verification result.
VerifiedResponse apply_time_checks(VerifiedResponse static_result,
                                   util::SimTime now);

}  // namespace mustaple::ocsp
