// OCSPRequest (RFC 6960 §4.1): carried as the body of an HTTP POST to the
// responder URL from the certificate's AIA extension — the paper's
// measurement client does exactly this (§5.1 step 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ocsp/types.hpp"
#include "util/result.hpp"

namespace mustaple::ocsp {

class OcspRequest {
 public:
  OcspRequest() = default;
  explicit OcspRequest(std::vector<CertId> cert_ids)
      : cert_ids_(std::move(cert_ids)) {}

  static OcspRequest single(CertId id) { return OcspRequest({std::move(id)}); }

  const std::vector<CertId>& cert_ids() const { return cert_ids_; }

  /// RFC 6960 §4.4.1 nonce (anti-replay). Pre-generated responders cannot
  /// echo nonces — a structural tension with response caching.
  void set_nonce(util::Bytes nonce) { nonce_ = std::move(nonce); }
  const std::optional<util::Bytes>& nonce() const { return nonce_; }

  util::Bytes encode_der() const;
  static util::Result<OcspRequest> parse(const util::Bytes& der);

  /// RFC 6960 Appendix A.1: the GET form's path segment — the DER request,
  /// base64url-encoded.
  std::string encode_get_path() const;
  /// Parses a GET path ("/" + base64); percent-decodes the path first (the
  /// appendix says clients URL-encode the base64), then accepts standard or
  /// URL-safe base64.
  static util::Result<OcspRequest> parse_get_path(const std::string& path);

 private:
  std::vector<CertId> cert_ids_;
  std::optional<util::Bytes> nonce_;
};

/// Writes a CertID SEQUENCE into `w` (shared with the response encoder).
void encode_cert_id(asn1::Writer& w, const CertId& id);

/// Reads a CertID SEQUENCE from `r`.
util::Result<CertId> decode_cert_id(asn1::Reader& r);

}  // namespace mustaple::ocsp
