// OCSPResponse / BasicOCSPResponse (RFC 6960 §4.2). The response model keeps
// every degree of freedom the paper measures:
//   * multiple SingleResponses per response (Fig 7: 3.3% of responders
//     always pack 20 serials),
//   * superfluous certificates in the certs field (Fig 6: 14.5% of
//     responders send more than one certificate),
//   * absent ("blank") nextUpdate (Fig 8: 9.1% of responders),
//   * arbitrary thisUpdate/producedAt placement (Fig 9: premature values).
#pragma once

#include <optional>
#include <vector>

#include "crypto/signer.hpp"
#include "ocsp/request.hpp"
#include "ocsp/types.hpp"
#include "util/result.hpp"

namespace mustaple::ocsp {

/// One SingleResponse.
struct SingleResponse {
  CertId cert_id;
  CertStatus status = CertStatus::kGood;
  std::optional<RevokedInfo> revoked;  ///< set when status == kRevoked
  util::SimTime this_update{};
  /// nullopt models the "blank nextUpdate" the paper flags as risky: the
  /// response never expires from the client's point of view.
  std::optional<util::SimTime> next_update;
};

/// A full OCSP response (outer status + optional signed basic response).
class OcspResponse {
 public:
  OcspResponse() = default;

  ResponseStatus response_status() const { return response_status_; }
  bool successful() const {
    return response_status_ == ResponseStatus::kSuccessful;
  }

  util::SimTime produced_at() const { return produced_at_; }
  const std::vector<SingleResponse>& responses() const { return responses_; }
  /// Echoed request nonce (RFC 6960 §4.4.1); absent from cached
  /// (pre-generated) responses by construction.
  const std::optional<util::Bytes>& nonce() const { return nonce_; }
  /// Certificates attached to the response (delegated signer and/or
  /// superfluous extras).
  const std::vector<x509::Certificate>& certs() const { return certs_; }
  const util::Bytes& signature() const { return signature_; }
  const util::Bytes& tbs_der() const { return tbs_der_; }

  /// Finds the SingleResponse matching a CertID's serial (the check whose
  /// failure the paper classifies as "Serial number mismatch").
  const SingleResponse* find_by_serial(const util::Bytes& serial) const;

  bool verify_signature(const crypto::PublicKey& key) const {
    return key.verify(tbs_der_, signature_);
  }

  util::Bytes encode_der() const;
  static util::Result<OcspResponse> parse(const util::Bytes& der);

  friend class OcspResponseBuilder;

 private:
  ResponseStatus response_status_ = ResponseStatus::kInternalError;
  util::SimTime produced_at_{};
  std::optional<util::Bytes> nonce_;
  std::vector<SingleResponse> responses_;
  std::vector<x509::Certificate> certs_;
  util::Bytes tbs_der_;
  util::Bytes signature_;
  crypto::SignatureAlgorithm sig_alg_ = crypto::SignatureAlgorithm::kSimHashSig;
};

/// Builds responses. The CA simulation drives this; the behaviour-profile
/// knobs (extra serials, superfluous certs, blank nextUpdate, premature
/// thisUpdate) map directly onto builder calls.
class OcspResponseBuilder {
 public:
  /// A non-successful response has no response bytes at all.
  static OcspResponse error(ResponseStatus status);

  OcspResponseBuilder& produced_at(util::SimTime t);
  OcspResponseBuilder& add_single(SingleResponse single);
  OcspResponseBuilder& add_cert(x509::Certificate cert);
  OcspResponseBuilder& nonce(util::Bytes value);

  OcspResponse sign(const crypto::KeyPair& key) const;

 private:
  util::SimTime produced_at_{};
  std::optional<util::Bytes> nonce_;
  std::vector<SingleResponse> responses_;
  std::vector<x509::Certificate> certs_;
};

}  // namespace mustaple::ocsp
