#include "ca/crl_server.hpp"

#include "obs/obs.hpp"

namespace mustaple::ca {

CrlServer::CrlServer(CertificateAuthority& authority, std::string host,
                     util::Duration publish_interval, util::Duration validity)
    : authority_(&authority),
      host_(std::move(host)),
      publish_interval_(publish_interval),
      validity_(validity) {}

void CrlServer::install(net::Network& network, std::uint16_t port) {
  network.register_service(
      host_, port,
      [this](const net::HttpRequest& request, util::SimTime now,
             net::Region from) { return handle(request, now, from); });
}

crl::Crl CrlServer::current_crl(util::SimTime now) const {
  const std::int64_t interval = publish_interval_.seconds;
  const util::SimTime this_update{
      interval > 0 ? (now.unix_seconds / interval) * interval
                   : now.unix_seconds};
  return authority_->publish_crl(this_update, validity_);
}

net::HttpResponse CrlServer::handle(const net::HttpRequest& request,
                                    util::SimTime now, net::Region from) const {
  MUSTAPLE_COUNT("mustaple_ca_crl_requests_total");
  MUSTAPLE_TRACE_INSTANT("crl-handle", "ca.crl", now,
                         static_cast<std::uint32_t>(from),
                         {"host", host_});
#if !MUSTAPLE_OBS_ENABLED
  (void)from;
#endif
  if (request.method != "GET") {
    return net::HttpResponse::make(400, net::default_reason(400), {}, "");
  }
  return net::HttpResponse::make(200, "OK", current_crl(now).encode_der(),
                                 "application/pkix-crl");
}

net::WireHandler CrlServer::wire_handler(
    std::function<util::SimTime()> clock) const {
  return [this, clock = std::move(clock)](const net::HttpRequest& request) {
    return handle(request, clock(), net::Region::kVirginia);
  };
}

}  // namespace mustaple::ca
