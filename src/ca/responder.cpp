#include "ca/responder.hpp"

#include <limits>

#include "asn1/der.hpp"
#include "crypto/sha1.hpp"
#include "obs/obs.hpp"
#include "ocsp/request.hpp"
#include "util/hash.hpp"

namespace mustaple::ca {

namespace {

// Malformed bodies observed in the wild (§5.3): the literal "0", empty
// bodies, and JavaScript pages.
util::Bytes malformed_body(ResponderBehavior::Malform mode) {
  switch (mode) {
    case ResponderBehavior::Malform::kZeroBody:
      return util::bytes_of("0");
    case ResponderBehavior::Malform::kEmptyBody:
      return {};
    case ResponderBehavior::Malform::kJavascriptBody:
      return util::bytes_of(
          "<html><script>window.location='/maintenance';</script></html>");
    case ResponderBehavior::Malform::kNone:
      break;
  }
  return {};
}

}  // namespace

OcspResponder::OcspResponder(CertificateAuthority& authority,
                             ResponderBehavior behavior, std::string host,
                             util::Rng& rng)
    : authority_(&authority),
      behavior_(std::move(behavior)),
      try_later_(behavior_.respond_try_later),
      host_(std::move(host)),
      rng_(rng.fork("responder." + host_)),
      delegate_key_(crypto::KeyPair::generate_sim(rng_)),
      cache_tally_(util::alloc_counter("ca.response_cache")) {
  if (behavior_.backends < 1) behavior_.backends = 1;
  if (behavior_.delegate_signing) {
    // Anchored mid-2010s; issue_delegate gives it a ±multi-decade window so
    // any simulated campaign date falls inside it.
    delegate_cert_ = authority_->issue_delegate(
        delegate_key_.public_key(), util::make_time(2016, 1, 1), rng_);
  }
  // Precompute the CertID issuer hashes this responder serves: leaves are
  // issued by the intermediate; the intermediate itself by the root (the
  // multi-staple path).
  {
    asn1::Writer issuer_name;
    authority_->intermediate_cert().subject().encode(issuer_name);
    expected_name_hash_ = crypto::Sha1::hash(issuer_name.bytes());
    expected_key_hash_ = crypto::Sha1::hash(
        authority_->intermediate_cert().public_key().encode());
    asn1::Writer root_name;
    authority_->root_cert().subject().encode(root_name);
    root_name_hash_ = crypto::Sha1::hash(root_name.bytes());
    root_key_hash_ =
        crypto::Sha1::hash(authority_->root_cert().public_key().encode());
  }
  // Unsynchronized update phases across backends.
  const std::int64_t interval = behavior_.update_interval.seconds;
  for (int b = 0; b < behavior_.backends; ++b) {
    backend_phases_.push_back(util::Duration::secs(
        interval > 0 ? static_cast<std::int64_t>(
                           rng_.uniform(static_cast<std::uint64_t>(interval)))
                     : 0));
  }
  backend_seed_ = rng_.fork("backend-choice")
                      .uniform(std::numeric_limits<std::uint64_t>::max());
}

void OcspResponder::set_try_later(bool value) {
  // The live flag is an atomic, not a behavior_ field: serving threads
  // read it on every request while this setter may run on a control
  // thread (the Table 3 experiment flips it mid-campaign).
  if (try_later_.exchange(value, std::memory_order_relaxed) != value) {
    MUSTAPLE_LOG_WARN("ca", "responder tryLater mode flipped",
                      obs::field("host", host_),
                      obs::field("try_later", value));
  }
}

std::size_t OcspResponder::cache_entries() const {
  util::MutexLock lock(mu_);
  std::size_t entries = 0;
  for (const auto& [serial, per_backend] : cache_) {
    for (const CacheEntry& entry : per_backend) {
      if (entry.cycle >= 0) ++entries;
    }
  }
  return entries;
}

std::size_t OcspResponder::cache_bytes() const {
  util::MutexLock lock(mu_);
  return cache_tally_.total();
}

void OcspResponder::install(net::Network& network, std::uint16_t port) {
  auto handler = [this](const net::HttpRequest& request, util::SimTime now,
                        net::Region from) { return handle(request, now, from); };
  network.register_service(host_, port, handler);
  if (port == 80) {
    // Real responders commonly answer on HTTPS too (the paper found one
    // whose HTTPS endpoint served an invalid certificate).
    network.register_service(host_, 443, handler);
  }
}

bool OcspResponder::malform_active(util::SimTime now) const {
  if (behavior_.malform == ResponderBehavior::Malform::kNone) return false;
  if (behavior_.malform_windows.empty()) return true;
  for (const auto& [start, end] : behavior_.malform_windows) {
    if (start <= now && now < end) return true;
  }
  return false;
}

util::SimTime OcspResponder::generation_time(util::SimTime now,
                                             int backend) const {
  if (!behavior_.pre_generate) return now;
  const std::int64_t interval = behavior_.update_interval.seconds;
  if (interval <= 0) return now;
  const std::int64_t phase = backend_phases_[static_cast<std::size_t>(backend)].seconds;
  const std::int64_t cycles = (now.unix_seconds - phase) / interval;
  return util::SimTime{phase + cycles * interval};
}

net::HttpResponse OcspResponder::handle(const net::HttpRequest& request,
                                        util::SimTime now,
                                        net::Region from) {
  MUSTAPLE_COUNT("mustaple_ca_ocsp_requests_total");
  MUSTAPLE_TRACE_INSTANT("ocsp-handle", "ca.ocsp", now,
                         static_cast<std::uint32_t>(from),
                         {"host", host_});
#if !MUSTAPLE_OBS_ENABLED
  (void)from;
#endif
  if (request.method != "POST" && request.method != "GET") {
    return net::HttpResponse::make(400, net::default_reason(400), {}, "");
  }

  if (malform_active(now)) {
    MUSTAPLE_COUNT("mustaple_ca_ocsp_malformed_served_total");
    // Still HTTP 200 — the paper's clients count these as "successful
    // requests" that later fail validation (§5.2 vs §5.3).
    return net::HttpResponse::make(200, "OK", malformed_body(behavior_.malform),
                                   "application/ocsp-response");
  }

  if (try_later()) {
    const auto error =
        ocsp::OcspResponseBuilder::error(ocsp::ResponseStatus::kTryLater);
    return net::HttpResponse::make(200, "OK", error.encode_der(),
                                   "application/ocsp-response");
  }

  // POST carries the DER body; GET carries base64 in the path (RFC 6960
  // Appendix A.1).
  auto parsed = request.method == "POST"
                    ? ocsp::OcspRequest::parse(request.body)
                    : ocsp::OcspRequest::parse_get_path(request.path);
  if (!parsed.ok()) {
    const auto error =
        ocsp::OcspResponseBuilder::error(ocsp::ResponseStatus::kMalformedRequest);
    return net::HttpResponse::make(200, "OK", error.encode_der(),
                                   "application/ocsp-response");
  }

  return net::HttpResponse::make(
      200, "OK",
      build_response_der(parsed.value().cert_ids().front(), now,
                         parsed.value().nonce()),
      "application/ocsp-response");
}

net::WireHandler OcspResponder::wire_handler(
    std::function<util::SimTime()> clock) {
  // Region only affects simulated latency, which has no meaning on a real
  // socket; pin the default vantage.
  return [this, clock = std::move(clock)](const net::HttpRequest& request) {
    return handle(request, clock(), net::Region::kVirginia);
  };
}

ocsp::OcspResponse OcspResponder::build_response(const ocsp::CertId& id,
                                                 util::SimTime now) {
  auto parsed = ocsp::OcspResponse::parse(build_response_der(id, now));
  if (!parsed.ok()) {
    throw std::logic_error("OcspResponder produced unparseable DER: " +
                           parsed.error().to_string());
  }
  return std::move(parsed).take();
}

util::Bytes OcspResponder::build_response_der(
    const ocsp::CertId& id, util::SimTime now,
    const std::optional<util::Bytes>& nonce) {
  // Which co-located backend answers is a pure function of (responder,
  // serial, time): load balancing still looks arbitrary across scans —
  // which is what produces the producedAt regressions — but does not
  // depend on how many requests other threads issued first.
  const int backend =
      behavior_.backends > 1
          ? static_cast<int>(
                util::hash_combine(
                    util::hash_combine(backend_seed_, util::fnv1a64(id.serial)),
                    static_cast<std::uint64_t>(now.unix_seconds)) %
                static_cast<std::uint64_t>(behavior_.backends))
          : 0;
  const std::string serial_hex = util::to_hex(id.serial);
  util::MutexLock lock(mu_);

  // Pre-generation cache: one signed encoding per (serial, backend, cycle).
  const util::SimTime gen_time = generation_time(now, backend);
  const std::int64_t interval = behavior_.update_interval.seconds;
  const std::int64_t cycle =
      behavior_.pre_generate && interval > 0 ? gen_time.unix_seconds / interval
                                             : now.unix_seconds;
  if (behavior_.pre_generate) {
    auto& entries = cache_[serial_hex];
    entries.resize(static_cast<std::size_t>(behavior_.backends));
    auto& entry = entries[static_cast<std::size_t>(backend)];
    if (entry.cycle == cycle && !entry.der.empty()) {
      MUSTAPLE_COUNT("mustaple_ca_ocsp_cache_hits_total");
      return entry.der;
    }
  }

  ocsp::SingleResponse single;
  single.cert_id = id;
  if (behavior_.wrong_serial) {
    // Flip the low byte so the serial no longer matches the request.
    util::Bytes mutated = id.serial;
    if (mutated.empty()) mutated.push_back(0);
    mutated.back() ^= 0xff;
    single.cert_id.serial = mutated;
  }
  // Requests naming a different issuer (wrong name/key hash) get Unknown:
  // "the certificate is not served by this responder" (§2.2).
  const bool root_issued = id.issuer_name_hash == root_name_hash_ &&
                           id.issuer_key_hash == root_key_hash_;
  const bool issuer_matches = (id.issuer_name_hash == expected_name_hash_ &&
                               id.issuer_key_hash == expected_key_hash_) ||
                              root_issued;
  if (issuer_matches) {
    ocsp::RevokedInfo revoked;
    single.status = authority_->ocsp_status(id.serial, &revoked);
    if (single.status == ocsp::CertStatus::kRevoked) single.revoked = revoked;
  } else {
    single.status = ocsp::CertStatus::kUnknown;
  }
  single.this_update = gen_time - behavior_.this_update_margin;
  if (behavior_.validity) {
    single.next_update = single.this_update + *behavior_.validity;
  }

  ocsp::OcspResponseBuilder builder;
  builder.produced_at(gen_time).add_single(single);
  // Only on-demand generation can echo a per-request nonce; a cached
  // response is shared across requests.
  if (nonce && !behavior_.pre_generate) builder.nonce(*nonce);

  // Unsolicited extra serials (Fig 7).
  for (int i = 0; i < behavior_.extra_serials; ++i) {
    ocsp::SingleResponse extra = single;
    util::Bytes extra_serial = id.serial;
    extra_serial.push_back(static_cast<std::uint8_t>(i + 1));
    extra.cert_id.serial = extra_serial;
    extra.status = ocsp::CertStatus::kGood;
    extra.revoked.reset();
    builder.add_single(extra);
  }

  // Certificates: delegation cert (if any) + superfluous extras (Fig 6).
  // For a root-issued subject (the intermediate itself, RFC 6961 path) the
  // response is signed by the intermediate key, so the intermediate cert is
  // attached as the delegation certificate — clients verify it against the
  // root and then the response against it.
  if (root_issued) builder.add_cert(authority_->intermediate_cert());
  if (delegate_cert_) builder.add_cert(*delegate_cert_);
  for (int i = 0; i < behavior_.extra_certs; ++i) {
    builder.add_cert(i % 2 == 0 ? authority_->intermediate_cert()
                                : authority_->root_cert());
  }

  ocsp::OcspResponse response;
  if (behavior_.bad_signature) {
    // Sign with a key unrelated to the CA: the response stays well-formed
    // but fails client-side signature validation (§5.3 "Incorrect
    // signature").
    util::Rng throwaway = rng_.fork("bad-signature");
    response = builder.sign(crypto::KeyPair::generate_sim(throwaway));
  } else {
    response = builder.sign(behavior_.delegate_signing
                                ? delegate_key_
                                : authority_->intermediate_key());
  }

  util::Bytes der = response.encode_der();
  if (behavior_.pre_generate) {
    // A fresh signing of a cached serial is one regeneration cycle.
    MUSTAPLE_COUNT("mustaple_ca_ocsp_regenerations_total");
    auto& entries = cache_[serial_hex];
    entries.resize(static_cast<std::size_t>(behavior_.backends));
    auto& slot = entries[static_cast<std::size_t>(backend)];
    // Keep the "ca.response_cache" tally equal to the DER bytes resident in
    // cache_: credit the encoding being replaced, charge its successor.
    if (!slot.der.empty()) cache_tally_.release(slot.der.size());
    cache_tally_.record(der.size());
    slot = CacheEntry{cycle, der};
  }
  return der;
}

}  // namespace mustaple::ca
