// A simulated certificate authority: a self-signed root, an issuing
// intermediate, issuance/revocation, and — crucially for §5.4 — TWO
// revocation databases. The paper's disclosure responses (Quovadis,
// Camerfirma) revealed that real CAs maintain separate CRL and OCSP status
// databases, which is exactly how status discrepancies (Table 1) and
// revocation-time skew (Fig 10) arise; we model that directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crl/crl.hpp"
#include "crypto/signer.hpp"
#include "ocsp/types.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "x509/certificate.hpp"

namespace mustaple::ca {

/// Parameters for issuing one leaf certificate.
struct LeafRequest {
  std::string domain;
  util::SimTime not_before{};
  util::Duration lifetime = util::Duration::days(90);
  bool must_staple = false;
  std::vector<std::string> ocsp_urls;  ///< AIA id-ad-ocsp
  std::vector<std::string> crl_urls;   ///< CRL Distribution Points
  std::vector<std::string> extra_sans;
};

/// One revocation record in a status database.
struct RevocationRecord {
  util::SimTime revocation_time{};
  std::optional<crl::ReasonCode> reason;
};

/// How the CA propagates a revocation into its two databases.
struct RevocationPolicy {
  /// Offset applied to the OCSP database's recorded revocation time
  /// relative to the CRL's (positive = OCSP lags, the ocsp.msocsp.com
  /// pattern of 7 hours to 9 days; negative = OCSP leads, the 14.7% of
  /// Fig 10 with negative deltas).
  util::Duration ocsp_time_offset{};
  /// The paper finds 99.99% of reason-code discrepancies are "CRL carries a
  /// reason, OCSP does not"; when set, the OCSP DB drops the reason code.
  bool ocsp_drops_reason = true;
  /// Table 1 pathologies: the OCSP DB fails to ingest the revocation at
  /// all, so the responder answers Good (5 CAs) or Unknown (2 CAs, e.g.
  /// rejected-on-insertion rows à la Quovadis' max-character-size bug).
  enum class OcspIngest { kNormal, kMissingAnswersGood, kMissingAnswersUnknown };
  OcspIngest ocsp_ingest = OcspIngest::kNormal;
};

/// A certificate authority with root + issuing intermediate.
class CertificateAuthority {
 public:
  /// `use_rsa` selects real RSA keys (tests/examples) vs simulation-grade
  /// keys (fleet-scale runs).
  CertificateAuthority(std::string name, util::SimTime founded, util::Rng& rng,
                       bool use_rsa = false);

  const std::string& name() const { return name_; }
  const x509::Certificate& root_cert() const { return root_cert_; }
  const x509::Certificate& intermediate_cert() const { return intermediate_cert_; }
  const crypto::KeyPair& intermediate_key() const { return intermediate_key_; }

  /// Issues a leaf signed by the intermediate. Serial numbers are unique
  /// per CA.
  x509::Certificate issue(const LeafRequest& request, util::Rng& rng);

  /// Certificate chain to present in handshakes: {leaf, intermediate}.
  std::vector<x509::Certificate> chain_for(const x509::Certificate& leaf) const;

  /// Revokes a serial at `when` per `policy`, updating both databases.
  void revoke(const util::Bytes& serial, util::SimTime when,
              std::optional<crl::ReasonCode> reason,
              const RevocationPolicy& policy);

  bool was_issued(const util::Bytes& serial) const;

  /// OCSP-database lookup (what the responder consults).
  ocsp::CertStatus ocsp_status(const util::Bytes& serial,
                               ocsp::RevokedInfo* revoked_out) const;
  /// CRL-database lookup.
  const RevocationRecord* crl_record(const util::Bytes& serial) const;

  /// Builds the current CRL from the CRL database.
  crl::Crl publish_crl(util::SimTime this_update,
                       util::Duration validity) const;

  /// Issues a delegated OCSP-signing certificate (signed by the
  /// intermediate) for Signature Authority Delegation.
  x509::Certificate issue_delegate(const crypto::PublicKey& delegate_key,
                                   util::SimTime now, util::Rng& rng);

  std::size_t issued_count() const { return issued_.size(); }
  std::size_t crl_entry_count() const { return crl_db_.size(); }

 private:
  std::string name_;
  crypto::KeyPair root_key_;
  crypto::KeyPair intermediate_key_;
  x509::Certificate root_cert_;
  x509::Certificate intermediate_cert_;
  std::uint64_t next_serial_ = 1;

  // serial (hex) -> record. Two independent databases, per the paper.
  std::map<std::string, RevocationRecord> crl_db_;
  std::map<std::string, RevocationRecord> ocsp_db_;
  // Serials the OCSP ingest dropped, with the configured answer.
  std::map<std::string, ocsp::CertStatus> ocsp_ingest_failures_;
  std::set<std::string> issued_;
};

}  // namespace mustaple::ca
