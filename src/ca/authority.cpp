#include "ca/authority.hpp"

namespace mustaple::ca {

namespace {

crypto::KeyPair make_key(util::Rng& rng, bool use_rsa) {
  return use_rsa ? crypto::KeyPair::generate_rsa(512, rng)
                 : crypto::KeyPair::generate_sim(rng);
}

util::Bytes random_serial(util::Rng& rng, std::uint64_t sequence) {
  // 16-byte serial: 8 random bytes + 8-byte sequence, unique per CA.
  util::Bytes serial(16);
  rng.fill(serial.data(), 8);
  for (int i = 0; i < 8; ++i) {
    serial[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(sequence >> (56 - 8 * i));
  }
  if (serial[0] == 0) serial[0] = 1;  // keep the top byte non-zero
  return serial;
}

}  // namespace

CertificateAuthority::CertificateAuthority(std::string name,
                                           util::SimTime founded,
                                           util::Rng& rng, bool use_rsa)
    : name_(std::move(name)),
      root_key_(make_key(rng, use_rsa)),
      intermediate_key_(make_key(rng, use_rsa)) {
  const x509::DistinguishedName root_dn{name_ + " Root CA", name_, "US"};
  const x509::DistinguishedName intermediate_dn{name_ + " Issuing CA", name_,
                                                "US"};
  root_cert_ = x509::CertificateBuilder()
                   .serial_number(1)
                   .subject(root_dn)
                   .issuer(root_dn)
                   .validity(founded, founded + util::Duration::days(20 * 365))
                   .public_key(root_key_.public_key())
                   .ca(true)
                   .sign(root_key_);
  intermediate_cert_ =
      x509::CertificateBuilder()
          .serial_number(2)
          .subject(intermediate_dn)
          .issuer(root_dn)
          .validity(founded, founded + util::Duration::days(10 * 365))
          .public_key(intermediate_key_.public_key())
          .ca(true)
          .sign(root_key_);
  next_serial_ = 3;
  // The intermediate itself is a certificate this CA can answer for —
  // needed by RFC 6961 multi-staple clients checking the whole chain.
  issued_.insert(intermediate_cert_.serial_hex());
}

x509::Certificate CertificateAuthority::issue(const LeafRequest& request,
                                              util::Rng& rng) {
  x509::CertificateBuilder builder;
  builder.serial(random_serial(rng, next_serial_++))
      .subject(x509::DistinguishedName{request.domain, "", ""})
      .issuer(intermediate_cert_.subject())
      .validity(request.not_before, request.not_before + request.lifetime)
      .public_key(crypto::KeyPair::generate_sim(rng).public_key())
      .must_staple(request.must_staple)
      .add_san(request.domain);
  for (const auto& url : request.ocsp_urls) builder.add_ocsp_url(url);
  for (const auto& url : request.crl_urls) builder.add_crl_url(url);
  for (const auto& san : request.extra_sans) builder.add_san(san);
  x509::Certificate leaf = builder.sign(intermediate_key_);
  issued_.insert(leaf.serial_hex());
  return leaf;
}

std::vector<x509::Certificate> CertificateAuthority::chain_for(
    const x509::Certificate& leaf) const {
  return {leaf, intermediate_cert_};
}

void CertificateAuthority::revoke(const util::Bytes& serial,
                                  util::SimTime when,
                                  std::optional<crl::ReasonCode> reason,
                                  const RevocationPolicy& policy) {
  const std::string key = util::to_hex(serial);
  crl_db_[key] = RevocationRecord{when, reason};

  switch (policy.ocsp_ingest) {
    case RevocationPolicy::OcspIngest::kNormal: {
      RevocationRecord ocsp_record;
      ocsp_record.revocation_time = when + policy.ocsp_time_offset;
      ocsp_record.reason = policy.ocsp_drops_reason ? std::nullopt : reason;
      ocsp_db_[key] = ocsp_record;
      break;
    }
    case RevocationPolicy::OcspIngest::kMissingAnswersGood:
      ocsp_ingest_failures_[key] = ocsp::CertStatus::kGood;
      break;
    case RevocationPolicy::OcspIngest::kMissingAnswersUnknown:
      ocsp_ingest_failures_[key] = ocsp::CertStatus::kUnknown;
      break;
  }
}

bool CertificateAuthority::was_issued(const util::Bytes& serial) const {
  return issued_.count(util::to_hex(serial)) > 0;
}

ocsp::CertStatus CertificateAuthority::ocsp_status(
    const util::Bytes& serial, ocsp::RevokedInfo* revoked_out) const {
  const std::string key = util::to_hex(serial);
  const auto failure = ocsp_ingest_failures_.find(key);
  if (failure != ocsp_ingest_failures_.end()) return failure->second;
  const auto it = ocsp_db_.find(key);
  if (it != ocsp_db_.end()) {
    if (revoked_out != nullptr) {
      revoked_out->revocation_time = it->second.revocation_time;
      revoked_out->reason = it->second.reason;
    }
    return ocsp::CertStatus::kRevoked;
  }
  if (issued_.count(key) > 0) return ocsp::CertStatus::kGood;
  return ocsp::CertStatus::kUnknown;
}

const RevocationRecord* CertificateAuthority::crl_record(
    const util::Bytes& serial) const {
  const auto it = crl_db_.find(util::to_hex(serial));
  return it == crl_db_.end() ? nullptr : &it->second;
}

crl::Crl CertificateAuthority::publish_crl(util::SimTime this_update,
                                           util::Duration validity) const {
  crl::CrlBuilder builder;
  builder.issuer(intermediate_cert_.subject())
      .this_update(this_update)
      .next_update(this_update + validity);
  for (const auto& [serial_hex, record] : crl_db_) {
    builder.add_entry(crl::RevokedEntry{util::from_hex(serial_hex),
                                        record.revocation_time, record.reason});
  }
  return builder.sign(intermediate_key_);
}

x509::Certificate CertificateAuthority::issue_delegate(
    const crypto::PublicKey& delegate_key, util::SimTime now,
    util::Rng& rng) {
  return x509::CertificateBuilder()
      .serial(random_serial(rng, next_serial_++))
      .subject(x509::DistinguishedName{name_ + " OCSP Signer", name_, "US"})
      .issuer(intermediate_cert_.subject())
      .validity(now - util::Duration::days(365),
                now + util::Duration::days(365 * 50))
      .public_key(delegate_key)
      .sign(intermediate_key_);
}

}  // namespace mustaple::ca
