// HTTP service that serves a CA's CRL at its CRL Distribution Point URL.
// The consistency audit of §5.4 downloads CRLs from here and diffs them
// against the same CA's OCSP answers.
#pragma once

#include <functional>
#include <string>

#include "ca/authority.hpp"
#include "net/network.hpp"
#include "net/socket_server.hpp"

namespace mustaple::ca {

class CrlServer {
 public:
  /// `publish_interval` controls how often the served CRL's thisUpdate
  /// advances; `validity` is its nextUpdate - thisUpdate window.
  CrlServer(CertificateAuthority& authority, std::string host,
            util::Duration publish_interval = util::Duration::days(1),
            util::Duration validity = util::Duration::days(7));

  const std::string& host() const { return host_; }
  std::string url() const { return "http://" + host_ + "/ca.crl"; }

  void install(net::Network& network, std::uint16_t port = 80);

  /// Const: a CRL server is stateless, so concurrent probes are sound.
  net::HttpResponse handle(const net::HttpRequest& request, util::SimTime now,
                           net::Region from) const;

  /// Adapts handle() to a real-socket listener (net::SocketServer); safe on
  /// concurrent worker threads because handle() is stateless. The server
  /// must outlive the returned handler.
  net::WireHandler wire_handler(std::function<util::SimTime()> clock) const;

  /// The CRL as it would be served at `now` (publication-cycle aligned).
  crl::Crl current_crl(util::SimTime now) const;

 private:
  CertificateAuthority* authority_;
  std::string host_;
  util::Duration publish_interval_;
  util::Duration validity_;
};

}  // namespace mustaple::ca
