// The OCSP responder service: binds a CertificateAuthority into the
// simulated network at an OCSP URL, with a behaviour profile expressing
// every responder pathology measured in paper §5:
//
//   §5.3  malformed bodies ("0", empty, JavaScript), serial mismatch,
//         invalid signatures;
//   §5.4  superfluous certificates (Fig 6), multi-serial responses (Fig 7),
//         blank/short/huge validity periods (Fig 8), zero-margin and future
//         thisUpdate (Fig 9), pre-generated vs on-demand responses with
//         producedAt regressions across co-located backends (footnote 17);
//   §2.2  OCSP Signature Authority Delegation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ca/authority.hpp"
#include "net/network.hpp"
#include "net/socket_server.hpp"
#include "ocsp/response.hpp"
#include "util/alloc.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::ca {

struct ResponderBehavior {
  /// §5.4: 51.7% of responders serve pre-generated responses; the rest
  /// generate on demand.
  bool pre_generate = true;
  /// Regeneration cadence for pre-generated responses.
  util::Duration update_interval = util::Duration::hours(24);
  /// nextUpdate - thisUpdate; nullopt = blank nextUpdate (9.1% of
  /// responders, "technically always valid").
  std::optional<util::Duration> validity = util::Duration::days(7);
  /// thisUpdate is set this far BEFORE the generation instant. Zero models
  /// the 17.2% with no margin; negative models the 3% whose thisUpdate is
  /// in the future.
  util::Duration this_update_margin = util::Duration::hours(1);
  /// Co-located responder instances with unsynchronized update phases;
  /// >1 reproduces producedAt going backwards between consecutive scans.
  int backends = 1;

  /// Extra unsolicited SingleResponses packed into each response (Fig 7:
  /// 3.3% of responders always send 20 serials).
  int extra_serials = 0;
  /// Superfluous certificates beyond any delegation cert (Fig 6; e.g. the
  /// ocsp.cpc.gov.ae analogue sends the whole chain incl. root).
  int extra_certs = 0;
  /// Sign with a delegated responder certificate embedded in the response.
  bool delegate_signing = false;

  enum class Malform { kNone, kZeroBody, kEmptyBody, kJavascriptBody };
  /// Body corruption mode. Applied always, or only inside
  /// `malform_windows` when any are given (the sheca/postsignum spikes).
  Malform malform = Malform::kNone;
  std::vector<std::pair<util::SimTime, util::SimTime>> malform_windows;

  /// Answer with a SingleResponse whose serial differs from the request.
  bool wrong_serial = false;
  /// Corrupt the signature bytes.
  bool bad_signature = false;
  /// Answer every request with an OCSP-level tryLater error (RFC 6960
  /// §4.2.1) — the "responder returns an error" case of Table 3's
  /// retain-on-error experiment.
  bool respond_try_later = false;
};

/// A responder instance. Stateless between requests except for the
/// pre-generation cache (latest cycle per serial/backend), which is
/// mutex-protected so concurrent scanner probes can hit one responder; the
/// lock is held across a cache miss's signing so each (serial, backend,
/// cycle) is generated exactly once regardless of probe interleaving.
class OcspResponder {
 public:
  OcspResponder(CertificateAuthority& authority, ResponderBehavior behavior,
                std::string host, util::Rng& rng);

  const std::string& host() const { return host_; }
  /// The construction-time profile. `respond_try_later` reflects the
  /// initial value only — the live flag moved into an atomic (see
  /// try_later()) because set_try_later() races concurrent serving threads.
  const ResponderBehavior& behavior() const { return behavior_; }
  bool try_later() const {
    return try_later_.load(std::memory_order_relaxed);
  }
  /// Flips the responder into/out of tryLater mode at runtime (used by the
  /// Table 3 retain-on-error experiment). Logged at warn so the flip shows
  /// up in the flight recorder's event ring.
  void set_try_later(bool value);
  std::string url() const { return "http://" + host_ + "/"; }

  /// Pre-generation cache introspection (health checks, /statusz); both
  /// take the cache mutex, so they are callable from a serving thread.
  std::size_t cache_entries() const;
  std::size_t cache_bytes() const;

  /// Registers this responder's HTTP handler on the network. The responder
  /// must outlive the network.
  void install(net::Network& network, std::uint16_t port = 80);

  /// HTTP entry point (also callable directly in tests).
  net::HttpResponse handle(const net::HttpRequest& request, util::SimTime now,
                           net::Region from);

  /// Adapts handle() to a real-socket listener (net::SocketServer): `clock`
  /// supplies the SimTime "now" per request — wall-anchored for live
  /// serving, fixed for benchmarks. Safe on concurrent worker threads:
  /// handle() already serializes its pre-generation cache internally. The
  /// responder must outlive the returned handler.
  net::WireHandler wire_handler(std::function<util::SimTime()> clock);

  /// Builds (or serves from cache) the response for one CertID.
  ocsp::OcspResponse build_response(const ocsp::CertId& id, util::SimTime now);

  /// Encoded form of build_response — the hot path used by handle(); serves
  /// the cached encoding without a parse/re-encode round trip. A request
  /// nonce is echoed only by on-demand responders: pre-generated responses
  /// are cached and structurally cannot carry per-request nonces.
  util::Bytes build_response_der(
      const ocsp::CertId& id, util::SimTime now,
      const std::optional<util::Bytes>& nonce = std::nullopt);

 private:
  bool malform_active(util::SimTime now) const;
  util::SimTime generation_time(util::SimTime now, int backend) const;

  CertificateAuthority* authority_;
  ResponderBehavior behavior_;  ///< immutable after construction
  /// Live tryLater switch: written by set_try_later() (possibly from a
  /// control thread) while serving threads read it per request, so it
  /// cannot live inside the plain-struct behavior_.
  std::atomic<bool> try_later_{false};
  std::string host_;
  util::Rng rng_;  ///< fixed after construction; forked, never advanced
  /// Seed for the stateless per-request backend choice. A stateful rng_
  /// draw would make the chosen backend depend on global request order,
  /// which varies with scanner thread count; hashing (seed, serial, now)
  /// keeps footnote-17 producedAt regressions while staying
  /// order-independent.
  std::uint64_t backend_seed_ = 0;

  crypto::KeyPair delegate_key_;
  std::optional<x509::Certificate> delegate_cert_;
  std::vector<util::Duration> backend_phases_;
  // Expected CertID issuer hashes — requests naming a different issuer get
  // Unknown ("the certificate is not served by this responder", §2.2).
  // Leaves: intermediate hashes; the intermediate itself: root hashes.
  util::Bytes expected_name_hash_;
  util::Bytes expected_key_hash_;
  util::Bytes root_name_hash_;
  util::Bytes root_key_hash_;

  struct CacheEntry {
    std::int64_t cycle = -1;
    util::Bytes der;
  };
  // serial hex -> per-backend cached encoding for the current cycle.
  mutable util::Mutex mu_;  ///< guards cache_ across lookup + generation
  std::map<std::string, std::vector<CacheEntry>> cache_
      MUSTAPLE_GUARDED_BY(mu_);
  /// DER bytes resident in cache_, charged to "ca.response_cache" (updated
  /// under mu_; released wholesale on destruction).
  util::AllocTally cache_tally_ MUSTAPLE_GUARDED_BY(mu_);
};

}  // namespace mustaple::ca
