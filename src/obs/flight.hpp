// Pillar 8, crash half (flight recorder): when a four-month campaign dies
// six hours in, the process must explain itself. A FlightRecorder keeps a
// fixed-size LOCK-FREE ring of the most recent structured events — log
// records at >= warn (fed through a FlightLogSink attached to the default
// logger), study phase transitions, health-state changes — plus a tiny ring
// of the last-N probe ids the scanner accumulated, and an async-signal-safe
// handler for SIGSEGV/SIGABRT/SIGBUS/SIGFPE that writes two artifacts:
//
//   * postmortem.txt   — the ring, probe ids, and a backtrace_symbols_fd
//                        stack, human-readable
//   * postmortem.json  — schema `mustaple-postmortem/1`: the ring, the
//                        cached metrics+alloc snapshot, peak RSS, and the
//                        backtrace as hex frame addresses
//
// Signal-safety discipline: the handler allocates nothing and calls only
// open/write/close, getrusage, and backtrace(_symbols_fd). Everything that
// NEEDS allocation (rendering the metrics registry, the alloc table, the
// top profiler phases) is pre-rendered from normal code on the resource
// tick into a double-buffered fixed-size snapshot buffer that the handler
// merely write()s. Event slots are fixed char arrays with a per-slot
// sequence word, so a record half-written by a crashing thread is dumped —
// flagged "torn" — instead of deadlocking on a logger mutex.
//
// Like Registry/Timeline/IntrospectionServer, this is plain library code
// compiled regardless of MUSTAPLE_OBS_OFF; only the study/scanner wiring
// (and therefore every artifact) compiles out with the obs layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/logger.hpp"

namespace mustaple::obs {

class FlightRecorder {
 public:
  enum class EventKind : std::uint8_t { kLog, kPhase, kHealth };

  /// One decoded ring entry (snapshot()/postmortem form).
  struct Event {
    std::uint64_t index = 0;  ///< monotone event number since configure()
    std::uint64_t wall_unix_ms = 0;
    std::int64_t sim_unix = kNoSimTime;
    EventKind kind = EventKind::kLog;
    Level level = Level::kInfo;
    std::string component;
    std::string message;
    bool torn = false;  ///< writer was mid-store when the slot was read
  };

  static constexpr std::int64_t kNoSimTime = INT64_MIN;
  /// Last-N probe ids kept alongside the event ring.
  static constexpr std::size_t kProbeRing = 64;

  explicit FlightRecorder(std::size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  /// Re-sizes the ring, dropping every recorded event. NOT safe against
  /// concurrent record() — call while quiescent (study setup, test setup).
  void configure(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// Appends one event. Lock-free (one fetch_add + plain stores into the
  /// claimed slot) and safe from any thread; strings are truncated to the
  /// slot's fixed width.
  void record(EventKind kind, Level level, const char* component,
              const char* message, std::int64_t sim_unix = kNoSimTime);
  void note_phase(const char* phase);
  void note_health(const char* check, bool ok, const char* detail);
  /// Last-N probe-id ring (scanner accumulation). One fetch_add + one
  /// relaxed store — cheap enough for the probe hot path.
  void note_probe(std::uint64_t probe_id);

  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Decodes the ring oldest-to-newest. Normal-context reader (allocates);
  /// concurrent writers yield at most `torn` entries, never blocking.
  std::vector<Event> snapshot() const;
  /// The probe-id ring, oldest-to-newest (at most kProbeRing ids).
  std::vector<std::uint64_t> recent_probe_ids() const;

  /// Caches a pre-rendered JSON OBJECT (metrics + alloc + profile summary,
  /// composed by the study on each resource tick) that the signal handler
  /// embeds verbatim under "snapshot" in postmortem.json. Double-buffered:
  /// the handler never reads a buffer a writer may be filling. Oversized
  /// snapshots are replaced by {"truncated":true}.
  void set_snapshot_json(const std::string& json_object);

  /// Arms the SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers and remembers
  /// `artifact_dir` as the postmortem destination. Returns false when the
  /// directory path does not fit the handler's fixed buffer. Re-installing
  /// just updates the destination. The previous handlers are saved and
  /// re-raised after the dump, so sanitizer/crash reporters still run.
  bool install(const std::string& artifact_dir);
  /// Restores the saved handlers (idempotent).
  void uninstall();
  bool installed() const {
    return installed_.load(std::memory_order_acquire);
  }

  /// Writes postmortem.txt + postmortem.json into the installed artifact
  /// dir. Async-signal-safe (open/write/close only); also callable from
  /// normal code (tests, operator dumps) with signal_number 0. No-op until
  /// install() set a destination.
  void write_postmortem(const char* reason, int signal_number);

 private:
  struct Slot;

  void dump_text(int fd, const char* reason, int signal_number,
                 void* const* frames, int frame_count);
  void dump_json(int fd, const char* reason, int signal_number,
                 void* const* frames, int frame_count);

  std::size_t capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};

  std::atomic<std::uint64_t> probe_ids_[kProbeRing] = {};
  std::atomic<std::uint64_t> probe_next_{0};

  // Double-buffered cached snapshot (see set_snapshot_json).
  static constexpr std::size_t kSnapshotBytes = 256 * 1024;
  std::unique_ptr<char[]> snap_buf_[2];
  std::atomic<std::size_t> snap_len_[2] = {{0}, {0}};
  std::atomic<int> snap_active_{0};
  /// Set on handler entry: freezes set_snapshot_json so the handler's
  /// buffer cannot be overwritten mid-dump.
  std::atomic<bool> crashed_{false};

  std::atomic<bool> installed_{false};
  char dir_[512] = {};  ///< artifact dir, fixed so the handler needs no heap
};

/// The process-wide recorder the study, scanner, and health monitor feed.
FlightRecorder& default_flight_recorder();

/// Logger sink forwarding records at >= min_level into a FlightRecorder —
/// how "log records >= warn" reach the ring without new call sites.
class FlightLogSink : public Sink {
 public:
  explicit FlightLogSink(FlightRecorder& recorder,
                         Level min_level = Level::kWarn)
      : recorder_(&recorder), min_level_(min_level) {}

  void write(const LogRecord& record) override;

 private:
  FlightRecorder* recorder_;
  Level min_level_;
};

}  // namespace mustaple::obs
