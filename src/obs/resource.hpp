// Pillar 6 (resources): what the process costs while it simulates four
// months of the 2018 web. ResourceUsage is one snapshot of the kernel's
// view (/proc/self/statm for current RSS, getrusage for peak RSS, faults
// and CPU split); ResourceMonitor samples it on a wall-clock tick from a
// background thread, mirrors the numbers into a metrics Registry for the
// /metrics endpoint, and keeps a bounded in-memory timeline exportable as
// resources.csv / resources.json campaign artifacts.
//
// Determinism note: the monitor defaults to its OWN Registry rather than
// obs::default_registry(). Campaign outputs (timeline.csv, metrics.prom)
// snapshot the default registry and are bit-identical across thread counts;
// wall-clock RSS samples are not, so they must never leak into those
// artifacts. The IntrospectionServer renders both registries, so /metrics
// still shows everything.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

/// One kernel-side resource snapshot. All byte figures are bytes (statm
/// pages and ru_maxrss KiB are converted on read).
struct ResourceUsage {
  bool ok = false;  ///< false when /proc or getrusage was unavailable
  std::uint64_t rss_bytes = 0;       ///< current resident set (statm)
  std::uint64_t vm_bytes = 0;        ///< current virtual size (statm)
  std::uint64_t peak_rss_bytes = 0;  ///< lifetime peak RSS (ru_maxrss)
  std::uint64_t minor_faults = 0;    ///< cumulative (ru_minflt)
  std::uint64_t major_faults = 0;    ///< cumulative (ru_majflt)
  double user_cpu_seconds = 0.0;     ///< cumulative (ru_utime)
  double system_cpu_seconds = 0.0;   ///< cumulative (ru_stime)
};

/// Reads the current usage. Cheap (two syscalls + one small /proc read);
/// callable from any thread.
ResourceUsage read_resource_usage();

class ResourceMonitor {
 public:
  struct Sample;

  struct Options {
    /// Sampling cadence on the wall clock. The campaign's interesting
    /// allocations happen over seconds of wall time, so 100ms resolves them
    /// while costing ~10 syscall-pairs/second.
    std::uint64_t tick_ms = 100;
    /// Bound on retained samples; past it the monitor keeps updating the
    /// registry gauges but stops appending to the timeline (dropped()
    /// counts what was elided).
    std::size_t max_samples = 50'000;
    /// Registry the gauges are written to; nullptr = the monitor's own
    /// (see the determinism note above before pointing this at the
    /// process-default registry).
    Registry* registry = nullptr;
    /// Invoked after each sample, OUTSIDE the monitor's lock, on whichever
    /// thread took it (tick thread, or the caller of start/stop/sample_now).
    /// This is the health-evaluation / flight-snapshot heartbeat: the
    /// callback must be safe from a non-main thread and must not call back
    /// into the monitor.
    std::function<void(const Sample&)> on_sample;
  };

  struct Sample {
    double wall_ms = 0.0;  ///< since start(), steady clock
    ResourceUsage usage;
    std::uint64_t alloc_outstanding_bytes = 0;  ///< sum over AllocCounters
  };

  ResourceMonitor();  ///< default Options
  explicit ResourceMonitor(Options options);
  ResourceMonitor(const ResourceMonitor&) = delete;
  ResourceMonitor& operator=(const ResourceMonitor&) = delete;
  ~ResourceMonitor();

  /// Starts the sampling thread (idempotent). Takes one sample immediately
  /// so even a crash-fast run has a baseline row.
  void start();
  /// Stops and joins the thread, taking one final sample (idempotent).
  void stop();
  bool running() const {
    util::MutexLock lock(mu_);
    return running_;
  }

  /// Takes a sample right now (also from stopped monitors), updates the
  /// gauges, appends to the timeline, and returns it.
  Sample sample_now();

  /// The registry the gauges land in (the internal one unless Options
  /// pointed elsewhere). mustaple_proc_* gauges plus per-subsystem
  /// mustaple_alloc_*_bytes{subsystem=...} from the AllocCounter registry.
  Registry& registry() { return *registry_; }

  std::vector<Sample> samples() const;
  std::uint64_t dropped() const;

  /// "wall_ms,rss_bytes,peak_rss_bytes,vm_bytes,minor_faults,major_faults,
  ///  user_cpu_s,system_cpu_s,alloc_outstanding_bytes" rows.
  std::string render_csv() const;
  /// {"schema":"mustaple-resources/1","samples":[...]} plus a summary
  /// object (peak RSS, final CPU split, per-subsystem allocation totals).
  std::string render_json() const;

 private:
  void thread_main();
  Sample take_sample_locked(double wall_ms) MUSTAPLE_REQUIRES(mu_);

  Options options_;
  Registry own_registry_;
  Registry* registry_;

  mutable util::Mutex mu_;
  util::CondVar cv_;
  /// Lifecycle-managed, not lock-guarded: assigned in start() (under mu_,
  /// before the thread can observe itself) and joined in stop() strictly
  /// after the tick thread agreed to exit.
  std::thread thread_;
  bool running_ MUSTAPLE_GUARDED_BY(mu_) = false;
  bool stop_requested_ MUSTAPLE_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point start_time_ MUSTAPLE_GUARDED_BY(mu_);
  bool started_once_ MUSTAPLE_GUARDED_BY(mu_) = false;
  std::vector<Sample> samples_ MUSTAPLE_GUARDED_BY(mu_);
  std::uint64_t dropped_ MUSTAPLE_GUARDED_BY(mu_) = 0;
};

}  // namespace mustaple::obs
