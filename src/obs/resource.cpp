#include "obs/resource.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/alloc.hpp"
#include "util/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define MUSTAPLE_HAVE_RUSAGE 1
#else
#define MUSTAPLE_HAVE_RUSAGE 0
#endif

namespace mustaple::obs {

namespace {

double timeval_seconds(long sec, long usec) {
  return static_cast<double>(sec) + static_cast<double>(usec) / 1e6;
}

}  // namespace

ResourceUsage read_resource_usage() {
  ResourceUsage usage;
#if MUSTAPLE_HAVE_RUSAGE
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.ok = true;
#if defined(__APPLE__)
    usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
    usage.peak_rss_bytes =
        static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
    usage.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    usage.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    usage.user_cpu_seconds =
        timeval_seconds(ru.ru_utime.tv_sec, ru.ru_utime.tv_usec);
    usage.system_cpu_seconds =
        timeval_seconds(ru.ru_stime.tv_sec, ru.ru_stime.tv_usec);
  }
  // /proc/self/statm: "size resident shared text lib data dt", in pages.
  // Absent outside Linux — current RSS then falls back to the peak (still a
  // usable upper bound for the gauges).
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    std::uint64_t size_pages = 0;
    std::uint64_t resident_pages = 0;
    if (std::fscanf(f, "%" SCNu64 " %" SCNu64, &size_pages,
                    &resident_pages) == 2) {
      const auto page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
      usage.vm_bytes = size_pages * page;
      usage.rss_bytes = resident_pages * page;
    }
    std::fclose(f);
  }
  if (usage.rss_bytes == 0) usage.rss_bytes = usage.peak_rss_bytes;
#endif
  return usage;
}

ResourceMonitor::ResourceMonitor() : ResourceMonitor(Options()) {}

ResourceMonitor::ResourceMonitor(Options options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &own_registry_) {
  if (options_.tick_ms == 0) options_.tick_ms = 1;
}

ResourceMonitor::~ResourceMonitor() { stop(); }

void ResourceMonitor::start() {
  Sample baseline;
  {
    util::MutexLock lock(mu_);
    if (running_) return;
    if (!started_once_) {
      start_time_ = std::chrono::steady_clock::now();
      started_once_ = true;
    }
    stop_requested_ = false;
    running_ = true;
    baseline = take_sample_locked(0.0);  // baseline row
    thread_ = std::thread([this] { thread_main(); });
  }
  if (options_.on_sample) options_.on_sample(baseline);
}

void ResourceMonitor::stop() {
  {
    util::MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  Sample final_sample;
  {
    util::MutexLock lock(mu_);
    running_ = false;
    final_sample = take_sample_locked(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_time_)
            .count());  // final row
  }
  if (options_.on_sample) options_.on_sample(final_sample);
}

void ResourceMonitor::thread_main() {
  mu_.lock();
  while (!stop_requested_) {
    cv_.wait_for_ms(mu_, options_.tick_ms);
    if (stop_requested_) break;
    const Sample sample =
        take_sample_locked(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start_time_)
                               .count());
    if (options_.on_sample) {
      mu_.unlock();  // the hook may be slow; never under the monitor's lock
      options_.on_sample(sample);
      mu_.lock();
    }
  }
  mu_.unlock();
}

ResourceMonitor::Sample ResourceMonitor::sample_now() {
  Sample sample;
  {
    util::MutexLock lock(mu_);
    if (!started_once_) {
      start_time_ = std::chrono::steady_clock::now();
      started_once_ = true;
    }
    sample = take_sample_locked(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_time_)
            .count());
  }
  if (options_.on_sample) options_.on_sample(sample);
  return sample;
}

ResourceMonitor::Sample ResourceMonitor::take_sample_locked(double wall_ms) {
  Sample sample;
  sample.wall_ms = wall_ms;
  sample.usage = read_resource_usage();

  registry_->gauge("mustaple_proc_rss_bytes")
      .set(static_cast<double>(sample.usage.rss_bytes));
  registry_->gauge("mustaple_proc_peak_rss_bytes")
      .set_max(static_cast<double>(sample.usage.peak_rss_bytes));
  registry_->gauge("mustaple_proc_vm_bytes")
      .set(static_cast<double>(sample.usage.vm_bytes));
  registry_->gauge("mustaple_proc_minor_faults")
      .set(static_cast<double>(sample.usage.minor_faults));
  registry_->gauge("mustaple_proc_major_faults")
      .set(static_cast<double>(sample.usage.major_faults));
  registry_->gauge("mustaple_proc_user_cpu_seconds")
      .set(sample.usage.user_cpu_seconds);
  registry_->gauge("mustaple_proc_system_cpu_seconds")
      .set(sample.usage.system_cpu_seconds);

  std::uint64_t outstanding_total = 0;
  util::visit_alloc_counters([&](const std::string& name,
                                 const util::AllocCounter& counter) {
    const Labels labels = {{"subsystem", name}};
    registry_->gauge("mustaple_alloc_outstanding_bytes", labels)
        .set(static_cast<double>(counter.outstanding_bytes()));
    registry_->gauge("mustaple_alloc_allocated_bytes", labels)
        .set(static_cast<double>(counter.allocated_bytes()));
    registry_->gauge("mustaple_alloc_peak_outstanding_bytes", labels)
        .set_max(static_cast<double>(counter.peak_outstanding_bytes()));
    outstanding_total += counter.outstanding_bytes();
  });
  sample.alloc_outstanding_bytes = outstanding_total;
  registry_->gauge("mustaple_alloc_outstanding_bytes_all")
      .set(static_cast<double>(outstanding_total));

  if (samples_.size() < options_.max_samples) {
    samples_.push_back(sample);
  } else {
    ++dropped_;
  }
  return sample;
}

std::vector<ResourceMonitor::Sample> ResourceMonitor::samples() const {
  util::MutexLock lock(mu_);
  return samples_;
}

std::uint64_t ResourceMonitor::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

std::string ResourceMonitor::render_csv() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "wall_ms,rss_bytes,peak_rss_bytes,vm_bytes,minor_faults,"
         "major_faults,user_cpu_s,system_cpu_s,alloc_outstanding_bytes\n";
  for (const Sample& s : samples_) {
    out << util::format(
        "%.1f,%llu,%llu,%llu,%llu,%llu,%.3f,%.3f,%llu\n", s.wall_ms,
        static_cast<unsigned long long>(s.usage.rss_bytes),
        static_cast<unsigned long long>(s.usage.peak_rss_bytes),
        static_cast<unsigned long long>(s.usage.vm_bytes),
        static_cast<unsigned long long>(s.usage.minor_faults),
        static_cast<unsigned long long>(s.usage.major_faults),
        s.usage.user_cpu_seconds, s.usage.system_cpu_seconds,
        static_cast<unsigned long long>(s.alloc_outstanding_bytes));
  }
  return out.str();
}

std::string ResourceMonitor::render_json() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"schema\":\"mustaple-resources/1\",";
  const ResourceUsage last =
      samples_.empty() ? read_resource_usage() : samples_.back().usage;
  out << util::format(
      "\"summary\":{\"peak_rss_bytes\":%llu,\"user_cpu_s\":%.3f,"
      "\"system_cpu_s\":%.3f,\"minor_faults\":%llu,\"major_faults\":%llu,"
      "\"samples\":%zu,\"dropped\":%llu,\"alloc\":{",
      static_cast<unsigned long long>(last.peak_rss_bytes),
      last.user_cpu_seconds, last.system_cpu_seconds,
      static_cast<unsigned long long>(last.minor_faults),
      static_cast<unsigned long long>(last.major_faults), samples_.size(),
      static_cast<unsigned long long>(dropped_));
  bool first = true;
  util::visit_alloc_counters([&](const std::string& name,
                                 const util::AllocCounter& counter) {
    if (!first) out << ",";
    first = false;
    out << util::format(
        "\"%s\":{\"allocated_bytes\":%llu,\"freed_bytes\":%llu,"
        "\"outstanding_bytes\":%llu,\"peak_outstanding_bytes\":%llu}",
        name.c_str(), static_cast<unsigned long long>(counter.allocated_bytes()),
        static_cast<unsigned long long>(counter.freed_bytes()),
        static_cast<unsigned long long>(counter.outstanding_bytes()),
        static_cast<unsigned long long>(counter.peak_outstanding_bytes()));
  });
  out << "}},\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    if (i) out << ",";
    out << util::format(
        "{\"wall_ms\":%.1f,\"rss_bytes\":%llu,\"peak_rss_bytes\":%llu,"
        "\"vm_bytes\":%llu,\"minor_faults\":%llu,\"major_faults\":%llu,"
        "\"user_cpu_s\":%.3f,\"system_cpu_s\":%.3f,"
        "\"alloc_outstanding_bytes\":%llu}",
        s.wall_ms, static_cast<unsigned long long>(s.usage.rss_bytes),
        static_cast<unsigned long long>(s.usage.peak_rss_bytes),
        static_cast<unsigned long long>(s.usage.vm_bytes),
        static_cast<unsigned long long>(s.usage.minor_faults),
        static_cast<unsigned long long>(s.usage.major_faults),
        s.usage.user_cpu_seconds, s.usage.system_cpu_seconds,
        static_cast<unsigned long long>(s.alloc_outstanding_bytes));
  }
  out << "]}";
  return out.str();
}

}  // namespace mustaple::obs
