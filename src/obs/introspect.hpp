// Pillar 7 (live introspection): a minimal epoll-based HTTP server that
// makes a running campaign observable from outside the process — the first
// real-socket code in the repo. It reuses the net::Http{Request,Response}
// wire machinery the simulated responders already speak, but binds it to an
// actual TCP listener:
//
//   * GET /metrics  — Prometheus text exposition of every attached Registry
//   * GET /healthz  — liveness ("ok")
//   * GET /statusz  — human-readable status: process resources, campaign
//                     progress (via a pluggable provider), top profile
//                     phases
//
// Security posture: binds 127.0.0.1 by default and never parses request
// bodies; it is a loopback diagnostics port, not a service endpoint
// (docs/OBSERVABILITY.md, "Introspection server"). Serving threads only
// READ observability state, so a live /metrics scrape cannot perturb
// campaign outputs — the determinism contract is unaffected.
//
// The server is plain library code compiled regardless of MUSTAPLE_OBS_OFF
// (same policy as Registry/Timeline); only the macro layer compiles out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/http.hpp"
#include "util/mutex.hpp"
#include "util/result.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

class Registry;
class Profiler;
class HealthMonitor;

class IntrospectionServer {
 public:
  struct Options {
    /// Loopback by default; widening this is an explicit operator decision.
    std::string bind_address = "127.0.0.1";
    /// 0 asks the kernel for an ephemeral port; read it back via port().
    std::uint16_t port = 0;
    /// Accepted connections beyond this are closed immediately.
    std::size_t max_connections = 64;
    /// Requests whose head grows past this are rejected with 431.
    std::size_t max_request_bytes = 64 * 1024;
    /// A connection that has not completed its request (or drained its
    /// response) within this window is answered 408 / closed — a slow or
    /// stalled loopback client must never pin a connection slot.
    std::uint64_t read_timeout_ms = 5000;
  };

  /// Supplies the free-form middle section of /statusz (campaign progress,
  /// cache hit rates, ...). Called from the serving thread: must be
  /// thread-safe and read-only.
  using StatusProvider = std::function<std::string()>;

  IntrospectionServer();  ///< default Options
  explicit IntrospectionServer(Options options);
  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;
  ~IntrospectionServer();

  /// Attaches a registry rendered at /metrics (and summarized in /statusz).
  /// The pointer must outlive the server. Call before start().
  void add_registry(std::string name, const Registry* registry);
  /// Attaches the profiler whose top phases /statusz shows. Before start().
  void set_profiler(const Profiler* profiler);
  /// Attaches the health monitor: /healthz becomes per-check JSON (503 on a
  /// critical breach) and /statusz gains a health section. Before start();
  /// nullptr (the default) keeps the plain "ok" liveness behaviour.
  void set_health(const HealthMonitor* health);
  void set_status_provider(StatusProvider provider);

  /// Binds, listens, and spawns the epoll serving thread. Fails (with a
  /// stable error code like "introspect.bind") rather than throwing when
  /// the port is taken.
  util::Status start();
  /// Stops the serving thread and closes every socket (idempotent).
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually-bound port (resolves Options::port == 0); 0 before start.
  std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// The routing core, exposed so tests can exercise handlers without a
  /// socket. Thread-safe.
  net::HttpResponse handle(const net::HttpRequest& request) const;

 private:
  struct Connection;

  void serve_loop();
  void accept_ready(int epoll_fd);
  /// Returns false when the connection should be dropped.
  bool connection_ready(int epoll_fd, Connection& conn, std::uint32_t events);
  void queue_response(int epoll_fd, Connection& conn,
                      net::HttpResponse response);
  /// Returns false once the response is fully flushed (close the socket).
  bool flush(Connection& conn);
  void close_connection(int epoll_fd, Connection& conn);
  /// 408s unresponded connections past their deadline and drops expired
  /// ones that already have a response queued.
  void sweep_expired(int epoll_fd);
  void stop_fds();

  std::string render_metrics() const;
  std::string render_statusz() const;

  Options options_;
  std::vector<std::pair<std::string, const Registry*>> registries_;
  const Profiler* profiler_ = nullptr;
  const HealthMonitor* health_ = nullptr;
  mutable util::Mutex provider_mu_;  ///< guards status_provider_ swaps
  StatusProvider status_provider_ MUSTAPLE_GUARDED_BY(provider_mu_);

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd poked by stop() to wake epoll_wait
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace mustaple::obs
