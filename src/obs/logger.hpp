// Structured, leveled logging for the study pipeline. Every record carries
// BOTH clocks: the real wall clock (when the process emitted it) and the
// simulated campaign clock (where in the four-month window the simulator
// was), so a log line can be correlated with paper time and with profiling.
// Records are key=value structured, not printf soup, and fan out to
// pluggable sinks: stderr text, an in-memory ring buffer (tests), and a
// JSONL file (offline analysis).
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/sim_time.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

enum class Level : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(Level level);

/// One structured key=value pair.
struct Field {
  std::string key;
  std::string value;
};

inline Field field(std::string key, std::string value) {
  return {std::move(key), std::move(value)};
}
inline Field field(std::string key, const char* value) {
  return {std::move(key), value};
}
inline Field field(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return {std::move(key), buf};
}
inline Field field(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}
template <std::integral T>
Field field(std::string key, T value) {
  return {std::move(key), std::to_string(value)};
}

struct LogRecord {
  Level level = Level::kInfo;
  std::string component;  ///< subsystem tag: "net", "scan", "ca", "core"...
  std::string message;
  std::vector<Field> fields;
  std::chrono::system_clock::time_point wall_time;
  std::optional<util::SimTime> sim_time;  ///< absent outside a simulation

  /// "<wall ISO8601> LEVEL [component] message key=value ... sim=<...>".
  std::string to_text() const;
  /// One-line JSON object with "wall", "wall_unix_ms", "sim", "sim_unix",
  /// "level", "component", "message", and the fields flattened in.
  std::string to_json() const;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const LogRecord& record) = 0;
};

class StderrSink : public Sink {
 public:
  void write(const LogRecord& record) override;
};

/// Keeps the last `capacity` records in memory; ideal for test assertions
/// and post-mortem dumps without touching disk.
class RingBufferSink : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1024)
      : capacity_(capacity ? capacity : 1) {}

  void write(const LogRecord& record) override;
  const std::deque<LogRecord>& records() const { return records_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::deque<LogRecord> records_;
};

/// Appends LogRecord::to_json() lines to a file (truncated on open).
class JsonlFileSink : public Sink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;
  JsonlFileSink(const JsonlFileSink&) = delete;
  JsonlFileSink& operator=(const JsonlFileSink&) = delete;

  bool ok() const { return file_ != nullptr; }
  void write(const LogRecord& record) override;

 private:
  std::FILE* file_ = nullptr;
};

class Logger {
 public:
  Level level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(Level level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Cheap pre-flight: a disabled level (or a sinkless logger) costs two
  /// relaxed atomic loads at the call site, no formatting and no lock.
  /// (Both cells are atomics precisely so this can stay lock-free while
  /// set_level/add_sink run concurrently; has_sinks_ mirrors
  /// sinks_.empty() and is only written under mu_.)
  bool enabled(Level level) const {
    return level >= level_.load(std::memory_order_relaxed) &&
           has_sinks_.load(std::memory_order_relaxed);
  }

  void add_sink(std::shared_ptr<Sink> sink);
  /// Detaches one sink (no-op when absent) — how the study removes its
  /// FlightLogSink at run end without clobbering caller-installed sinks.
  void remove_sink(const std::shared_ptr<Sink>& sink);
  void clear_sinks();

  /// Source of the simulated clock stamped into records (e.g. the study's
  /// EventLoop). Pass nullptr to stop stamping sim time.
  void set_sim_clock(std::function<util::SimTime()> clock);

  void log(Level level, std::string component, std::string message,
           std::vector<Field> fields = {});

 private:
  std::atomic<Level> level_{Level::kInfo};
  std::atomic<bool> has_sinks_{false};  ///< sinks_.empty() mirror for enabled()
  util::Mutex mu_;  ///< serializes sink fan-out under concurrent log() calls
  std::vector<std::shared_ptr<Sink>> sinks_ MUSTAPLE_GUARDED_BY(mu_);
  std::function<util::SimTime()> sim_clock_ MUSTAPLE_GUARDED_BY(mu_);
};

/// The process-wide logger all MUSTAPLE_LOG_* macros write to. Starts with
/// no sinks (silent) at level kInfo.
Logger& default_logger();

}  // namespace mustaple::obs
