// Causal probe tracing on the SIMULATED clock. A TraceContext carries the
// identity of the probe being serviced (campaign trace id + per-probe id);
// the EventLoop captures the current context at schedule_at/schedule_after
// time and restores it when the event dispatches, so a web-server staple
// refresh chain or a scanner probe keeps its identity across arbitrarily
// deep callback hops. Instrumented layers append sim-time-stamped events to
// a TraceLog, whose render_chrome_trace() emits the Chrome trace-event JSON
// array format — loadable in Perfetto (ui.perfetto.dev) or chrome://tracing
// — with one track (tid) per vantage point, so a four-month campaign opens
// as one timeline.
//
// Thread safety: the "current" context is thread_local (each scanner worker
// carries its own probe identity), saved/restored LIFO by TraceScope within
// a thread. TraceLog::instant/complete take an internal mutex; enabled() is
// an atomic read so the disabled fast path stays one branch. Accessors that
// return references (events()) require writers to have quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hpp"
#include "util/mutex.hpp"
#include "util/sim_time.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

/// Identity of the causal chain an event belongs to. trace_id groups a
/// logical operation (one scanner probe, one staple-refresh chain);
/// probe_id numbers the individual request inside the campaign. Zero ids
/// mean "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t probe_id = 0;

  bool active() const { return trace_id != 0 || probe_id != 0; }
};

/// The context in effect right now (default-constructed when none).
TraceContext current_trace();

/// Process-wide id dispenser; never returns 0.
std::uint64_t next_trace_id();

/// RAII: installs `context` as current, restores the previous one on exit.
class TraceScope {
 public:
  explicit TraceScope(TraceContext context);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  TraceContext previous_;
};

/// One trace event. Timestamps are MICROSECONDS of simulated time relative
/// to the log's epoch (Chrome trace-event convention).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';         ///< 'X' complete, 'i' instant
  std::int64_t ts_us = 0;   ///< sim-time micros since the log's epoch
  std::int64_t dur_us = 0;  ///< phase 'X' only
  std::uint32_t tid = 0;    ///< track: vantage-region index, or kControlTrack
  TraceContext context;     ///< rendered into args as trace=/probe=
  std::vector<std::pair<std::string, std::string>> args;
};

/// Bounded event collector. Starts disabled so idle processes pay one
/// branch per call site; the study (or a bench) enables it around a
/// campaign, then renders trace.json. When the capacity is hit, further
/// events are counted as dropped rather than growing without bound — a
/// four-month default campaign generates millions of probe events.
class TraceLog {
 public:
  /// tid for simulator-control events that belong to no vantage point.
  static constexpr std::uint32_t kControlTrack = 99;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Starts collection; `epoch` becomes ts 0 (pass the loop's start so no
  /// event lands at a negative timestamp).
  void enable(util::SimTime epoch);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  std::size_t capacity() const {
    util::MutexLock lock(mu_);
    return capacity_;
  }
  void set_capacity(std::size_t capacity) {
    util::MutexLock lock(mu_);
    capacity_ = capacity ? capacity : 1;
  }

  /// Names a track in the exported trace (e.g. tid 2 -> "vantage:sao-paulo").
  void set_track_name(std::uint32_t tid, std::string name);

  void instant(std::string name, std::string category, util::SimTime at,
               std::uint32_t tid,
               std::vector<std::pair<std::string, std::string>> args = {});
  /// A span of simulated time: `duration_ms` is SIMULATED milliseconds
  /// (e.g. a fetch's modelled network latency).
  void complete(std::string name, std::string category, util::SimTime start,
                double duration_ms, std::uint32_t tid,
                std::vector<std::pair<std::string, std::string>> args = {});

  /// Quiesced-read accessor: callers must ensure no concurrent writers
  /// (a temporal precondition, hence the analysis opt-out).
  const std::vector<TraceEvent>& events() const
      MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }
  std::size_t dropped() const {
    util::MutexLock lock(mu_);
    return dropped_;
  }
  util::SimTime epoch() const { return epoch_; }

  /// The Chrome trace-event JSON array format: metadata records naming the
  /// process and tracks, then every event in insertion order. Open the
  /// output in Perfetto or chrome://tracing. Quiesced-read like events().
  std::string render_chrome_trace() const MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS;

  /// Clears events, dropped count, and track names; keeps capacity.
  void reset();

 private:
  void add(TraceEvent event);

  std::atomic<bool> enabled_{false};
  util::SimTime epoch_{};
  mutable util::Mutex mu_;
  std::size_t capacity_ MUSTAPLE_GUARDED_BY(mu_) = 200'000;
  std::size_t dropped_ MUSTAPLE_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> events_ MUSTAPLE_GUARDED_BY(mu_);
  std::vector<std::pair<std::uint32_t, std::string>> track_names_
      MUSTAPLE_GUARDED_BY(mu_);
};

/// The process-wide log the trace macros and instrumented layers write to.
TraceLog& default_trace_log();

#if MUSTAPLE_OBS_ENABLED

/// RAII current-trace override bound to a local variable.
#define MUSTAPLE_TRACE_SCOPE(var_, context_) \
  ::mustaple::obs::TraceScope var_(context_)

/// Sim-time instant event against the default log; args are only built when
/// the log is collecting.
#define MUSTAPLE_TRACE_INSTANT(name_, category_, at_, tid_, ...)           \
  do {                                                                     \
    ::mustaple::obs::TraceLog& mustaple_obs_tl =                           \
        ::mustaple::obs::default_trace_log();                              \
    if (mustaple_obs_tl.enabled()) {                                       \
      mustaple_obs_tl.instant(name_, category_, at_, tid_, {__VA_ARGS__}); \
    }                                                                      \
  } while (0)

/// Sim-time complete (span) event; duration in simulated milliseconds.
#define MUSTAPLE_TRACE_COMPLETE(name_, category_, start_, dur_ms_, tid_, ...) \
  do {                                                                        \
    ::mustaple::obs::TraceLog& mustaple_obs_tl =                              \
        ::mustaple::obs::default_trace_log();                                 \
    if (mustaple_obs_tl.enabled()) {                                          \
      mustaple_obs_tl.complete(name_, category_, start_, dur_ms_, tid_,       \
                               {__VA_ARGS__});                                \
    }                                                                         \
  } while (0)

#else  // MUSTAPLE_OBS_OFF

#define MUSTAPLE_TRACE_SCOPE(var_, context_) ((void)0)
#define MUSTAPLE_TRACE_INSTANT(name_, category_, at_, tid_, ...) ((void)0)
#define MUSTAPLE_TRACE_COMPLETE(name_, category_, start_, dur_ms_, tid_, ...) \
  ((void)0)

#endif  // MUSTAPLE_OBS_ENABLED

}  // namespace mustaple::obs
