#include "obs/logger.hpp"

#include <ctime>

#include "util/strings.hpp"

namespace mustaple::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// "2026-08-05T12:34:56.789Z" from a system_clock time point.
std::string format_wall(std::chrono::system_clock::time_point tp) {
  const auto since_epoch = tp.time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch);
  const std::time_t secs = static_cast<std::time_t>(ms.count() / 1000);
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &utc);
  return util::format("%s.%03dZ", buf, static_cast<int>(ms.count() % 1000));
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kTrace:
      return "trace";
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "?";
}

std::string LogRecord::to_text() const {
  std::string out = format_wall(wall_time);
  out += " ";
  out += to_string(level);
  out += " [" + component + "] " + message;
  for (const Field& f : fields) {
    out += " " + f.key + "=" + f.value;
  }
  if (sim_time) out += " sim=\"" + util::format_time(*sim_time) + "\"";
  return out;
}

std::string LogRecord::to_json() const {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      wall_time.time_since_epoch());
  std::string out = "{\"wall\":\"" + format_wall(wall_time) + "\"";
  out += util::format(",\"wall_unix_ms\":%lld",
                      static_cast<long long>(ms.count()));
  if (sim_time) {
    out += ",\"sim\":\"" + util::format_time(*sim_time) + "\"";
    out += util::format(",\"sim_unix\":%lld",
                        static_cast<long long>(sim_time->unix_seconds));
  }
  out += std::string(",\"level\":\"") + to_string(level) + "\"";
  out += ",\"component\":\"" + json_escape(component) + "\"";
  out += ",\"message\":\"" + json_escape(message) + "\"";
  for (const Field& f : fields) {
    out += ",\"" + json_escape(f.key) + "\":\"" + json_escape(f.value) + "\"";
  }
  out += "}";
  return out;
}

void StderrSink::write(const LogRecord& record) {
  const std::string line = record.to_text() + "\n";
  std::fputs(line.c_str(), stderr);
}

void RingBufferSink::write(const LogRecord& record) {
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(record);
}

void RingBufferSink::clear() {
  records_.clear();
  dropped_ = 0;
}

JsonlFileSink::JsonlFileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlFileSink::~JsonlFileSink() {
  if (file_) std::fclose(file_);
}

void JsonlFileSink::write(const LogRecord& record) {
  if (!file_) return;
  const std::string line = record.to_json() + "\n";
  std::fputs(line.c_str(), file_);
  std::fflush(file_);
}

void Logger::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) return;
  util::MutexLock lock(mu_);
  sinks_.push_back(std::move(sink));
  has_sinks_.store(true, std::memory_order_relaxed);
}

void Logger::remove_sink(const std::shared_ptr<Sink>& sink) {
  util::MutexLock lock(mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (*it == sink) {
      sinks_.erase(it);
      break;
    }
  }
  has_sinks_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Logger::clear_sinks() {
  util::MutexLock lock(mu_);
  sinks_.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

void Logger::set_sim_clock(std::function<util::SimTime()> clock) {
  util::MutexLock lock(mu_);
  sim_clock_ = std::move(clock);
}

void Logger::log(Level level, std::string component, std::string message,
                 std::vector<Field> fields) {
  if (!enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.component = std::move(component);
  record.message = std::move(message);
  record.fields = std::move(fields);
  record.wall_time = std::chrono::system_clock::now();
  // Sinks (ring buffer deque, JSONL FILE*) are not individually locked;
  // serialize the fan-out so concurrent emitters cannot interleave inside
  // a sink. The sim-time stamp also happens here: sim_clock_ is guarded,
  // so a concurrent set_sim_clock() can never race the read.
  util::MutexLock lock(mu_);
  if (sim_clock_) record.sim_time = sim_clock_();
  for (const auto& sink : sinks_) sink->write(record);
}

Logger& default_logger() {
  static Logger logger;
  return logger;
}

}  // namespace mustaple::obs
