// mustaple::obs umbrella: one include gives call sites the structured
// logger, the metrics registry, and trace spans, behind macros that compile
// to NOTHING when MUSTAPLE_OBS_OFF is defined (e.g. a bench TU that wants
// to measure the simulator with zero instrumentation cost, or the whole
// build via -DMUSTAPLE_OBS=OFF). The macro layer is the supported call-site
// API; the classes behind it stay usable directly when a component wants
// its own Registry/Logger (tests do).
//
// Naming convention for metrics: mustaple_<layer>_<name>[_total|_ms], e.g.
// mustaple_net_fetch_total, mustaple_loop_dispatch_latency_ms.
#pragma once

#include "obs/config.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

#if MUSTAPLE_OBS_ENABLED

/// Leveled structured log to the default logger. Fields are only built when
/// the level passes and at least one sink is attached.
#define MUSTAPLE_LOG(level_, component_, message_, ...)                     \
  do {                                                                      \
    ::mustaple::obs::Logger& mustaple_obs_lg =                              \
        ::mustaple::obs::default_logger();                                  \
    if (mustaple_obs_lg.enabled(level_)) {                                  \
      mustaple_obs_lg.log(level_, component_, message_, {__VA_ARGS__});     \
    }                                                                       \
  } while (0)

#define MUSTAPLE_LOG_DEBUG(component_, ...) \
  MUSTAPLE_LOG(::mustaple::obs::Level::kDebug, component_, __VA_ARGS__)
#define MUSTAPLE_LOG_INFO(component_, ...) \
  MUSTAPLE_LOG(::mustaple::obs::Level::kInfo, component_, __VA_ARGS__)
#define MUSTAPLE_LOG_WARN(component_, ...) \
  MUSTAPLE_LOG(::mustaple::obs::Level::kWarn, component_, __VA_ARGS__)
#define MUSTAPLE_LOG_ERROR(component_, ...) \
  MUSTAPLE_LOG(::mustaple::obs::Level::kError, component_, __VA_ARGS__)

/// Counter/gauge/histogram one-liners against the default registry.
#define MUSTAPLE_COUNT(name_) \
  ::mustaple::obs::default_registry().counter(name_).inc()
#define MUSTAPLE_COUNT_N(name_, n_) \
  ::mustaple::obs::default_registry().counter(name_).inc(n_)
#define MUSTAPLE_COUNT_L(name_, key_, value_) \
  ::mustaple::obs::default_registry().counter(name_, {{key_, value_}}).inc()
#define MUSTAPLE_GAUGE_SET(name_, value_)         \
  ::mustaple::obs::default_registry().gauge(name_).set( \
      static_cast<double>(value_))
#define MUSTAPLE_GAUGE_MAX(name_, value_)             \
  ::mustaple::obs::default_registry().gauge(name_).set_max( \
      static_cast<double>(value_))
#define MUSTAPLE_OBSERVE(name_, value_)                   \
  ::mustaple::obs::default_registry().histogram(name_).observe( \
      static_cast<double>(value_))

/// RAII trace span bound to a local variable: MUSTAPLE_SPAN(span, "phase").
#define MUSTAPLE_SPAN(var_, name_) ::mustaple::obs::Span var_(name_)

#else  // MUSTAPLE_OBS_OFF: every call site vanishes.

#define MUSTAPLE_LOG(level_, component_, message_, ...) ((void)0)
#define MUSTAPLE_LOG_DEBUG(component_, ...) ((void)0)
#define MUSTAPLE_LOG_INFO(component_, ...) ((void)0)
#define MUSTAPLE_LOG_WARN(component_, ...) ((void)0)
#define MUSTAPLE_LOG_ERROR(component_, ...) ((void)0)
#define MUSTAPLE_COUNT(name_) ((void)0)
#define MUSTAPLE_COUNT_N(name_, n_) ((void)0)
#define MUSTAPLE_COUNT_L(name_, key_, value_) ((void)0)
#define MUSTAPLE_GAUGE_SET(name_, value_) ((void)0)
#define MUSTAPLE_GAUGE_MAX(name_, value_) ((void)0)
#define MUSTAPLE_OBSERVE(name_, value_) ((void)0)
#define MUSTAPLE_SPAN(var_, name_) ((void)0)

#endif  // MUSTAPLE_OBS_ENABLED
