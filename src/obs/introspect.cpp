#include "obs/introspect.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/resource.hpp"
#include "util/alloc.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#define MUSTAPLE_HAVE_EPOLL 1
#else
#define MUSTAPLE_HAVE_EPOLL 0
#endif

namespace mustaple::obs {

namespace {

// epoll_event.data.u64 tags for the two non-connection descriptors;
// Connection pointers are always aligned well past these values.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

/// True when `wire` holds a complete request head but short body — the
/// parser has already succeeded, yet more socket reads are needed.
bool body_incomplete(const net::HttpRequest& request) {
  const std::string declared = request.headers.get("content-length");
  if (declared.empty()) return false;
  std::uint64_t wanted = 0;
  for (const char c : declared) {  // digits only; anything else => complete
    if (c < '0' || c > '9') return false;
    wanted = wanted * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return request.body.size() < wanted;
}

}  // namespace

struct IntrospectionServer::Connection {
  int fd = -1;
  util::Bytes in;
  util::Bytes out;
  std::size_t out_off = 0;
  bool responded = false;
  /// When the read (or, after a response is queued, write) window expires.
  std::chrono::steady_clock::time_point deadline{};
};

IntrospectionServer::IntrospectionServer()
    : IntrospectionServer(Options()) {}

IntrospectionServer::IntrospectionServer(Options options)
    : options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { stop(); }

void IntrospectionServer::add_registry(std::string name,
                                       const Registry* registry) {
  registries_.emplace_back(std::move(name), registry);
}

void IntrospectionServer::set_profiler(const Profiler* profiler) {
  profiler_ = profiler;
}

void IntrospectionServer::set_health(const HealthMonitor* health) {
  health_ = health;
}

void IntrospectionServer::set_status_provider(StatusProvider provider) {
  util::MutexLock lock(provider_mu_);
  status_provider_ = std::move(provider);
}

util::Status IntrospectionServer::start() {
#if !MUSTAPLE_HAVE_EPOLL
  return util::Status::failure("introspect.unsupported",
                               "epoll server requires Linux");
#else
  if (running()) return util::Status::success();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return util::Status::failure("introspect.socket", std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::failure("introspect.bad_address",
                                 options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::failure("introspect.bind", detail);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::failure("introspect.listen", detail);
  }

  struct sockaddr_in bound {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (wake_fd_ < 0 || epoll_fd_ < 0) {
    const std::string detail = std::strerror(errno);
    stop_fds();
    return util::Status::failure("introspect.epoll", detail);
  }

  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return util::Status::success();
#endif
}

void IntrospectionServer::stop_fds() {
#if MUSTAPLE_HAVE_EPOLL
  for (const auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
#endif
}

void IntrospectionServer::stop() {
#if MUSTAPLE_HAVE_EPOLL
  if (!running()) return;
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  thread_.join();
  stop_fds();
#endif
}

#if MUSTAPLE_HAVE_EPOLL

void IntrospectionServer::serve_loop() {
  std::array<struct epoll_event, 32> events{};
  while (running_.load(std::memory_order_acquire)) {
    // Tighten the poll while connections are pending so deadline sweeps
    // stay responsive; idle servers keep the cheap 500ms cadence.
    const int timeout_ms = connections_.empty() ? 500 : 50;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) continue;  // running_ re-checked by the loop
      if (tag == kListenTag) {
        accept_ready(epoll_fd_);
        continue;
      }
      auto* conn = reinterpret_cast<Connection*>(tag);
      if (!connection_ready(epoll_fd_, *conn, events[i].events)) {
        close_connection(epoll_fd_, *conn);
      }
    }
    sweep_expired(epoll_fd_);
  }
}

void IntrospectionServer::sweep_expired(int epoll_fd) {
  const auto now = std::chrono::steady_clock::now();
  // queue_response/close_connection mutate connections_, so collect first.
  std::vector<Connection*> expired;
  for (const auto& conn : connections_) {
    if (now >= conn->deadline) expired.push_back(conn.get());
  }
  for (Connection* conn : expired) {
    if (!conn->responded) {
      queue_response(epoll_fd, *conn,
                     net::HttpResponse::make(408, "Request Timeout",
                                             util::bytes_of("timed out\n"),
                                             "text/plain"));
    } else {
      close_connection(epoll_fd, *conn);  // stalled writer: drop it
    }
  }
}

void IntrospectionServer::accept_ready(int epoll_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.read_timeout_ms);
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.u64 = reinterpret_cast<std::uint64_t>(conn.get());
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.push_back(std::move(conn));
  }
}

bool IntrospectionServer::connection_ready(int epoll_fd, Connection& conn,
                                           std::uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) return false;

  if ((events & EPOLLIN) != 0 && !conn.responded) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t got = ::read(conn.fd, buf, sizeof(buf));
      if (got > 0) {
        conn.in.insert(conn.in.end(), buf, buf + got);
        continue;
      }
      if (got == 0) return false;  // peer closed before a full request
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }

    // Size cap first, before any parse outcome: an unterminated head, a
    // Content-Length body, and a complete-but-huge request all hit the same
    // ceiling — a diagnostics port never needs requests this large.
    if (conn.in.size() > options_.max_request_bytes) {
      queue_response(epoll_fd, conn,
                     net::HttpResponse::make(
                         431, "Request Header Fields Too Large",
                         util::bytes_of("request too large\n"), "text/plain"));
      return true;
    }

    auto parsed = net::HttpRequest::parse(conn.in);
    if (!parsed.ok()) {
      if (parsed.error().code == "http.no_header_terminator") {
        return true;  // need more bytes (or the cap/deadline sweep)
      }
      queue_response(
          epoll_fd, conn,
          net::HttpResponse::make(400, "Bad Request",
                                  util::bytes_of(parsed.error().to_string() +
                                                 "\n"),
                                  "text/plain"));
      return true;
    }
    if (body_incomplete(parsed.value())) {
      return true;  // declared body still arriving; capped by the check above
    }
    queue_response(epoll_fd, conn, handle(parsed.value()));
  }

  if ((events & EPOLLOUT) != 0 || conn.responded) return flush(conn);
  return true;
}

void IntrospectionServer::queue_response(int epoll_fd, Connection& conn,
                                         net::HttpResponse response) {
  response.headers.set("Connection", "close");
  conn.out = response.serialize();
  conn.out_off = 0;
  conn.responded = true;
  // Fresh window for draining the response; a reader that stalls as a
  // writer is swept (closed) rather than re-answered.
  conn.deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.read_timeout_ms);
  struct epoll_event ev {};
  ev.events = EPOLLOUT;
  ev.data.u64 = reinterpret_cast<std::uint64_t>(&conn);
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool IntrospectionServer::flush(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t sent = ::write(conn.fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off);
    if (sent > 0) {
      conn.out_off += static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // retry later
    if (errno == EINTR) continue;
    return false;
  }
  return false;  // fully flushed: close (we always send Connection: close)
}

void IntrospectionServer::close_connection(int epoll_fd, Connection& conn) {
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  const auto it = std::find_if(
      connections_.begin(), connections_.end(),
      [&](const std::unique_ptr<Connection>& c) { return c.get() == &conn; });
  if (it != connections_.end()) connections_.erase(it);
}

#else  // !MUSTAPLE_HAVE_EPOLL

void IntrospectionServer::serve_loop() {}
void IntrospectionServer::accept_ready(int) {}
void IntrospectionServer::sweep_expired(int) {}
bool IntrospectionServer::connection_ready(int, Connection&, std::uint32_t) {
  return false;
}
void IntrospectionServer::queue_response(int, Connection&, net::HttpResponse) {}
bool IntrospectionServer::flush(Connection&) { return false; }
void IntrospectionServer::close_connection(int, Connection&) {}

#endif  // MUSTAPLE_HAVE_EPOLL

net::HttpResponse IntrospectionServer::handle(
    const net::HttpRequest& request) const {
  if (request.method != "GET") {
    return net::HttpResponse::make(405, "Method Not Allowed",
                                   util::bytes_of("GET only\n"), "text/plain");
  }
  if (request.path == "/healthz") {
    // Without a monitor attached this stays the PR-7 liveness ping; with
    // one it is a readiness probe: per-check JSON, 503 on critical breach.
    if (health_ == nullptr) {
      return net::HttpResponse::make(200, "OK", util::bytes_of("ok\n"),
                                     "text/plain");
    }
    const std::string body = health_->render_json() + "\n";
    if (health_->critical_breached()) {
      return net::HttpResponse::make(503, "Service Unavailable",
                                     util::bytes_of(body), "application/json");
    }
    return net::HttpResponse::make(200, "OK", util::bytes_of(body),
                                   "application/json");
  }
  if (request.path == "/metrics") {
    return net::HttpResponse::make(200, "OK", util::bytes_of(render_metrics()),
                                   "text/plain; version=0.0.4");
  }
  if (request.path == "/statusz") {
    return net::HttpResponse::make(200, "OK", util::bytes_of(render_statusz()),
                                   "text/plain");
  }
  if (request.path == "/") {
    return net::HttpResponse::make(
        200, "OK",
        util::bytes_of("mustaple introspection\n"
                       "  /metrics  Prometheus exposition\n"
                       "  /healthz  liveness\n"
                       "  /statusz  campaign status\n"),
        "text/plain");
  }
  return net::HttpResponse::make(404, "Not Found",
                                 util::bytes_of("not found\n"), "text/plain");
}

std::string IntrospectionServer::render_metrics() const {
  std::string out;
  for (const auto& [name, registry] : registries_) {
    out += registry->render_prometheus();
  }
  return out;
}

std::string IntrospectionServer::render_statusz() const {
  std::ostringstream out;
  out << "mustaple statusz\n================\n\n";

  const ResourceUsage usage = read_resource_usage();
  out << "process\n";
  out << util::format("  rss_bytes          %llu\n",
                      static_cast<unsigned long long>(usage.rss_bytes));
  out << util::format("  peak_rss_bytes     %llu\n",
                      static_cast<unsigned long long>(usage.peak_rss_bytes));
  out << util::format("  vm_bytes           %llu\n",
                      static_cast<unsigned long long>(usage.vm_bytes));
  out << util::format("  faults             %llu minor / %llu major\n",
                      static_cast<unsigned long long>(usage.minor_faults),
                      static_cast<unsigned long long>(usage.major_faults));
  out << util::format("  cpu_seconds        %.2f user / %.2f system\n",
                      usage.user_cpu_seconds, usage.system_cpu_seconds);

  bool any_alloc = false;
  util::visit_alloc_counters([&](const std::string& name,
                                 const util::AllocCounter& counter) {
    if (!any_alloc) out << "\nallocations (bytes: outstanding / peak / total)\n";
    any_alloc = true;
    out << util::format(
        "  %-18s %llu / %llu / %llu\n", name.c_str(),
        static_cast<unsigned long long>(counter.outstanding_bytes()),
        static_cast<unsigned long long>(counter.peak_outstanding_bytes()),
        static_cast<unsigned long long>(counter.allocated_bytes()));
  });

  if (health_ != nullptr) {
    out << "\nhealth\n";
    std::istringstream lines(health_->render_text());
    for (std::string line; std::getline(lines, line);) {
      out << "  " << line << "\n";
    }
  }

  StatusProvider provider;
  {
    util::MutexLock lock(provider_mu_);
    provider = status_provider_;
  }
  if (provider) {
    const std::string status = provider();
    if (!status.empty()) out << "\n" << status;
  }

  if (profiler_ != nullptr) {
    const std::string profile = profiler_->summary(10);
    if (!profile.empty()) out << "\n" << profile;
  }
  return out.str();
}

}  // namespace mustaple::obs
