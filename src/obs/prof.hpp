// Pillar 6 (profiling): an annotation-based phase profiler. Call sites mark
// phases with OBS_PROF_SCOPE("scan.step"); each scope charges wall time
// (steady clock) AND thread CPU time to the call-stack of active phases
// ("study;availability-scan;scan.step"), aggregated — not logged per event —
// so a four-month campaign yields a compact profile. Exports:
//
//   * profile.json    — per-path count / wall / cpu / self-wall summary
//   * profile.folded  — collapsed-stack lines ("a;b;c 1234", value = wall
//                       microseconds) that feed flamegraph.pl / speedscope
//                       directly
//
// Threading model: each thread owns a ThreadState (phase stack + a small
// ring of closed-scope records that folds into a local table when full);
// the hot path touches only its own state under its own uncontended mutex.
// Merging walks every thread's table and sums by path — path set and counts
// are therefore THREAD-COUNT-INVARIANT for the scanner's two-phase fan-out
// (each probe closes exactly one scope no matter which worker ran it),
// which the prof_test asserts at 1/2/4 threads. Worker tasks attach to the
// coordinator's phase via an explicit parent token (OBS_PROF_CURRENT +
// OBS_PROF_TASK_SCOPE) so a probe's path is identical whether it ran inline
// or on a pool worker.
//
// Times (wall/cpu totals) are real measurements and naturally vary run to
// run; nothing here feeds campaign outputs, so enabling profiling keeps
// them bit-identical (see DESIGN.md "Deterministic parallel scan
// campaigns").
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/config.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

class Profiler {
 public:
  /// Identifies one interned phase path; 0 is the root (no open phase).
  using PathId = std::uint32_t;
  static constexpr PathId kRoot = 0;

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler();

  /// Interns `name` as a child path of `parent`; same (parent, name) always
  /// returns the same id. Thread-safe; locks only on first sight.
  PathId intern(PathId parent, const char* name);

  /// The calling thread's innermost open phase (kRoot when none).
  PathId current_path();

  /// Charges one closed scope to `path`. Hot path: a ring append under the
  /// calling thread's own (uncontended) state mutex.
  void record(PathId path, std::uint64_t wall_ns, std::uint64_t cpu_ns);

  struct PhaseStats {
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
  };
  struct Entry {
    std::string path;  ///< "study;availability-scan;scan.step"
    std::string name;  ///< last path component
    int depth = 1;
    PhaseStats stats;
    /// Wall time not attributed to any direct child phase.
    std::uint64_t self_wall_ns = 0;
  };

  /// Deterministic merge over every thread's records, sorted by path.
  std::vector<Entry> snapshot() const;
  /// The `n` heaviest phases by total wall time.
  std::vector<Entry> top_phases(std::size_t n) const;

  /// {"schema":"mustaple-profile/1","phases":[...]}.
  std::string render_json() const;
  /// Collapsed-stack lines for flamegraph/speedscope (wall microseconds).
  std::string render_folded() const;
  /// Human-readable top-phases table for reports.
  std::string summary(std::size_t top_n = 10) const;

  /// Zeroes every thread's statistics. Interned paths (and open stacks)
  /// survive — ids held by live scopes stay valid.
  void reset();

  // ---- scope support (used by ProfScope; not a call-site API) ----
  void push(PathId path);
  void pop();

 private:
  struct ThreadState;
  friend class ProfScope;

  ThreadState& tls_state();
  ThreadState* register_thread_state();
  // Requires state.mu held (annotated on the definition — ThreadState is
  // incomplete here, so the attribute argument cannot name its member yet).
  static void fold_ring(ThreadState& state);
  std::map<PathId, PhaseStats> merged_locked() const;
  std::string path_string(PathId path) const;
  int path_depth(PathId path) const;

  const std::uint64_t id_;  ///< process-unique, guards tls cache staleness

  mutable util::Mutex paths_mu_;
  struct PathNode {
    PathId parent = kRoot;
    std::string name;
  };
  std::vector<PathNode> paths_
      MUSTAPLE_GUARDED_BY(paths_mu_);  ///< index 0 unused (root)
  std::map<std::pair<PathId, std::string>, PathId> path_lookup_
      MUSTAPLE_GUARDED_BY(paths_mu_);

  mutable util::Mutex states_mu_;
  std::vector<std::unique_ptr<ThreadState>> states_
      MUSTAPLE_GUARDED_BY(states_mu_);
};

/// The process-wide profiler all OBS_PROF_* macros charge.
Profiler& default_profiler();

/// RAII phase scope. The two-argument form opens the phase under an
/// explicit parent path instead of the thread's current stack — how pool
/// workers attach their work to the coordinating thread's open phase.
class ProfScope {
 public:
  explicit ProfScope(const char* name, Profiler& profiler = default_profiler());
  ProfScope(const char* name, Profiler::PathId parent,
            Profiler& profiler = default_profiler());
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
  ~ProfScope();

 private:
  Profiler* profiler_;
  Profiler::PathId path_;
  std::uint64_t wall_start_ns_;
  std::uint64_t cpu_start_ns_;
};

}  // namespace mustaple::obs

#if MUSTAPLE_OBS_ENABLED

#define MUSTAPLE_PROF_CONCAT_(a_, b_) a_##b_
#define MUSTAPLE_PROF_CONCAT(a_, b_) MUSTAPLE_PROF_CONCAT_(a_, b_)

/// Times the enclosing scope as a phase nested under the thread's innermost
/// open phase: OBS_PROF_SCOPE("scan.execute_probe").
#define OBS_PROF_SCOPE(name_)                                        \
  ::mustaple::obs::ProfScope MUSTAPLE_PROF_CONCAT(mustaple_prof_scope_, \
                                                  __COUNTER__)(name_)

/// The current phase path, for handing to a worker task as its parent.
#define OBS_PROF_CURRENT() ::mustaple::obs::default_profiler().current_path()

/// Worker-side scope attached under an explicit parent token (captured on
/// the coordinating thread with OBS_PROF_CURRENT before the fan-out).
#define OBS_PROF_TASK_SCOPE(token_, name_)                              \
  ::mustaple::obs::ProfScope MUSTAPLE_PROF_CONCAT(mustaple_prof_scope_, \
                                                  __COUNTER__)(name_, token_)

#else  // MUSTAPLE_OBS_OFF: annotation sites vanish.

#define OBS_PROF_SCOPE(name_) ((void)0)
#define OBS_PROF_CURRENT() (::mustaple::obs::Profiler::kRoot)
#define OBS_PROF_TASK_SCOPE(token_, name_) ((void)(token_))

#endif  // MUSTAPLE_OBS_ENABLED
