#include "obs/timeline.hpp"

#include <cstdio>

namespace mustaple::obs {

namespace {

Timeline* g_installed = nullptr;

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string csv_quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Timeline::Timeline(util::SimTime start, util::Duration window,
                   Registry& registry)
    : registry_(&registry),
      start_(start),
      window_(window.seconds > 0 ? window : util::Duration::hours(1)),
      cursor_(start) {}

void Timeline::snapshot(std::map<Key, double>& out) const {
  out.clear();
  registry_->visit_counters(
      [&out](const std::string& name, const std::string& labels,
             std::uint64_t value) {
        out[{name, labels}] = static_cast<double>(value);
      });
  // Histograms contribute their cumulative count and sum, so per-window
  // rates and mean-over-time series come for free.
  registry_->visit_histograms([&out](const std::string& name,
                                     const std::string& labels,
                                     const Histogram& hist) {
    out[{name + "_count", labels}] = static_cast<double>(hist.count());
    out[{name + "_sum", labels}] = hist.sum();
  });
}

void Timeline::advance_to(util::SimTime now) {
  if (now < start_) return;
  if (!baseline_taken_) {
    snapshot(prev_);
    baseline_taken_ = true;
    cursor_ = start_;
  }
  while (cursor_ + window_ <= now) close_window(cursor_ + window_);
}

void Timeline::flush(util::SimTime now) {
  advance_to(now);
  if (baseline_taken_ && now > cursor_) close_window(now);
}

void Timeline::close_window(util::SimTime end) {
  std::map<Key, double> current;
  snapshot(current);

  TimelineWindow window;
  window.start = cursor_;
  window.end = end;
  for (const auto& [key, value] : current) {
    const auto before = prev_.find(key);
    const double delta =
        value - (before == prev_.end() ? 0.0 : before->second);
    if (delta != 0.0) {
      window.counters.push_back({key.first, key.second, delta});
    }
  }

  prev_ = std::move(current);
  cursor_ = end;
  if (window.counters.empty()) return;  // idle window: nothing to record

  registry_->visit_gauges([&window](const std::string& name,
                                    const std::string& labels, double value) {
    window.gauges.push_back({name, labels, value});
  });
  windows_.push_back(std::move(window));
  if (window_hook_) window_hook_(windows_.back());
}

double Timeline::counter_delta(const TimelineWindow& window,
                               const std::string& metric,
                               const std::string& labels_canonical) {
  for (const auto& sample : window.counters) {
    if (sample.metric == metric && sample.labels == labels_canonical) {
      return sample.value;
    }
  }
  return 0.0;
}

util::Series Timeline::series(const std::string& metric,
                              const Labels& labels) const {
  const std::string canonical = canonical_labels(labels);
  util::Series out;
  out.label = metric + canonical;
  for (const TimelineWindow& window : windows_) {
    for (const auto& sample : window.counters) {
      if (sample.metric == metric && sample.labels == canonical) {
        out.add(static_cast<double>(window.start.unix_seconds), sample.value);
        break;
      }
    }
  }
  return out;
}

util::Series Timeline::ratio_series(const std::string& numerator,
                                    const std::string& denominator,
                                    const Labels& labels,
                                    double scale) const {
  const std::string canonical = canonical_labels(labels);
  util::Series out;
  out.label = numerator + "/" + denominator + canonical;
  for (const TimelineWindow& window : windows_) {
    const double den = counter_delta(window, denominator, canonical);
    if (den == 0.0) continue;
    const double num = counter_delta(window, numerator, canonical);
    out.add(static_cast<double>(window.start.unix_seconds),
            scale * num / den);
  }
  return out;
}

std::string Timeline::render_csv() const {
  std::string out =
      "window_start_unix,window_start,window_end_unix,kind,metric,labels,"
      "value\n";
  for (const TimelineWindow& window : windows_) {
    const std::string prefix =
        std::to_string(window.start.unix_seconds) + "," +
        csv_quote(util::format_time(window.start)) + "," +
        std::to_string(window.end.unix_seconds) + ",";
    for (const auto& sample : window.counters) {
      out += prefix + "counter," + csv_quote(sample.metric) + "," +
             csv_quote(sample.labels) + "," + format_value(sample.value) +
             "\n";
    }
    for (const auto& sample : window.gauges) {
      out += prefix + "gauge," + csv_quote(sample.metric) + "," +
             csv_quote(sample.labels) + "," + format_value(sample.value) +
             "\n";
    }
  }
  return out;
}

std::string Timeline::render_json() const {
  std::string out = "{\"window_seconds\":" + std::to_string(window_.seconds) +
                    ",\"start_unix\":" + std::to_string(start_.unix_seconds) +
                    ",\"windows\":[";
  bool first_window = true;
  for (const TimelineWindow& window : windows_) {
    if (!first_window) out += ",";
    first_window = false;
    out += "{\"start_unix\":" + std::to_string(window.start.unix_seconds) +
           ",\"start\":\"" + util::format_time(window.start) +
           "\",\"end_unix\":" + std::to_string(window.end.unix_seconds) +
           ",\"counters\":{";
    bool first = true;
    for (const auto& sample : window.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(sample.metric + sample.labels) +
             "\":" + format_value(sample.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& sample : window.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(sample.metric + sample.labels) +
             "\":" + format_value(sample.value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Timeline* install_timeline(Timeline* timeline) {
  Timeline* previous = g_installed;
  g_installed = timeline;
  return previous;
}

Timeline* installed_timeline() { return g_installed; }

void advance_installed_timeline(util::SimTime now) {
  if (g_installed != nullptr) g_installed->advance_to(now);
}

}  // namespace mustaple::obs
