// Scoped wall-clock trace spans. A Span times its enclosing scope with the
// steady clock and reports into a Tracer, which aggregates by nesting path
// (study / scan-campaign / scan-step / ...) so a four-month campaign yields
// a compact per-phase profile instead of millions of events. Single-threaded
// LIFO nesting, matching the simulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mustaple::obs {

class Tracer {
 public:
  /// One aggregated node of the span tree.
  struct Node {
    std::string path;  ///< "study/availability-scan/scan-step"
    std::string name;  ///< last path component
    int depth = 0;
    std::uint64_t count = 0;  ///< completed spans aggregated here
    double total_ms = 0.0;    ///< wall-clock total across all of them
    /// Per-span duration distribution, for the summary's p50/p95/p99.
    Histogram durations = Histogram(latency_ms_buckets());
  };

  /// Opens a span named `name` nested under the currently open one; returns
  /// a handle for end().
  std::size_t begin(const std::string& name);
  void end(std::size_t handle, double elapsed_ms);

  int open_depth() const { return static_cast<int>(stack_.size()); }
  /// Nodes in first-entered order (parents before their children).
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Indented per-phase table, e.g. for appending to a report.
  std::string summary() const;

  void reset();

 private:
  std::vector<Node> nodes_;
  std::vector<std::size_t> stack_;  ///< indices of open nodes
  std::map<std::string, std::size_t> by_path_;
};

/// The process-wide tracer all MUSTAPLE_SPAN macros report to.
Tracer& default_tracer();

/// RAII span: times construction-to-destruction on the steady clock.
class Span {
 public:
  explicit Span(const std::string& name, Tracer& tracer = default_tracer())
      : tracer_(&tracer),
        handle_(tracer.begin(name)),
        start_(std::chrono::steady_clock::now()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~Span() { tracer_->end(handle_, elapsed_ms()); }

 private:
  Tracer* tracer_;
  std::size_t handle_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mustaple::obs
