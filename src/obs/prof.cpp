#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <sstream>

#include "util/strings.hpp"

namespace mustaple::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts {};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

/// Per-thread recording state. The owning thread is the only writer of
/// `stack` and `intern_cache` (no lock); `ring`/`table` are written by the
/// owner and read by exporters, both under `mu` — uncontended except while
/// a snapshot or /statusz render is in flight.
struct Profiler::ThreadState {
  static constexpr std::size_t kRing = 1024;
  struct Rec {
    PathId path = kRoot;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
  };

  util::Mutex mu;
  // SRCLINT-ALLOW(sl_unguarded_mutex_field): owner thread only, never shared
  std::vector<PathId> stack;
  std::array<Rec, kRing> ring MUSTAPLE_GUARDED_BY(mu);
  std::size_t ring_n MUSTAPLE_GUARDED_BY(mu) = 0;
  std::unordered_map<PathId, PhaseStats> table MUSTAPLE_GUARDED_BY(mu);
  /// (parent, name-pointer) -> path. Owner thread only; pointer identity is
  /// just a cache key — a same-content name at a different address merely
  /// takes the slow interning path once.
  // SRCLINT-ALLOW(sl_unguarded_mutex_field): owner thread only, never shared
  std::map<std::pair<PathId, const void*>, PathId> intern_cache;
};

Profiler::Profiler() : id_(next_profiler_id()) {}

// Threads must not record into a profiler after it is destroyed (the
// default profiler never is; test-local profilers join their workers
// first).
Profiler::~Profiler() = default;

Profiler::PathId Profiler::intern(PathId parent, const char* name) {
  util::MutexLock lock(paths_mu_);
  if (paths_.empty()) paths_.emplace_back();  // slot 0 = root, unused
  const auto key = std::make_pair(parent, std::string(name));
  const auto it = path_lookup_.find(key);
  if (it != path_lookup_.end()) return it->second;
  const PathId id = static_cast<PathId>(paths_.size());
  paths_.push_back(PathNode{parent, key.second});
  path_lookup_.emplace(key, id);
  return id;
}

Profiler::ThreadState* Profiler::register_thread_state() {
  util::MutexLock lock(states_mu_);
  states_.push_back(std::make_unique<ThreadState>());
  return states_.back().get();
}

Profiler::ThreadState& Profiler::tls_state() {
  // One-entry fast path (the common single-profiler case), backed by a
  // per-thread map keyed on the process-unique profiler id so a profiler
  // reconstructed at a recycled address can never alias a stale state.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadState* cached = nullptr;
  if (cached != nullptr && cached_id == id_) return *cached;
  thread_local std::map<std::uint64_t, ThreadState*> by_profiler;
  ThreadState*& slot = by_profiler[id_];
  if (slot == nullptr) slot = register_thread_state();
  cached_id = id_;
  cached = slot;
  return *slot;
}

Profiler::PathId Profiler::current_path() {
  ThreadState& state = tls_state();
  return state.stack.empty() ? kRoot : state.stack.back();
}

void Profiler::push(PathId path) { tls_state().stack.push_back(path); }

void Profiler::pop() {
  ThreadState& state = tls_state();
  if (!state.stack.empty()) state.stack.pop_back();
}

void Profiler::fold_ring(ThreadState& state) MUSTAPLE_REQUIRES(state.mu) {
  for (std::size_t i = 0; i < state.ring_n; ++i) {
    const ThreadState::Rec& rec = state.ring[i];
    PhaseStats& stats = state.table[rec.path];
    ++stats.count;
    stats.wall_ns += rec.wall_ns;
    stats.cpu_ns += rec.cpu_ns;
  }
  state.ring_n = 0;
}

void Profiler::record(PathId path, std::uint64_t wall_ns,
                      std::uint64_t cpu_ns) {
  if (path == kRoot) return;
  ThreadState& state = tls_state();
  util::MutexLock lock(state.mu);
  if (state.ring_n == ThreadState::kRing) fold_ring(state);
  state.ring[state.ring_n++] = ThreadState::Rec{path, wall_ns, cpu_ns};
}

std::map<Profiler::PathId, Profiler::PhaseStats> Profiler::merged_locked()
    const {
  std::map<PathId, PhaseStats> merged;
  util::MutexLock states_lock(states_mu_);
  for (const auto& state : states_) {
    util::MutexLock lock(state->mu);
    fold_ring(*state);
    for (const auto& [path, stats] : state->table) {
      PhaseStats& out = merged[path];
      out.count += stats.count;
      out.wall_ns += stats.wall_ns;
      out.cpu_ns += stats.cpu_ns;
    }
  }
  return merged;
}

std::string Profiler::path_string(PathId path) const {
  util::MutexLock lock(paths_mu_);
  std::vector<const std::string*> parts;
  for (PathId p = path; p != kRoot; p = paths_[p].parent) {
    parts.push_back(&paths_[p].name);
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += ';';
    out += **it;
  }
  return out;
}

int Profiler::path_depth(PathId path) const {
  util::MutexLock lock(paths_mu_);
  int depth = 0;
  for (PathId p = path; p != kRoot; p = paths_[p].parent) ++depth;
  return depth;
}

std::vector<Profiler::Entry> Profiler::snapshot() const {
  const auto merged = merged_locked();

  // Wall time charged to each path's direct children, for self-time.
  std::map<PathId, std::uint64_t> child_wall;
  {
    util::MutexLock lock(paths_mu_);
    for (const auto& [path, stats] : merged) {
      child_wall[paths_[path].parent] += stats.wall_ns;
    }
  }

  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (const auto& [path, stats] : merged) {
    Entry entry;
    entry.path = path_string(path);
    {
      util::MutexLock lock(paths_mu_);
      entry.name = paths_[path].name;
    }
    entry.depth = path_depth(path);
    entry.stats = stats;
    const auto it = child_wall.find(path);
    const std::uint64_t children = it == child_wall.end() ? 0 : it->second;
    entry.self_wall_ns =
        stats.wall_ns > children ? stats.wall_ns - children : 0;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  return entries;
}

std::vector<Profiler::Entry> Profiler::top_phases(std::size_t n) const {
  std::vector<Entry> entries = snapshot();
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.stats.wall_ns != b.stats.wall_ns) {
      return a.stats.wall_ns > b.stats.wall_ns;
    }
    return a.path < b.path;  // deterministic tiebreak
  });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

std::string Profiler::render_json() const {
  const std::vector<Entry> entries = snapshot();
  std::ostringstream out;
  out << "{\"schema\":\"mustaple-profile/1\",\"phases\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i) out << ",";
    out << util::format(
        "{\"path\":\"%s\",\"name\":\"%s\",\"depth\":%d,\"count\":%llu,"
        "\"wall_ms\":%.3f,\"cpu_ms\":%.3f,\"self_wall_ms\":%.3f}",
        json_escape(e.path).c_str(), json_escape(e.name).c_str(), e.depth,
        static_cast<unsigned long long>(e.stats.count),
        static_cast<double>(e.stats.wall_ns) / 1e6,
        static_cast<double>(e.stats.cpu_ns) / 1e6,
        static_cast<double>(e.self_wall_ns) / 1e6);
  }
  out << "]}";
  return out.str();
}

std::string Profiler::render_folded() const {
  // Collapsed-stack format: one line per path with its SELF (exclusive)
  // value — inclusive values would double-count parents when a flamegraph
  // re-sums the hierarchy. Value unit: wall microseconds.
  std::ostringstream out;
  for (const Entry& e : snapshot()) {
    out << e.path << " " << e.self_wall_ns / 1000 << "\n";
  }
  return out.str();
}

std::string Profiler::summary(std::size_t top_n) const {
  const std::vector<Entry> top = top_phases(top_n);
  if (top.empty()) return "";
  std::ostringstream out;
  out << "Profile: top phases by wall time\n";
  for (const Entry& e : top) {
    out << util::format("  %-48s %10llu x %10.1fms wall %10.1fms cpu\n",
                        e.path.c_str(),
                        static_cast<unsigned long long>(e.stats.count),
                        static_cast<double>(e.stats.wall_ns) / 1e6,
                        static_cast<double>(e.stats.cpu_ns) / 1e6);
  }
  return out.str();
}

void Profiler::reset() {
  util::MutexLock states_lock(states_mu_);
  for (const auto& state : states_) {
    util::MutexLock lock(state->mu);
    state->ring_n = 0;
    state->table.clear();
  }
}

Profiler& default_profiler() {
  static auto* profiler = new Profiler();  // never destroyed: worker
  return *profiler;                        // threads may outlive main
}

ProfScope::ProfScope(const char* name, Profiler& profiler)
    : ProfScope(name, profiler.current_path(), profiler) {}

ProfScope::ProfScope(const char* name, Profiler::PathId parent,
                     Profiler& profiler)
    : profiler_(&profiler) {
  Profiler::ThreadState& state = profiler.tls_state();
  const auto key = std::make_pair(parent, static_cast<const void*>(name));
  const auto it = state.intern_cache.find(key);
  if (it != state.intern_cache.end()) {
    path_ = it->second;
  } else {
    path_ = profiler.intern(parent, name);
    state.intern_cache.emplace(key, path_);
  }
  state.stack.push_back(path_);
  wall_start_ns_ = wall_now_ns();
  cpu_start_ns_ = cpu_now_ns();
}

ProfScope::~ProfScope() {
  const std::uint64_t wall_end = wall_now_ns();
  const std::uint64_t cpu_end = cpu_now_ns();
  Profiler::ThreadState& state = profiler_->tls_state();
  if (!state.stack.empty()) state.stack.pop_back();
  profiler_->record(path_,
                    wall_end > wall_start_ns_ ? wall_end - wall_start_ns_ : 0,
                    cpu_end > cpu_start_ns_ ? cpu_end - cpu_start_ns_ : 0);
}

}  // namespace mustaple::obs
