#include "obs/trace.hpp"

#include <cstdio>
#include <utility>

namespace mustaple::obs {

namespace {

// Per-thread so each scanner worker carries the identity of the probe it is
// executing; TraceScope save/restore stays LIFO within a thread.
thread_local TraceContext g_current;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceContext current_trace() { return g_current; }

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceScope::TraceScope(TraceContext context) : previous_(g_current) {
  g_current = context;
}

TraceScope::~TraceScope() { g_current = previous_; }

void TraceLog::enable(util::SimTime epoch) {
  epoch_ = epoch;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::set_track_name(std::uint32_t tid, std::string name) {
  util::MutexLock lock(mu_);
  for (auto& [existing_tid, existing_name] : track_names_) {
    if (existing_tid == tid) {
      existing_name = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(tid, std::move(name));
}

void TraceLog::add(TraceEvent event) {
  util::MutexLock lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceLog::instant(
    std::string name, std::string category, util::SimTime at,
    std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.ts_us = (at.unix_seconds - epoch_.unix_seconds) * 1'000'000;
  event.tid = tid;
  event.context = g_current;
  event.args = std::move(args);
  add(std::move(event));
}

void TraceLog::complete(
    std::string name, std::string category, util::SimTime start,
    double duration_ms, std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_us = (start.unix_seconds - epoch_.unix_seconds) * 1'000'000;
  event.dur_us = static_cast<std::int64_t>(duration_ms * 1000.0);
  if (event.dur_us < 1) event.dur_us = 1;  // zero-width spans vanish in UIs
  event.tid = tid;
  event.context = g_current;
  event.args = std::move(args);
  add(std::move(event));
}

std::string TraceLog::render_chrome_trace() const {
  std::string out = "[";
  bool first = true;
  const auto append = [&out, &first](const std::string& record) {
    if (!first) out += ",\n";
    first = false;
    out += record;
  };

  append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"mustaple campaign (simulated clock)\"}}");
  for (const auto& [tid, name] : track_names_) {
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}");
  }

  for (const TraceEvent& event : events_) {
    std::string record = "{\"name\":\"" + json_escape(event.name) +
                         "\",\"cat\":\"" + json_escape(event.category) +
                         "\",\"ph\":\"" + event.phase +
                         "\",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
                         ",\"ts\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      record += ",\"dur\":" + std::to_string(event.dur_us);
    }
    if (event.phase == 'i') {
      record += ",\"s\":\"t\"";  // instant scope: thread
    }
    record += ",\"args\":{";
    bool first_arg = true;
    if (event.context.active()) {
      record += "\"trace\":" + std::to_string(event.context.trace_id) +
                ",\"probe\":" + std::to_string(event.context.probe_id);
      first_arg = false;
    }
    for (const auto& [key, value] : event.args) {
      if (!first_arg) record += ",";
      first_arg = false;
      record += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    record += "}}";
    append(record);
  }

  out += "]\n";
  return out;
}

void TraceLog::reset() {
  util::MutexLock lock(mu_);
  events_.clear();
  track_names_.clear();
  dropped_ = 0;
}

TraceLog& default_trace_log() {
  static TraceLog log;
  return log;
}

}  // namespace mustaple::obs
