// Canonical definition of MUSTAPLE_OBS_ENABLED. Every obs header that
// offers compile-out macros includes this (instead of each re-deriving the
// flag) so a TU that includes, say, obs/trace.hpp without obs/obs.hpp still
// sees a consistent on/off decision. Defining MUSTAPLE_OBS_OFF — per TU or
// tree-wide via -DMUSTAPLE_OBS=OFF — turns every instrumentation macro into
// ((void)0).
#pragma once

#if !defined(MUSTAPLE_OBS_ENABLED)
#if defined(MUSTAPLE_OBS_OFF)
#define MUSTAPLE_OBS_ENABLED 0
#else
#define MUSTAPLE_OBS_ENABLED 1
#endif
#endif
