#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace mustaple::obs {

namespace {

// "%g"-style shortest representation; Prometheus accepts it for values and
// `le` bounds alike.
std::string number(double v) { return util::format("%g", v); }

// `name{k="v"}` as a JSON object key (label quotes need escaping).
std::string json_key(const std::string& name, const std::string& labels) {
  std::string escaped = "\"";
  for (char c : name + labels) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  escaped += "\"";
  return escaped;
}

}  // namespace

std::string canonical_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    out += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += x;
  stats_.add(x);
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.count() == 0) return 0.0;
  if (q <= 0.0) return stats_.min();
  if (q >= 1.0) return stats_.max();

  const double rank = q * static_cast<double>(stats_.count());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (cumulative + in_bucket >= rank) {
      // The rank falls inside bucket i: interpolate between its lower edge
      // (previous bound, or the observed min for the first bucket) and its
      // upper bound by the rank's position within the bucket.
      const double lower = i == 0 ? stats_.min() : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          in_bucket > 0.0 ? (rank - cumulative) / in_bucket : 1.0;
      const double estimate = lower + (upper - lower) * fraction;
      return std::min(std::max(estimate, stats_.min()), stats_.max());
    }
    cumulative += in_bucket;
  }
  // Rank lands in the +Inf overflow bucket: no upper bound to interpolate
  // toward, so the observed max is the best estimate.
  return stats_.max();
}

const std::vector<double>& latency_ms_buckets() {
  static const std::vector<double> kBuckets = {1,  2,   5,   10,  20,   50,
                                               100, 200, 500, 1000, 5000};
  return kBuckets;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name][canonical_labels(labels)];
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name][canonical_labels(labels)];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = histograms_[name][canonical_labels(labels)];
  if (!cell) cell = std::make_unique<Histogram>(std::move(bounds));
  return *cell;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels) {
  return histogram(name, latency_ms_buckets(), labels);
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto family = counters_.find(name);
  if (family == counters_.end()) return 0;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? 0 : cell->second.value();
}

double Registry::gauge_value(const std::string& name,
                             const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto family = gauges_.find(name);
  if (family == gauges_.end()) return 0.0;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? 0.0 : cell->second.value();
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto family = histograms_.find(name);
  if (family == histograms_.end()) return nullptr;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? nullptr : cell->second.get();
}

void Registry::visit_counters(
    const std::function<void(const std::string&, const std::string&,
                             std::uint64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cells] : counters_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, cell.value());
  }
}

void Registry::visit_gauges(
    const std::function<void(const std::string&, const std::string&, double)>&
        fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cells] : gauges_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, cell.value());
  }
}

void Registry::visit_histograms(
    const std::function<void(const std::string&, const std::string&,
                             const Histogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, cells] : histograms_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, *cell);
  }
}

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, cells] : counters_) {
    out << "# TYPE " << name << " counter\n";
    for (const auto& [labels, cell] : cells) {
      out << name << labels << " " << cell.value() << "\n";
    }
  }
  for (const auto& [name, cells] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    for (const auto& [labels, cell] : cells) {
      out << name << labels << " " << number(cell.value()) << "\n";
    }
  }
  for (const auto& [name, cells] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    for (const auto& [labels, cell] : cells) {
      // `le` joins any user labels inside one brace set.
      const std::string base =
          labels.empty() ? "" : labels.substr(0, labels.size() - 1) + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < cell->bounds().size(); ++i) {
        cumulative += cell->bucket_counts()[i];
        out << name << "_bucket"
            << (base.empty() ? "{" : base) << "le=\""
            << number(cell->bounds()[i]) << "\"} " << cumulative << "\n";
      }
      cumulative += cell->bucket_counts().back();
      out << name << "_bucket" << (base.empty() ? "{" : base)
          << "le=\"+Inf\"} " << cumulative << "\n";
      out << name << "_sum" << labels << " " << number(cell->sum()) << "\n";
      out << name << "_count" << labels << " " << cell->count() << "\n";
      out << name << "_p50" << labels << " " << number(cell->p50()) << "\n";
      out << name << "_p95" << labels << " " << number(cell->p95()) << "\n";
      out << name << "_p99" << labels << " " << number(cell->p99()) << "\n";
    }
  }
  return out.str();
}

std::string Registry::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cells] : counters_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      out << json_key(name, labels) << ":" << cell.value();
    }
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cells] : gauges_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      out << json_key(name, labels) << ":" << number(cell.value());
    }
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cells] : histograms_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      out << json_key(name, labels) << ":{\"count\":" << cell->count()
          << ",\"sum\":" << number(cell->sum())
          << ",\"mean\":" << number(cell->stats().mean())
          << ",\"min\":" << number(cell->stats().min())
          << ",\"max\":" << number(cell->stats().max())
          << ",\"p50\":" << number(cell->p50())
          << ",\"p95\":" << number(cell->p95())
          << ",\"p99\":" << number(cell->p99()) << ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < cell->bounds().size(); ++i) {
        cumulative += cell->bucket_counts()[i];
        if (i) out << ",";
        out << "{\"le\":" << number(cell->bounds()[i])
            << ",\"count\":" << cumulative << "}";
      }
      cumulative += cell->bucket_counts().back();
      if (!cell->bounds().empty()) out << ",";
      out << "{\"le\":\"+Inf\",\"count\":" << cumulative << "}]}";
    }
  }
  out << "}}";
  return out.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace mustaple::obs
