#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace mustaple::obs {

namespace {

// "%g"-style shortest representation for Prometheus values and `le` bounds.
// Non-finite values must use the exposition-format spellings (NaN, +Inf,
// -Inf) — printf's "nan"/"inf" are rejected by Prometheus parsers.
std::string number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::format("%g", v);
}

// JSON has no NaN/Infinity literals; non-finite gauges render as null so
// the document stays parseable (CI pipes exports through json.tool).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return util::format("%g", v);
}

// Prometheus label VALUES escape backslash, double-quote, and newline
// (exposition format section "text format details").
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// `name{k="v"}` as a JSON object key (label quotes need escaping).
std::string json_key(const std::string& name, const std::string& labels) {
  std::string escaped = "\"";
  for (char c : name + labels) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  escaped += "\"";
  return escaped;
}

}  // namespace

std::string canonical_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    // Escaping here keeps the canonical string valid exposition text AND a
    // sound map key: the escape is injective, so distinct raw label sets
    // can never collide onto one cell.
    out += sorted[i].first + "=\"" + escape_label_value(sorted[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  util::MutexLock lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += x;
  stats_.add(x);
}

double Histogram::quantile(double q) const {
  util::MutexLock lock(mu_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  if (stats_.count() == 0) return 0.0;
  if (q <= 0.0) return stats_.min();
  if (q >= 1.0) return stats_.max();

  const double rank = q * static_cast<double>(stats_.count());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (cumulative + in_bucket >= rank) {
      // The rank falls inside bucket i: interpolate between its lower edge
      // (previous bound, or the observed min for the first bucket) and its
      // upper bound by the rank's position within the bucket.
      const double lower = i == 0 ? stats_.min() : bounds_[i - 1];
      const double upper = bounds_[i];
      const double fraction =
          in_bucket > 0.0 ? (rank - cumulative) / in_bucket : 1.0;
      const double estimate = lower + (upper - lower) * fraction;
      return std::min(std::max(estimate, stats_.min()), stats_.max());
    }
    cumulative += in_bucket;
  }
  // Rank lands in the +Inf overflow bucket: no upper bound to interpolate
  // toward, so the observed max is the best estimate.
  return stats_.max();
}

HistogramSnapshot Histogram::snapshot() const {
  util::MutexLock lock(mu_);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets = buckets_;
  snap.sum = sum_;
  snap.count = stats_.count();
  snap.mean = stats_.mean();
  snap.min = stats_.min();
  snap.max = stats_.max();
  snap.p50 = quantile_locked(0.50);
  snap.p95 = quantile_locked(0.95);
  snap.p99 = quantile_locked(0.99);
  return snap;
}

const std::vector<double>& latency_ms_buckets() {
  static const std::vector<double> kBuckets = {1,  2,   5,   10,  20,   50,
                                               100, 200, 500, 1000, 5000};
  return kBuckets;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mu_);
  return counters_[name][canonical_labels(labels)];
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mu_);
  return gauges_[name][canonical_labels(labels)];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  util::MutexLock lock(mu_);
  auto& cell = histograms_[name][canonical_labels(labels)];
  if (!cell) cell = std::make_unique<Histogram>(std::move(bounds));
  return *cell;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels) {
  return histogram(name, latency_ms_buckets(), labels);
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  util::MutexLock lock(mu_);
  const auto family = counters_.find(name);
  if (family == counters_.end()) return 0;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? 0 : cell->second.value();
}

double Registry::gauge_value(const std::string& name,
                             const Labels& labels) const {
  util::MutexLock lock(mu_);
  const auto family = gauges_.find(name);
  if (family == gauges_.end()) return 0.0;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? 0.0 : cell->second.value();
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  util::MutexLock lock(mu_);
  const auto family = histograms_.find(name);
  if (family == histograms_.end()) return nullptr;
  const auto cell = family->second.find(canonical_labels(labels));
  return cell == family->second.end() ? nullptr : cell->second.get();
}

void Registry::visit_counters(
    const std::function<void(const std::string&, const std::string&,
                             std::uint64_t)>& fn) const {
  util::MutexLock lock(mu_);
  for (const auto& [name, cells] : counters_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, cell.value());
  }
}

void Registry::visit_gauges(
    const std::function<void(const std::string&, const std::string&, double)>&
        fn) const {
  util::MutexLock lock(mu_);
  for (const auto& [name, cells] : gauges_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, cell.value());
  }
}

void Registry::visit_histograms(
    const std::function<void(const std::string&, const std::string&,
                             const Histogram&)>& fn) const {
  util::MutexLock lock(mu_);
  for (const auto& [name, cells] : histograms_) {
    for (const auto& [labels, cell] : cells) fn(name, labels, *cell);
  }
}

std::string Registry::render_prometheus() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [name, cells] : counters_) {
    out << "# TYPE " << name << " counter\n";
    for (const auto& [labels, cell] : cells) {
      out << name << labels << " " << cell.value() << "\n";
    }
  }
  for (const auto& [name, cells] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    for (const auto& [labels, cell] : cells) {
      out << name << labels << " " << number(cell.value()) << "\n";
    }
  }
  for (const auto& [name, cells] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    for (const auto& [labels, cell] : cells) {
      const HistogramSnapshot snap = cell->snapshot();
      // `le` joins any user labels inside one brace set.
      const std::string base =
          labels.empty() ? "" : labels.substr(0, labels.size() - 1) + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        cumulative += snap.buckets[i];
        out << name << "_bucket"
            << (base.empty() ? "{" : base) << "le=\""
            << number(snap.bounds[i]) << "\"} " << cumulative << "\n";
      }
      cumulative += snap.buckets.back();
      out << name << "_bucket" << (base.empty() ? "{" : base)
          << "le=\"+Inf\"} " << cumulative << "\n";
      out << name << "_sum" << labels << " " << number(snap.sum) << "\n";
      out << name << "_count" << labels << " " << snap.count << "\n";
      out << name << "_p50" << labels << " " << number(snap.p50) << "\n";
      out << name << "_p95" << labels << " " << number(snap.p95) << "\n";
      out << name << "_p99" << labels << " " << number(snap.p99) << "\n";
    }
  }
  return out.str();
}

std::string Registry::render_json() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cells] : counters_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      out << json_key(name, labels) << ":" << cell.value();
    }
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cells] : gauges_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      out << json_key(name, labels) << ":" << json_number(cell.value());
    }
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cells] : histograms_) {
    for (const auto& [labels, cell] : cells) {
      if (!first) out << ",";
      first = false;
      const HistogramSnapshot snap = cell->snapshot();
      out << json_key(name, labels) << ":{\"count\":" << snap.count
          << ",\"sum\":" << json_number(snap.sum)
          << ",\"mean\":" << json_number(snap.mean)
          << ",\"min\":" << json_number(snap.min)
          << ",\"max\":" << json_number(snap.max)
          << ",\"p50\":" << json_number(snap.p50)
          << ",\"p95\":" << json_number(snap.p95)
          << ",\"p99\":" << json_number(snap.p99) << ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
        cumulative += snap.buckets[i];
        if (i) out << ",";
        out << "{\"le\":" << json_number(snap.bounds[i])
            << ",\"count\":" << cumulative << "}";
      }
      cumulative += snap.buckets.back();
      if (!snap.bounds.empty()) out << ",";
      out << "{\"le\":\"+Inf\",\"count\":" << cumulative << "}]}";
    }
  }
  out << "}}";
  return out.str();
}

void Registry::reset() {
  util::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

}  // namespace mustaple::obs
