#include "obs/flight.hpp"

#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>
#define MUSTAPLE_HAVE_SIGNALS 1
#else
#define MUSTAPLE_HAVE_SIGNALS 0
#endif

#if defined(__GLIBC__)
#include <execinfo.h>
#define MUSTAPLE_HAVE_BACKTRACE 1
#else
#define MUSTAPLE_HAVE_BACKTRACE 0
#endif

namespace mustaple::obs {

namespace {

/// Buffered byte writer built exclusively on write(2) — the only formatting
/// machinery the signal handler is allowed to touch. Nothing here
/// allocates, locks, or calls into stdio/locale.
struct SigWriter {
  explicit SigWriter(int fd) : fd(fd) {}
  ~SigWriter() { flush(); }
  SigWriter(const SigWriter&) = delete;
  SigWriter& operator=(const SigWriter&) = delete;

  void put(char c) {
    if (len == sizeof(buf)) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    while (*s != '\0') put(*s++);
  }
  void u64(std::uint64_t v) {
    char tmp[24];
    int i = 0;
    do {
      tmp[i++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (i > 0) put(tmp[--i]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      put('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
  void hex(std::uintptr_t v) {
    str("0x");
    char tmp[2 * sizeof(v)];
    int i = 0;
    do {
      tmp[i++] = "0123456789abcdef"[v & 0xF];
      v >>= 4;
    } while (v != 0);
    while (i > 0) put(tmp[--i]);
  }
  /// JSON string literal from a NUL-terminated fixed buffer: quotes and
  /// backslashes escaped, control characters replaced by spaces (a precise
  /// \uXXXX spelling is not worth the formatting code in a crash handler).
  void json_str(const char* s, std::size_t max) {
    put('"');
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const char c = s[i];
      if (c == '"' || c == '\\') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        put(' ');
      } else {
        put(c);
      }
    }
    put('"');
  }
  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // nothing a crash handler can do about it
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }

  int fd;
  std::size_t len = 0;
  char buf[512];
};

void copy_trunc(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  }
  dst[i] = '\0';
}

/// dir + "/" + name without snprintf (not async-signal-safe). Returns false
/// when it does not fit.
bool sig_path_join(char* out, std::size_t cap, const char* dir,
                   const char* name) {
  std::size_t n = 0;
  for (; dir[n] != '\0'; ++n) {
    if (n + 1 >= cap) return false;
    out[n] = dir[n];
  }
  if (n == 0 || out[n - 1] != '/') {
    if (n + 1 >= cap) return false;
    out[n++] = '/';
  }
  for (std::size_t i = 0; name[i] != '\0'; ++i, ++n) {
    if (n + 1 >= cap) return false;
    out[n] = name[i];
  }
  out[n] = '\0';
  return true;
}

const char* kind_name(FlightRecorder::EventKind kind) {
  switch (kind) {
    case FlightRecorder::EventKind::kLog:
      return "log";
    case FlightRecorder::EventKind::kPhase:
      return "phase";
    case FlightRecorder::EventKind::kHealth:
      return "health";
  }
  return "?";
}

std::uint64_t peak_rss_bytes_now() {
#if MUSTAPLE_HAVE_SIGNALS
  struct rusage ru {};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

#if MUSTAPLE_HAVE_SIGNALS
constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr std::size_t kSignalCount = sizeof(kSignals) / sizeof(kSignals[0]);
struct sigaction g_old_actions[kSignalCount];

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
  }
  return "signal";
}
#endif

/// The recorder the handler dumps; set by install(), cleared by uninstall().
std::atomic<FlightRecorder*> g_recorder{nullptr};
/// Re-entrancy latch: a crash inside the dump restores default disposition
/// immediately instead of recursing.
std::atomic<bool> g_in_handler{false};

#if MUSTAPLE_HAVE_SIGNALS
void restore_and_reraise(int sig) {
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    if (kSignals[i] == sig) {
      ::sigaction(sig, &g_old_actions[i], nullptr);
      ::raise(sig);  // delivered (to the saved handler or default) on return
      return;
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void flight_signal_handler(int sig) {
  if (g_in_handler.exchange(true)) {
    ::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  FlightRecorder* recorder = g_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    recorder->write_postmortem(signal_name(sig), sig);
  }
  restore_and_reraise(sig);
}
#endif

}  // namespace

/// One ring slot. `seq` brackets the payload: idx*2+1 while a writer fills
/// it, idx*2+2 once complete — a reader comparing before/after loads knows
/// whether it copied a consistent record.
struct FlightRecorder::Slot {
  std::atomic<std::uint64_t> seq{0};
  std::uint64_t index = 0;
  std::uint64_t wall_unix_ms = 0;
  std::int64_t sim_unix = kNoSimTime;
  std::uint8_t kind = 0;
  std::uint8_t level = 0;
  char component[24] = {};
  char message[160] = {};
};

FlightRecorder::FlightRecorder(std::size_t capacity) { configure(capacity); }

FlightRecorder::~FlightRecorder() { uninstall(); }

void FlightRecorder::configure(std::size_t capacity) {
  capacity_ = capacity;
  slots_ = capacity_ > 0 ? std::make_unique<Slot[]>(capacity_) : nullptr;
  next_.store(0, std::memory_order_relaxed);
  probe_next_.store(0, std::memory_order_relaxed);
  for (auto& id : probe_ids_) id.store(0, std::memory_order_relaxed);
  for (int b = 0; b < 2; ++b) {
    if (!snap_buf_[b]) snap_buf_[b] = std::make_unique<char[]>(kSnapshotBytes);
    snap_len_[b].store(0, std::memory_order_relaxed);
  }
  snap_active_.store(0, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::record(EventKind kind, Level level, const char* component,
                            const char* message, std::int64_t sim_unix) {
  if (capacity_ == 0) return;
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % capacity_];
  slot.seq.store(idx * 2 + 1, std::memory_order_release);
  slot.index = idx;
  slot.wall_unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  slot.sim_unix = sim_unix;
  slot.kind = static_cast<std::uint8_t>(kind);
  slot.level = static_cast<std::uint8_t>(level);
  copy_trunc(slot.component, sizeof(slot.component), component);
  copy_trunc(slot.message, sizeof(slot.message), message);
  slot.seq.store(idx * 2 + 2, std::memory_order_release);
}

void FlightRecorder::note_phase(const char* phase) {
  record(EventKind::kPhase, Level::kInfo, "phase", phase);
}

void FlightRecorder::note_health(const char* check, bool ok,
                                 const char* detail) {
  char message[160];
  std::size_t n = 0;
  const char* prefix = ok ? "recovered: " : "breached: ";
  for (const char* s = prefix; *s != '\0' && n + 1 < sizeof(message); ++s) {
    message[n++] = *s;
  }
  for (const char* s = check; *s != '\0' && n + 1 < sizeof(message); ++s) {
    message[n++] = *s;
  }
  if (detail != nullptr && detail[0] != '\0' && n + 3 < sizeof(message)) {
    message[n++] = ' ';
    message[n++] = '-';
    message[n++] = ' ';
    for (const char* s = detail; *s != '\0' && n + 1 < sizeof(message); ++s) {
      message[n++] = *s;
    }
  }
  message[n] = '\0';
  record(EventKind::kHealth, ok ? Level::kInfo : Level::kError, "health",
         message);
}

void FlightRecorder::note_probe(std::uint64_t probe_id) {
  const std::uint64_t idx = probe_next_.fetch_add(1, std::memory_order_relaxed);
  probe_ids_[idx % kProbeRing].store(probe_id, std::memory_order_relaxed);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  if (capacity_ == 0) return out;
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t count = n < capacity_ ? n : capacity_;
  out.reserve(count);
  for (std::uint64_t idx = n - count; idx < n; ++idx) {
    const Slot& slot = slots_[idx % capacity_];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    Event event;
    event.index = slot.index;
    event.wall_unix_ms = slot.wall_unix_ms;
    event.sim_unix = slot.sim_unix;
    event.kind = static_cast<EventKind>(slot.kind);
    event.level = static_cast<Level>(slot.level);
    char component[sizeof(Slot::component)];
    char message[sizeof(Slot::message)];
    std::memcpy(component, slot.component, sizeof(component));
    std::memcpy(message, slot.message, sizeof(message));
    component[sizeof(component) - 1] = '\0';
    message[sizeof(message) - 1] = '\0';
    event.component = component;
    event.message = message;
    const std::uint64_t seq_after = slot.seq.load(std::memory_order_acquire);
    event.torn = seq_before != seq_after || seq_before % 2 == 1 ||
                 slot.index != idx;
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<std::uint64_t> FlightRecorder::recent_probe_ids() const {
  std::vector<std::uint64_t> out;
  const std::uint64_t n = probe_next_.load(std::memory_order_relaxed);
  const std::uint64_t count = n < kProbeRing ? n : kProbeRing;
  out.reserve(count);
  for (std::uint64_t idx = n - count; idx < n; ++idx) {
    out.push_back(probe_ids_[idx % kProbeRing].load(std::memory_order_relaxed));
  }
  return out;
}

void FlightRecorder::set_snapshot_json(const std::string& json_object) {
  // Once a crash handler is dumping, the buffers are frozen: the handler
  // read its buffer index exactly once, and nothing may write either side.
  if (crashed_.load(std::memory_order_acquire)) return;
  const int write_side = 1 - snap_active_.load(std::memory_order_acquire);
  const char* src = json_object.c_str();
  std::size_t len = json_object.size();
  if (len >= kSnapshotBytes) {
    static const char kTruncated[] = "{\"truncated\":true}";
    src = kTruncated;
    len = sizeof(kTruncated) - 1;
  }
  std::memcpy(snap_buf_[write_side].get(), src, len);
  snap_len_[write_side].store(len, std::memory_order_release);
  snap_active_.store(write_side, std::memory_order_release);
}

bool FlightRecorder::install(const std::string& artifact_dir) {
#if MUSTAPLE_HAVE_SIGNALS
  if (artifact_dir.empty() || artifact_dir.size() + 1 >= sizeof(dir_)) {
    return false;
  }
  copy_trunc(dir_, sizeof(dir_), artifact_dir.c_str());
  FlightRecorder* expected_self = this;
  if (g_recorder.exchange(this, std::memory_order_acq_rel) == nullptr ||
      !installed_.load(std::memory_order_acquire)) {
    struct sigaction action {};
    action.sa_handler = flight_signal_handler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    for (std::size_t i = 0; i < kSignalCount; ++i) {
      ::sigaction(kSignals[i], &action, &g_old_actions[i]);
    }
  }
  (void)expected_self;
  installed_.store(true, std::memory_order_release);
  return true;
#else
  (void)artifact_dir;
  return false;
#endif
}

void FlightRecorder::uninstall() {
#if MUSTAPLE_HAVE_SIGNALS
  if (!installed_.exchange(false)) return;
  FlightRecorder* self = this;
  if (g_recorder.compare_exchange_strong(self, nullptr,
                                         std::memory_order_acq_rel)) {
    for (std::size_t i = 0; i < kSignalCount; ++i) {
      ::sigaction(kSignals[i], &g_old_actions[i], nullptr);
    }
  }
#endif
}

void FlightRecorder::write_postmortem(const char* reason, int signal_number) {
#if MUSTAPLE_HAVE_SIGNALS
  if (dir_[0] == '\0') return;
  crashed_.store(true, std::memory_order_release);
  void* frames[64];
  int frame_count = 0;
#if MUSTAPLE_HAVE_BACKTRACE
  frame_count = ::backtrace(frames, 64);
#endif
  char path[sizeof(dir_) + 32];
  if (sig_path_join(path, sizeof(path), dir_, "postmortem.txt")) {
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_text(fd, reason, signal_number, frames, frame_count);
      ::close(fd);
    }
  }
  if (sig_path_join(path, sizeof(path), dir_, "postmortem.json")) {
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_json(fd, reason, signal_number, frames, frame_count);
      ::close(fd);
    }
  }
  // A manual dump (tests, operator request) must not freeze the snapshot
  // feed for the rest of the process's life.
  if (signal_number == 0) crashed_.store(false, std::memory_order_release);
#else
  (void)reason;
  (void)signal_number;
#endif
}

#if MUSTAPLE_HAVE_SIGNALS

void FlightRecorder::dump_text(int fd, const char* reason, int signal_number,
                               void* const* frames, int frame_count) {
  SigWriter w(fd);
  w.str("mustaple postmortem (flight recorder)\n");
  w.str("reason: ");
  w.str(reason != nullptr ? reason : "?");
  w.str("\nsignal: ");
  w.u64(static_cast<std::uint64_t>(signal_number));
  w.str("\nevents_recorded: ");
  w.u64(recorded());
  w.str(" (dropped ");
  w.u64(dropped());
  w.str(")\npeak_rss_bytes: ");
  w.u64(peak_rss_bytes_now());
  w.str("\nrecent_probe_ids:");
  const std::uint64_t pn = probe_next_.load(std::memory_order_relaxed);
  const std::uint64_t pc = pn < kProbeRing ? pn : kProbeRing;
  for (std::uint64_t i = pn - pc; i < pn; ++i) {
    w.put(' ');
    w.u64(probe_ids_[i % kProbeRing].load(std::memory_order_relaxed));
  }
  w.str("\n--- events (oldest first) ---\n");
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t count =
      capacity_ == 0 ? 0 : (n < capacity_ ? n : capacity_);
  for (std::uint64_t idx = n - count; idx < n; ++idx) {
    const Slot& slot = slots_[idx % capacity_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    w.put('[');
    w.u64(slot.index);
    w.str("] wall_unix_ms=");
    w.u64(slot.wall_unix_ms);
    if (slot.sim_unix != kNoSimTime) {
      w.str(" sim_unix=");
      w.i64(slot.sim_unix);
    }
    w.put(' ');
    w.str(to_string(static_cast<Level>(slot.level)));
    w.put(' ');
    w.str(kind_name(static_cast<EventKind>(slot.kind)));
    w.str(" [");
    std::size_t i = 0;
    for (; i < sizeof(slot.component) - 1 && slot.component[i] != '\0'; ++i) {
      w.put(slot.component[i]);
    }
    w.str("] ");
    for (i = 0; i < sizeof(slot.message) - 1 && slot.message[i] != '\0'; ++i) {
      w.put(slot.message[i]);
    }
    if (seq % 2 == 1 || slot.index != idx) w.str(" (torn)");
    w.put('\n');
  }
  w.str("--- backtrace ---\n");
  w.flush();
#if MUSTAPLE_HAVE_BACKTRACE
  if (frame_count > 0) ::backtrace_symbols_fd(frames, frame_count, fd);
#else
  (void)frames;
  (void)frame_count;
#endif
}

void FlightRecorder::dump_json(int fd, const char* reason, int signal_number,
                               void* const* frames, int frame_count) {
  SigWriter w(fd);
  w.str("{\"schema\":\"mustaple-postmortem/1\",\"reason\":");
  char reason_buf[64];
  copy_trunc(reason_buf, sizeof(reason_buf), reason != nullptr ? reason : "?");
  w.json_str(reason_buf, sizeof(reason_buf));
  w.str(",\"signal\":");
  w.u64(static_cast<std::uint64_t>(signal_number));
  w.str(",\"recorded\":");
  w.u64(recorded());
  w.str(",\"dropped\":");
  w.u64(dropped());
  w.str(",\"peak_rss_bytes\":");
  w.u64(peak_rss_bytes_now());
  w.str(",\"probe_ids\":[");
  const std::uint64_t pn = probe_next_.load(std::memory_order_relaxed);
  const std::uint64_t pc = pn < kProbeRing ? pn : kProbeRing;
  for (std::uint64_t i = pn - pc; i < pn; ++i) {
    if (i != pn - pc) w.put(',');
    w.u64(probe_ids_[i % kProbeRing].load(std::memory_order_relaxed));
  }
  w.str("],\"events\":[");
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t count =
      capacity_ == 0 ? 0 : (n < capacity_ ? n : capacity_);
  for (std::uint64_t idx = n - count; idx < n; ++idx) {
    const Slot& slot = slots_[idx % capacity_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (idx != n - count) w.put(',');
    w.str("{\"index\":");
    w.u64(slot.index);
    w.str(",\"wall_unix_ms\":");
    w.u64(slot.wall_unix_ms);
    w.str(",\"sim_unix\":");
    if (slot.sim_unix != kNoSimTime) {
      w.i64(slot.sim_unix);
    } else {
      w.str("null");
    }
    w.str(",\"kind\":\"");
    w.str(kind_name(static_cast<EventKind>(slot.kind)));
    w.str("\",\"level\":\"");
    w.str(to_string(static_cast<Level>(slot.level)));
    w.str("\",\"component\":");
    w.json_str(slot.component, sizeof(slot.component));
    w.str(",\"message\":");
    w.json_str(slot.message, sizeof(slot.message));
    w.str(",\"torn\":");
    w.str(seq % 2 == 1 || slot.index != idx ? "true" : "false");
    w.put('}');
  }
  w.str("],\"snapshot\":");
  const int side = snap_active_.load(std::memory_order_acquire);
  const std::size_t snap_len = snap_len_[side].load(std::memory_order_acquire);
  if (snap_len > 0) {
    w.flush();
    std::size_t off = 0;
    while (off < snap_len) {
      const ssize_t wrote =
          ::write(fd, snap_buf_[side].get() + off, snap_len - off);
      if (wrote <= 0) break;
      off += static_cast<std::size_t>(wrote);
    }
  } else {
    w.str("null");
  }
  w.str(",\"backtrace\":[");
  for (int i = 0; i < frame_count; ++i) {
    if (i != 0) w.put(',');
    w.put('"');
    w.hex(reinterpret_cast<std::uintptr_t>(frames[i]));
    w.put('"');
  }
  w.str("]}\n");
}

#else  // !MUSTAPLE_HAVE_SIGNALS

void FlightRecorder::dump_text(int, const char*, int, void* const*, int) {}
void FlightRecorder::dump_json(int, const char*, int, void* const*, int) {}

#endif  // MUSTAPLE_HAVE_SIGNALS

FlightRecorder& default_flight_recorder() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightLogSink::write(const LogRecord& record) {
  if (record.level < min_level_) return;
  std::string message = record.message;
  for (const Field& f : record.fields) {
    message += ' ';
    message += f.key;
    message += '=';
    message += f.value;
  }
  recorder_->record(FlightRecorder::EventKind::kLog, record.level,
                    record.component.c_str(), message.c_str(),
                    record.sim_time ? record.sim_time->unix_seconds
                                    : FlightRecorder::kNoSimTime);
}

}  // namespace mustaple::obs
