// Campaign timeline: windowed snapshots of the metrics registry on the
// SIMULATED clock. The campaign-lifetime aggregates of obs::Registry answer
// "what fraction of fetches failed" but not "when, and from where" — the
// longitudinal questions behind the paper's Figure 3 (availability per
// vantage point over four months) and failure-taxonomy-over-time analyses.
// A Timeline closes fixed util::Duration windows of simulated time as the
// clock advances, recording every counter's delta (and each histogram's
// _count/_sum deltas) plus gauge values, so per-window series fall out of
// the same metrics the layers already maintain instead of bespoke bench
// accumulators.
//
// The EventLoop advances the process-wide installed timeline whenever the
// simulated clock moves, so drivers only install/flush.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace mustaple::obs {

/// One closed window of simulated time and the metric activity inside it.
/// Windows where nothing happened (all counter deltas zero) are not stored.
struct TimelineWindow {
  struct Sample {
    std::string metric;
    std::string labels;  ///< canonical form, "" or `{k="v",...}`
    double value = 0.0;
  };

  util::SimTime start{};
  util::SimTime end{};
  std::vector<Sample> counters;  ///< deltas over [start, end)
  std::vector<Sample> gauges;    ///< instantaneous values at `end`
};

class Timeline {
 public:
  /// Windows are [start + k*window, start + (k+1)*window). Activity before
  /// `start` (e.g. the study's warm-up day) is excluded: the baseline
  /// snapshot is taken when the clock first reaches `start`.
  Timeline(util::SimTime start, util::Duration window,
           Registry& registry = default_registry());

  util::SimTime start() const { return start_; }
  util::Duration window() const { return window_; }

  /// Closes every window whose end <= now. The EventLoop calls this for the
  /// installed timeline on each clock advance; call it directly when
  /// driving a registry without a loop.
  void advance_to(util::SimTime now);

  /// Closes the in-progress partial window ending at `now` (campaign end).
  void flush(util::SimTime now);

  const std::vector<TimelineWindow>& windows() const { return windows_; }

  /// Called right after a non-empty window is stored, from whichever thread
  /// advanced the timeline (the main thread — Timeline is single-threaded by
  /// design). This is where SLO burn-rate evaluation hooks in: windows close
  /// in sim-time order, so the hook sees a complete, ordered history.
  void set_window_hook(std::function<void(const TimelineWindow&)> hook) {
    window_hook_ = std::move(hook);
  }

  /// Per-window counter delta -> series; x is the window start in unix
  /// seconds, windows without the cell are skipped.
  util::Series series(const std::string& metric,
                      const Labels& labels = {}) const;

  /// scale * numerator/denominator per window (both counter deltas, same
  /// labels), skipping windows where the denominator is zero. With the
  /// default scale this is a percentage — e.g. Figure 3 availability from
  /// mustaple_scan_successes_total / mustaple_scan_requests_total.
  util::Series ratio_series(const std::string& numerator,
                            const std::string& denominator,
                            const Labels& labels = {},
                            double scale = 100.0) const;

  /// Delta of `metric` with canonical `labels` in one window; 0 if absent.
  static double counter_delta(const TimelineWindow& window,
                              const std::string& metric,
                              const std::string& labels_canonical);

  /// CSV with header
  /// `window_start_unix,window_start,window_end_unix,kind,metric,labels,value`
  /// — one row per counter delta (kind=counter) and gauge value
  /// (kind=gauge), windows in order.
  std::string render_csv() const;

  /// Single-line JSON: {"window_seconds":..,"start_unix":..,"windows":[..]}.
  std::string render_json() const;

 private:
  using Key = std::pair<std::string, std::string>;  // (metric, labels)

  void close_window(util::SimTime end);
  void snapshot(std::map<Key, double>& out) const;

  Registry* registry_;
  util::SimTime start_;
  util::Duration window_;
  util::SimTime cursor_{};  ///< start of the window currently accruing
  bool baseline_taken_ = false;
  std::map<Key, double> prev_;  ///< cumulative values at the last close
  std::vector<TimelineWindow> windows_;
  std::function<void(const TimelineWindow&)> window_hook_;
};

/// Installs the timeline the EventLoop advances on clock movement; returns
/// the previously installed one (nullptr when none). Pass nullptr to
/// uninstall. The caller keeps ownership and must uninstall before the
/// timeline dies.
Timeline* install_timeline(Timeline* timeline);
Timeline* installed_timeline();

/// EventLoop hook: advances the installed timeline, if any.
void advance_installed_timeline(util::SimTime now);

}  // namespace mustaple::obs
