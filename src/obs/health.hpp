// Pillar 8, watchdog half (health): the campaign that produces the paper's
// §4/§5 numbers continuously proves its own invariants instead of trusting
// them. A HealthMonitor holds two kinds of declaratively registered rules:
//
//  * named CHECKS — arbitrary predicates over already-maintained state
//    (metrics registry counters, util::alloc_counter tallies, ResourceMonitor
//    samples): cache conservation `hits + misses == lookups`, RSS under
//    `StudyConfig::rss_budget_mb`, probe-error-rate ceilings. Checks are
//    thread-safe and cheap, so they run on every resource tick AND at
//    scan-phase boundaries.
//  * SLO RULES — windowed burn-rate availability over obs::Timeline counter
//    series (e.g. responder availability >= target over 1h/6h of simulated
//    time). The Timeline is single-threaded by design, so SLO evaluation
//    happens only from the advancing thread, via Timeline's window hook and
//    at phase boundaries.
//
// Evaluation is strictly READ-ONLY over existing registries and never
// touches the default (campaign) registry, so enabling health can never
// perturb bit-identical campaign outputs. Results are exported as
// `health.json` (schema `mustaple-health/1`), served live by the
// introspection server (/healthz turns 503 on a critical breach), and every
// state transition is announced through a hook the study points at the
// logger + FlightRecorder (+ std::abort under `abort_on_critical`).
//
// Plain library code — compiled regardless of MUSTAPLE_OBS_OFF; only the
// study wiring (and thus the artifacts/endpoints) compiles out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "util/sim_time.hpp"

namespace mustaple::obs {

enum class HealthSeverity : std::uint8_t { kWarning, kCritical };
const char* to_string(HealthSeverity severity);

/// What one predicate reports back. `detail` is surfaced verbatim in
/// health.json / /healthz / the flight-recorder event, so it should say the
/// numbers ("rss 812 MiB > budget 512 MiB"), not just "failed".
struct HealthCheckResult {
  bool ok = true;
  std::string detail;
};

class HealthMonitor {
 public:
  using CheckFn = std::function<HealthCheckResult()>;

  /// One SLO burn-rate rule: scale-100 ratio of two counter deltas summed
  /// over every closed timeline window inside each `lookbacks` span (ending
  /// at the newest closed window), breached when below `target_pct`.
  /// Lookbacks with denominator < `min_denominator` are reported as
  /// insufficient-volume and never breach — a quiet hour of sim time is not
  /// an outage.
  struct SloRule {
    std::string name;
    std::string numerator;    ///< counter metric name (e.g. successes)
    std::string denominator;  ///< counter metric name (e.g. requests)
    Labels labels;            ///< same labels on both counters
    double target_pct = 90.0;
    std::vector<util::Duration> lookbacks;
    std::uint64_t min_denominator = 1;
    HealthSeverity severity = HealthSeverity::kCritical;
  };

  /// Externally visible state of one check (see check_statuses()).
  struct CheckStatus {
    std::string name;
    HealthSeverity severity = HealthSeverity::kWarning;
    bool ok = true;
    std::string detail;
    std::uint64_t evaluations = 0;
    std::uint64_t breaches = 0;  ///< evaluations that came back not-ok
  };

  /// Externally visible state of one SLO rule at one lookback.
  struct SloStatus {
    std::string name;
    HealthSeverity severity = HealthSeverity::kCritical;
    std::int64_t lookback_seconds = 0;
    bool evaluated = false;  ///< false until volume >= min_denominator
    bool ok = true;
    double value_pct = 0.0;  ///< meaningful only when evaluated
    double target_pct = 0.0;
    std::uint64_t numerator = 0;
    std::uint64_t denominator = 0;
  };

  /// Called on every ok<->breached transition (checks and SLO lookbacks),
  /// outside the monitor's lock. The study wires this to MUSTAPLE_LOG_*,
  /// FlightRecorder::note_health, and abort_on_critical.
  using TransitionHook = std::function<void(
      const std::string& name, HealthSeverity severity, bool ok,
      const std::string& detail)>;

  /// Registration is not thread-safe against evaluation — register during
  /// setup, before the resource tick starts driving evaluate_checks().
  void add_check(std::string name, HealthSeverity severity, CheckFn fn);
  void add_slo(SloRule rule);
  void set_on_transition(TransitionHook hook);

  /// Runs every registered predicate. Thread-safe; called from the resource
  /// tick thread and from the main thread at phase boundaries.
  void evaluate_checks();

  /// Re-evaluates every SLO rule against the timeline's closed windows.
  /// NOT thread-safe against the timeline's owner — call only from the
  /// thread advancing the timeline (window hook / phase boundaries).
  void evaluate_slos(const Timeline& timeline);

  /// Any currently-breached check/SLO at kCritical? Drives /healthz's 503
  /// and abort_on_critical.
  bool critical_breached() const;
  /// Any currently-breached check/SLO at any severity?
  bool any_breached() const;
  /// "ok", "warn", or "critical" — the roll-up /healthz and health.json lead
  /// with.
  std::string overall_status() const;

  std::uint64_t check_evaluations() const;
  std::uint64_t slo_evaluations() const;

  std::vector<CheckStatus> check_statuses() const;
  std::vector<SloStatus> slo_statuses() const;

  /// {"schema":"mustaple-health/1","status":...,"checks":[..],"slos":[..]}.
  std::string render_json() const;
  /// Indented text block for /statusz.
  std::string render_text() const;

 private:
  struct CheckEntry {
    CheckStatus status;
    CheckFn fn;
  };
  struct Transition {
    std::string name;
    HealthSeverity severity;
    bool ok;
    std::string detail;
  };

  void fire(std::vector<Transition>& transitions);

  mutable util::Mutex mu_;
  std::vector<CheckEntry> checks_ MUSTAPLE_GUARDED_BY(mu_);
  std::vector<SloRule> slo_rules_ MUSTAPLE_GUARDED_BY(mu_);
  std::vector<SloStatus> slo_statuses_ MUSTAPLE_GUARDED_BY(mu_);
  TransitionHook on_transition_ MUSTAPLE_GUARDED_BY(mu_);
  std::uint64_t check_evaluations_ MUSTAPLE_GUARDED_BY(mu_) = 0;
  std::uint64_t slo_evaluations_ MUSTAPLE_GUARDED_BY(mu_) = 0;
};

}  // namespace mustaple::obs
