#include "obs/health.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace mustaple::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

const char* to_string(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::kWarning:
      return "warning";
    case HealthSeverity::kCritical:
      return "critical";
  }
  return "?";
}

void HealthMonitor::add_check(std::string name, HealthSeverity severity,
                              CheckFn fn) {
  util::MutexLock lock(mu_);
  CheckEntry entry;
  entry.status.name = std::move(name);
  entry.status.severity = severity;
  entry.fn = std::move(fn);
  checks_.push_back(std::move(entry));
}

void HealthMonitor::add_slo(SloRule rule) {
  util::MutexLock lock(mu_);
  for (util::Duration lookback : rule.lookbacks) {
    SloStatus status;
    status.name = rule.name;
    status.severity = rule.severity;
    status.lookback_seconds = lookback.seconds;
    status.target_pct = rule.target_pct;
    slo_statuses_.push_back(std::move(status));
  }
  slo_rules_.push_back(std::move(rule));
}

void HealthMonitor::set_on_transition(TransitionHook hook) {
  util::MutexLock lock(mu_);
  on_transition_ = std::move(hook);
}

void HealthMonitor::evaluate_checks() {
  std::vector<Transition> transitions;
  {
    util::MutexLock lock(mu_);
    ++check_evaluations_;
    for (CheckEntry& entry : checks_) {
      HealthCheckResult result;
      result = entry.fn ? entry.fn() : HealthCheckResult{};
      ++entry.status.evaluations;
      if (!result.ok) ++entry.status.breaches;
      const bool changed = entry.status.ok != result.ok;
      entry.status.ok = result.ok;
      entry.status.detail = std::move(result.detail);
      if (changed) {
        transitions.push_back({entry.status.name, entry.status.severity,
                               entry.status.ok, entry.status.detail});
      }
    }
  }
  fire(transitions);
}

void HealthMonitor::evaluate_slos(const Timeline& timeline) {
  const std::vector<TimelineWindow>& windows = timeline.windows();
  std::vector<Transition> transitions;
  {
    util::MutexLock lock(mu_);
    ++slo_evaluations_;
    if (windows.empty()) return;
    const util::SimTime newest_end = windows.back().end;
    std::size_t status_index = 0;
    for (const SloRule& rule : slo_rules_) {
      const std::string labels = canonical_labels(rule.labels);
      for (util::Duration lookback : rule.lookbacks) {
        SloStatus& status = slo_statuses_[status_index++];
        const util::SimTime horizon = newest_end - lookback;
        double numerator = 0.0;
        double denominator = 0.0;
        // windows are closed in order; walk back until one ends at or
        // before the horizon. Empty (all-zero) windows are simply absent,
        // which only means zero deltas — correct for a sum.
        for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
          if (it->end.unix_seconds <= horizon.unix_seconds) break;
          numerator += Timeline::counter_delta(*it, rule.numerator, labels);
          denominator +=
              Timeline::counter_delta(*it, rule.denominator, labels);
        }
        status.numerator = static_cast<std::uint64_t>(numerator);
        status.denominator = static_cast<std::uint64_t>(denominator);
        status.evaluated = status.denominator >= rule.min_denominator;
        const bool was_ok = status.ok;
        if (status.evaluated) {
          status.value_pct = 100.0 * numerator / denominator;
          status.ok = status.value_pct >= rule.target_pct;
        } else {
          status.value_pct = 0.0;
          status.ok = true;  // insufficient volume never breaches
        }
        if (status.ok != was_ok) {
          std::string detail = "availability " +
                               format_pct(status.value_pct) + "% vs target " +
                               format_pct(status.target_pct) + "% over " +
                               std::to_string(status.lookback_seconds) +
                               "s sim window (" +
                               std::to_string(status.numerator) + "/" +
                               std::to_string(status.denominator) + ")";
          transitions.push_back({status.name + "[" +
                                     std::to_string(status.lookback_seconds) +
                                     "s]",
                                 status.severity, status.ok,
                                 std::move(detail)});
        }
      }
    }
  }
  fire(transitions);
}

void HealthMonitor::fire(std::vector<Transition>& transitions) {
  if (transitions.empty()) return;
  TransitionHook hook;
  {
    util::MutexLock lock(mu_);
    hook = on_transition_;
  }
  if (!hook) return;
  for (const Transition& t : transitions) {
    hook(t.name, t.severity, t.ok, t.detail);
  }
}

bool HealthMonitor::critical_breached() const {
  util::MutexLock lock(mu_);
  for (const CheckEntry& entry : checks_) {
    if (!entry.status.ok && entry.status.severity == HealthSeverity::kCritical)
      return true;
  }
  for (const SloStatus& status : slo_statuses_) {
    if (!status.ok && status.severity == HealthSeverity::kCritical)
      return true;
  }
  return false;
}

bool HealthMonitor::any_breached() const {
  util::MutexLock lock(mu_);
  for (const CheckEntry& entry : checks_) {
    if (!entry.status.ok) return true;
  }
  for (const SloStatus& status : slo_statuses_) {
    if (!status.ok) return true;
  }
  return false;
}

std::string HealthMonitor::overall_status() const {
  if (critical_breached()) return "critical";
  if (any_breached()) return "warn";
  return "ok";
}

std::uint64_t HealthMonitor::check_evaluations() const {
  util::MutexLock lock(mu_);
  return check_evaluations_;
}

std::uint64_t HealthMonitor::slo_evaluations() const {
  util::MutexLock lock(mu_);
  return slo_evaluations_;
}

std::vector<HealthMonitor::CheckStatus> HealthMonitor::check_statuses() const {
  util::MutexLock lock(mu_);
  std::vector<CheckStatus> out;
  out.reserve(checks_.size());
  for (const CheckEntry& entry : checks_) out.push_back(entry.status);
  return out;
}

std::vector<HealthMonitor::SloStatus> HealthMonitor::slo_statuses() const {
  util::MutexLock lock(mu_);
  return slo_statuses_;
}

std::string HealthMonitor::render_json() const {
  const std::string status = overall_status();  // before taking mu_
  const std::vector<CheckStatus> checks = check_statuses();
  const std::vector<SloStatus> slos = slo_statuses();
  std::string out = "{\"schema\":\"mustaple-health/1\"";
  out += ",\"status\":\"" + status + "\"";
  out += ",\"check_evaluations\":" + std::to_string(check_evaluations());
  out += ",\"slo_evaluations\":" + std::to_string(slo_evaluations());
  out += ",\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const CheckStatus& c = checks[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(c.name) + "\"";
    out += ",\"severity\":\"";
    out += to_string(c.severity);
    out += "\",\"ok\":";
    out += c.ok ? "true" : "false";
    out += ",\"detail\":\"" + json_escape(c.detail) + "\"";
    out += ",\"evaluations\":" + std::to_string(c.evaluations);
    out += ",\"breaches\":" + std::to_string(c.breaches);
    out += "}";
  }
  out += "],\"slos\":[";
  for (std::size_t i = 0; i < slos.size(); ++i) {
    const SloStatus& s = slos[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(s.name) + "\"";
    out += ",\"severity\":\"";
    out += to_string(s.severity);
    out += "\",\"lookback_seconds\":" + std::to_string(s.lookback_seconds);
    out += ",\"evaluated\":";
    out += s.evaluated ? "true" : "false";
    out += ",\"ok\":";
    out += s.ok ? "true" : "false";
    out += ",\"value_pct\":" + format_pct(s.value_pct);
    out += ",\"target_pct\":" + format_pct(s.target_pct);
    out += ",\"numerator\":" + std::to_string(s.numerator);
    out += ",\"denominator\":" + std::to_string(s.denominator);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string HealthMonitor::render_text() const {
  std::string out = "status: " + overall_status() + "\n";
  for (const CheckStatus& c : check_statuses()) {
    out += "  check " + c.name + " [";
    out += to_string(c.severity);
    out += "] ";
    out += c.ok ? "ok" : "BREACHED";
    if (!c.detail.empty()) out += " — " + c.detail;
    out += " (" + std::to_string(c.breaches) + "/" +
           std::to_string(c.evaluations) + " breached)\n";
  }
  for (const SloStatus& s : slo_statuses()) {
    out += "  slo " + s.name + "[" + std::to_string(s.lookback_seconds) +
           "s] [";
    out += to_string(s.severity);
    out += "] ";
    if (!s.evaluated) {
      out += "insufficient volume (" + std::to_string(s.denominator) + ")";
    } else {
      out += s.ok ? "ok" : "BREACHED";
      out += " — " + format_pct(s.value_pct) + "% vs target " +
             format_pct(s.target_pct) + "% (" + std::to_string(s.numerator) +
             "/" + std::to_string(s.denominator) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace mustaple::obs
