// Metrics registry: named counters, gauges, and fixed-bucket histograms with
// Prometheus-text and JSON exporters. Metric names follow the repo-wide
// convention `mustaple_<layer>_<name>` (see docs/OBSERVABILITY.md); label
// sets are canonicalized (sorted by key) so the same metric is always the
// same cell.
//
// Thread safety: Counter::inc is lock-free (relaxed atomic); Gauge writes
// and Histogram::observe take a per-cell mutex; cell lookup and the
// visit/render/reset paths take a registry-wide mutex. Returned cell
// references stay valid and usable concurrently (map nodes are stable).
// Aggregate reads (visit_*, render_*, Histogram accessors returning
// references) assume writers have quiesced — the scanner only reads at
// step barriers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::obs {

/// Label pairs attached to one metric cell, e.g. {{"kind", "dns"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    util::MutexLock lock(mu_);
    value_ = v;
    has_sample_ = true;
  }
  void add(double d) {
    util::MutexLock lock(mu_);
    value_ += d;
    has_sample_ = true;
  }
  /// High-water-mark update: keeps the maximum ever seen. The first sample
  /// is taken unconditionally — cells initialize to 0.0, so comparing
  /// against the initial value would silently pin an all-negative series'
  /// high-water mark at 0.
  void set_max(double v) {
    util::MutexLock lock(mu_);
    if (!has_sample_ || v > value_) value_ = v;
    has_sample_ = true;
  }
  double value() const {
    util::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable util::Mutex mu_;
  double value_ MUSTAPLE_GUARDED_BY(mu_) = 0.0;
  bool has_sample_ MUSTAPLE_GUARDED_BY(mu_) = false;
};

/// One consistent, fully-owned view of a histogram, taken under its lock —
/// the render primitive safe against concurrent observe() (the reference
/// accessors below are not, and remain only for quiesced-reader callers).
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative); size bounds.size() + 1, +Inf last.
  std::vector<std::uint64_t> buckets;
  double sum = 0.0;
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed upper-bound buckets plus an implicit +Inf bucket, cumulative like
/// Prometheus's `le` convention when exported.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Movable so value holders (Tracer::Node) can live in vectors. The mutex
  /// is not moved — moving is only sound with no concurrent observers
  /// (a quiesced-reader precondition, hence the analysis opt-out).
  Histogram(Histogram&& other) noexcept MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS
      : bounds_(std::move(other.bounds_)),
        buckets_(std::move(other.buckets_)),
        sum_(other.sum_),
        stats_(other.stats_) {}
  Histogram& operator=(Histogram&&) = delete;

  /// Thread-safe; holds the cell's mutex for the bucket/sum/stats update.
  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the last
  /// entry being the +Inf overflow bucket. Reference-returning accessors
  /// (this and stats()) require concurrent observers to have quiesced.
  const std::vector<std::uint64_t>& bucket_counts() const
      MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS {
    return buckets_;  // quiesced-reader contract, see above
  }
  std::size_t count() const {
    util::MutexLock lock(mu_);
    return stats_.count();
  }
  double sum() const {
    util::MutexLock lock(mu_);
    return sum_;
  }
  const util::OnlineStats& stats() const MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;  // quiesced-reader contract, see bucket_counts()
  }

  /// Bucket-interpolated quantile estimate for q in (0, 1], Prometheus
  /// histogram_quantile style: find the bucket the rank falls in, then
  /// interpolate linearly inside it. Quantiles landing in the +Inf overflow
  /// bucket return the observed max; results are clamped to the observed
  /// [min, max]. 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Everything a renderer needs, captured atomically under the cell mutex.
  /// Safe while other threads observe() — how the introspection server
  /// renders /metrics mid-campaign.
  HistogramSnapshot snapshot() const;

 private:
  double quantile_locked(double q) const MUSTAPLE_REQUIRES(mu_);

  mutable util::Mutex mu_;
  // SRCLINT-ALLOW(sl_unguarded_mutex_field): immutable after construction
  std::vector<double> bounds_;  ///< sorted ascending upper bounds; immutable
  std::vector<std::uint64_t> buckets_ MUSTAPLE_GUARDED_BY(mu_);
  double sum_ MUSTAPLE_GUARDED_BY(mu_) = 0.0;
  util::OnlineStats stats_ MUSTAPLE_GUARDED_BY(mu_);
};

/// Default bounds for millisecond-scale latencies (fetch RTTs, dispatch).
const std::vector<double>& latency_ms_buckets();

/// Owns all metric cells. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime (map nodes are stable).
class Registry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// First call fixes the bucket bounds; later calls ignore `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Read-only lookups that do NOT create cells; 0 / nullptr when absent.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  const Labels& labels = {}) const;

  /// Read-only iteration over every cell, in name-then-label order — the
  /// snapshot primitive behind obs::Timeline.
  void visit_counters(
      const std::function<void(const std::string& name,
                               const std::string& labels,
                               std::uint64_t value)>& fn) const;
  void visit_gauges(const std::function<void(const std::string& name,
                                             const std::string& labels,
                                             double value)>& fn) const;
  void visit_histograms(
      const std::function<void(const std::string& name,
                               const std::string& labels,
                               const Histogram& histogram)>& fn) const;

  /// Prometheus text exposition format (one `# TYPE` line per family;
  /// histograms additionally expose `_p50`/`_p95`/`_p99` estimates).
  std::string render_prometheus() const;
  /// Single-line JSON object with "counters"/"gauges"/"histograms" sections.
  std::string render_json() const;

  void reset();

 private:
  // name -> canonical label string ("" or `{k="v",...}`) -> cell.
  template <typename T>
  using Family = std::map<std::string, std::map<std::string, T>>;

  mutable util::Mutex mu_;  ///< guards the family maps, not the cells
  Family<Counter> counters_ MUSTAPLE_GUARDED_BY(mu_);
  Family<Gauge> gauges_ MUSTAPLE_GUARDED_BY(mu_);
  Family<std::unique_ptr<Histogram>> histograms_ MUSTAPLE_GUARDED_BY(mu_);
};

/// The process-wide registry all MUSTAPLE_* macros write to.
Registry& default_registry();

/// `{k="v",k2="v2"}` with keys sorted; "" for no labels.
std::string canonical_labels(const Labels& labels);

}  // namespace mustaple::obs
