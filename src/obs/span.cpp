#include "obs/span.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mustaple::obs {

std::size_t Tracer::begin(const std::string& name) {
  const std::string path =
      stack_.empty() ? name : nodes_[stack_.back()].path + "/" + name;
  auto [it, inserted] = by_path_.try_emplace(path, nodes_.size());
  if (inserted) {
    Node node;
    node.path = path;
    node.name = name;
    node.depth = static_cast<int>(stack_.size());
    nodes_.push_back(std::move(node));
  }
  stack_.push_back(it->second);
  return it->second;
}

void Tracer::end(std::size_t handle, double elapsed_ms) {
  if (handle >= nodes_.size()) return;
  Node& node = nodes_[handle];
  ++node.count;
  node.total_ms += elapsed_ms;
  node.durations.observe(elapsed_ms);
  // Spans are RAII and single-threaded, so ends arrive LIFO; tolerate a
  // mismatched end rather than corrupting the stack.
  if (!stack_.empty() && stack_.back() == handle) stack_.pop_back();
}

std::string Tracer::summary() const {
  if (nodes_.empty()) return "";
  std::string out = "--- span summary (wall-clock) ---\n";
  out += util::format("%-36s %9s %15s %10s %10s %10s\n", "phase", "count",
                      "total", "p50", "p95", "p99");
  for (const Node& node : nodes_) {
    const std::string indent(static_cast<std::size_t>(node.depth) * 2, ' ');
    std::string label = indent + node.name;
    if (label.size() < 36) label.resize(36, ' ');
    out += util::format("%s %8llux %12.2f ms %7.2f ms %7.2f ms %7.2f ms\n",
                        label.c_str(),
                        static_cast<unsigned long long>(node.count),
                        node.total_ms, node.durations.p50(),
                        node.durations.p95(), node.durations.p99());
  }
  return out;
}

void Tracer::reset() {
  nodes_.clear();
  stack_.clear();
  by_path_.clear();
}

Tracer& default_tracer() {
  static Tracer tracer;
  return tracer;
}

}  // namespace mustaple::obs
