// Arbitrary-precision unsigned integers, sized for RSA moduli in the
// 512-2048-bit range. Implements schoolbook multiply and Knuth Algorithm D
// division — ample for the simulation's signing volumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mustaple::crypto {

/// Unsigned big integer; value zero is represented by an empty limb vector.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t value);

  static BigInt from_bytes_be(const util::Bytes& bytes);
  util::Bytes to_bytes_be() const;  ///< minimal length; {0x00} for zero
  /// Fixed-width big-endian (left-padded with zeros); throws if too narrow.
  util::Bytes to_bytes_be_padded(std::size_t width) const;

  static BigInt random_bits(std::size_t bits, util::Rng& rng);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  std::uint64_t to_u64() const;  ///< throws if the value exceeds 64 bits

  /// -1 / 0 / +1 comparison.
  static int compare(const BigInt& a, const BigInt& b);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return compare(a, b) >= 0;
  }

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  /// Requires a >= b (unsigned); throws std::domain_error otherwise.
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);

  struct DivMod;
  /// Knuth Algorithm D; throws std::domain_error on division by zero.
  static DivMod divmod(const BigInt& a, const BigInt& b);

  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt shl(std::size_t bits) const;
  BigInt shr(std::size_t bits) const;

  /// (base ^ exp) mod m, square-and-multiply. m must be > 1.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse of a mod m (both > 0, coprime); returns zero BigInt if
  /// no inverse exists.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  /// Miller-Rabin probabilistic primality test.
  static bool is_probable_prime(const BigInt& n, int rounds, util::Rng& rng);

  /// Generates a random prime with exactly `bits` bits (top two bits set so
  /// products have full width).
  static BigInt generate_prime(std::size_t bits, util::Rng& rng);

  std::string to_hex() const;

 private:
  void trim();
  // Little-endian 32-bit limbs.
  std::vector<std::uint32_t> limbs_;
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}
inline BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

}  // namespace mustaple::crypto
