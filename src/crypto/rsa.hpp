// RSA keypairs and PKCS#1 v1.5-shaped signatures over SHA-256, built on the
// from-scratch BigInt. Key sizes in the simulation default to 512 bits —
// plenty for exercising real sign/verify code paths at simulation speed.
// (Nothing here is intended to resist a real adversary.)
#pragma once

#include <cstdint>

#include "crypto/bigint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace mustaple::crypto {

struct RsaPublicKey {
  BigInt modulus;          ///< n
  BigInt public_exponent;  ///< e (65537)

  std::size_t modulus_bytes() const { return (modulus.bit_length() + 7) / 8; }

  /// DER SEQUENCE { INTEGER n, INTEGER e } — the RSAPublicKey structure.
  util::Bytes encode_der() const;
  static RsaPublicKey decode_der(const util::Bytes& der);  ///< throws on error
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  BigInt private_exponent;  ///< d

  /// Generates an RSA keypair with the given modulus size.
  static RsaKeyPair generate(std::size_t modulus_bits, util::Rng& rng);
};

/// Signs SHA-256(message) with a PKCS#1 v1.5-style padding:
///   0x00 0x01 0xFF.. 0x00 || DigestInfo(SHA-256, digest)
util::Bytes rsa_sign_sha256(const RsaKeyPair& key, const util::Bytes& message);

/// Verifies a signature produced by rsa_sign_sha256.
bool rsa_verify_sha256(const RsaPublicKey& key, const util::Bytes& message,
                       const util::Bytes& signature);

}  // namespace mustaple::crypto
