#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace mustaple::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

BigInt BigInt::from_bytes_be(const util::Bytes& bytes) {
  BigInt out;
  for (std::uint8_t b : bytes) {
    // out = out * 256 + b, done limb-wise.
    std::uint64_t carry = b;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.trim();
  return out;
}

util::Bytes BigInt::to_bytes_be() const {
  if (is_zero()) return util::Bytes{0x00};
  util::Bytes out;
  out.reserve(limbs_.size() * 4);
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    out.push_back(static_cast<std::uint8_t>(*it >> 24));
    out.push_back(static_cast<std::uint8_t>(*it >> 16));
    out.push_back(static_cast<std::uint8_t>(*it >> 8));
    out.push_back(static_cast<std::uint8_t>(*it));
  }
  std::size_t skip = 0;
  while (skip + 1 < out.size() && out[skip] == 0) ++skip;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(skip));
  return out;
}

util::Bytes BigInt::to_bytes_be_padded(std::size_t width) const {
  util::Bytes minimal = to_bytes_be();
  if (minimal.size() == 1 && minimal[0] == 0) minimal.clear();
  if (minimal.size() > width) {
    throw std::length_error("BigInt::to_bytes_be_padded: value too wide");
  }
  util::Bytes out(width - minimal.size(), 0x00);
  util::append(out, minimal);
  return out;
}

BigInt BigInt::random_bits(std::size_t bits, util::Rng& rng) {
  if (bits == 0) return BigInt();
  BigInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<std::uint32_t>(rng.next_u64());
  }
  const std::size_t top_bits = bits % 32;
  if (top_bits != 0) {
    out.limbs_.back() &= (1u << top_bits) - 1;
  }
  out.trim();
  return out;
}

std::size_t BigInt::bit_length() const {
  if (is_zero()) return 0;
  const std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  for (int i = 31; i >= 0; --i) {
    if (top & (1u << i)) return bits + static_cast<std::size_t>(i) + 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigInt::to_u64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigInt::to_u64: too wide");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) {
  if (BigInt::compare(a, b) < 0) {
    throw std::domain_error("BigInt subtraction underflow");
  }
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t av = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + av * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    if (bits == 0) return out;
  }
  if (is_zero()) return BigInt();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt division by zero");
  if (compare(a, b) < 0) return {BigInt(), a};
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    BigInt q;
    q.limbs_.resize(a.limbs_.size());
    const std::uint64_t d = b.limbs_[0];
    std::uint64_t rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, divide limb-by-limb with trial quotients, then denormalize.
  const std::size_t n = b.limbs_.size();
  const std::size_t m = a.limbs_.size() - n;
  std::size_t shift = 0;
  {
    std::uint32_t top = b.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigInt u_big = a.shl(shift);
  const BigInt v_big = b.shl(shift);
  std::vector<std::uint32_t> u = u_big.limbs_;
  u.resize(a.limbs_.size() + 1, 0);  // u has m+n+1 limbs
  const std::vector<std::uint32_t>& v = v_big.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v[n - 1];
    std::uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract: u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          static_cast<std::int64_t>(u[i + j]) -
          static_cast<std::int64_t>(p & 0xffffffffULL) - borrow;
      u[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(t);
    if (t < 0) {
      // qhat was one too large; add v back.
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r.shr(shift);
  return {q, r};
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || (m.limbs_.size() == 1 && m.limbs_[0] == 1)) {
    throw std::domain_error("BigInt::mod_exp: modulus must be > 1");
  }
  BigInt result(1);
  BigInt b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid with signed bookkeeping done via (value, negative) pairs.
  BigInt old_r = a % m;
  BigInt r = m;
  // Coefficients for `a`: old_s, s — tracked with explicit signs.
  BigInt old_s(1);
  bool old_s_neg = false;
  BigInt s(0);
  bool s_neg = false;

  while (!old_r.is_zero()) {
    const DivMod dm = divmod(r, old_r);
    // (r, old_r) = (old_r, r - q*old_r)
    BigInt new_r = dm.remainder;
    r = old_r;
    old_r = std::move(new_r);

    // (s, old_s) = (old_s, s - q*old_s) with signs.
    BigInt q_old_s = dm.quotient * old_s;
    BigInt new_s;
    bool new_s_neg;
    if (s_neg == old_s_neg) {
      // s - q*old_s where both have the same sign.
      if (compare(s, q_old_s) >= 0) {
        new_s = s - q_old_s;
        new_s_neg = s_neg;
      } else {
        new_s = q_old_s - s;
        new_s_neg = !s_neg;
      }
    } else {
      new_s = s + q_old_s;
      new_s_neg = s_neg;
    }
    s = old_s;
    s_neg = old_s_neg;
    old_s = std::move(new_s);
    old_s_neg = new_s_neg;
  }
  // gcd is in r; inverse exists iff gcd == 1. Coefficient for a is s.
  if (!(r.limbs_.size() == 1 && r.limbs_[0] == 1)) return BigInt();
  BigInt inv = s % m;
  if (s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

bool BigInt::is_probable_prime(const BigInt& n, int rounds, util::Rng& rng) {
  if (n.is_zero()) return false;
  if (n.limbs_.size() == 1) {
    const std::uint32_t v = n.limbs_[0];
    if (v < 2) return false;
    if (v == 2 || v == 3) return true;
  }
  if (!n.is_odd()) return false;

  // Trial division by small primes rejects ~80% of candidates cheaply.
  static constexpr std::uint32_t kSmallPrimes[] = {
      3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
      47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101};
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (compare(n, bp) == 0) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^s with d odd.
  const BigInt one(1);
  const BigInt two(2);
  const BigInt n_minus_1 = n - one;
  BigInt d = n_minus_1;
  std::size_t s_exp = 0;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++s_exp;
  }

  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigInt a;
    do {
      a = random_bits(n.bit_length(), rng);
    } while (compare(a, two) < 0 || compare(a, n_minus_1) >= 0);

    BigInt x = mod_exp(a, d, n);
    if (compare(x, one) == 0 || compare(x, n_minus_1) == 0) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s_exp; ++i) {
      x = (x * x) % n;
      if (compare(x, n_minus_1) == 0) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(std::size_t bits, util::Rng& rng) {
  if (bits < 8) throw std::invalid_argument("generate_prime: bits too small");
  for (;;) {
    BigInt candidate = random_bits(bits, rng);
    // Force exact width (top two bits) and oddness.
    candidate.limbs_.resize((bits + 31) / 32, 0);
    const std::size_t top_bit = (bits - 1) % 32;
    candidate.limbs_.back() |= 1u << top_bit;
    if (top_bit > 0) {
      candidate.limbs_.back() |= 1u << (top_bit - 1);
    } else if (candidate.limbs_.size() >= 2) {
      candidate.limbs_[candidate.limbs_.size() - 2] |= 0x80000000u;
    }
    candidate.limbs_[0] |= 1u;
    candidate.trim();
    if (is_probable_prime(candidate, 20, rng)) return candidate;
  }
}

std::string BigInt::to_hex() const {
  return util::to_hex(to_bytes_be());
}

}  // namespace mustaple::crypto
