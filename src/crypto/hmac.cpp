#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace mustaple::crypto {

util::Bytes hmac_sha256(const util::Bytes& key, const util::Bytes& message) {
  constexpr std::size_t kBlock = 64;
  util::Bytes k = key;
  if (k.size() > kBlock) k = Sha256::hash(k);
  k.resize(kBlock, 0x00);

  util::Bytes ipad(kBlock);
  util::Bytes opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  util::Bytes inner = Sha256().update(ipad).update(message).digest();
  return Sha256().update(opad).update(inner).digest();
}

}  // namespace mustaple::crypto
