// SHA-256 (FIPS 180-4), implemented from scratch. Used for certificate
// fingerprints, OCSP CertID hashes, RSA signature digests, and the
// simulation-grade keyed-hash signer.
//
// The compression function is runtime-dispatched: a portable scalar
// implementation always exists, an unrolled scalar variant is the portable
// default, and on x86-64 the dispatcher upgrades to SHA-NI or AVX2 when
// CPUID says the CPU has them. Every implementation produces bit-identical
// digests (asserted against NIST vectors and randomized splits in
// crypto_test); dispatch only changes throughput, never output.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mustaple::crypto {

/// Compression-function implementations, in ascending preference order.
enum class Sha256Impl {
  kScalar,    ///< straightforward FIPS 180-4 loop (reference baseline)
  kUnrolled,  ///< unrolled rounds + rolling 16-word schedule (portable default)
  kAvx2,      ///< SIMD message schedule, scalar rounds (x86-64 with AVX2)
  kShaNi,     ///< SHA extensions (x86-64 with SHA-NI)
};

const char* to_string(Sha256Impl impl);

/// The implementation the dispatcher currently uses.
Sha256Impl sha256_active_impl();
/// All implementations usable on this CPU (always contains kScalar and
/// kUnrolled).
std::vector<Sha256Impl> sha256_available_impls();
/// Forces a specific implementation (tests/benchmarks). Returns false —
/// leaving the dispatch unchanged — when the CPU lacks it.
bool sha256_set_impl(Sha256Impl impl);

/// Incremental SHA-256. Typical use: Sha256().update(a).update(b).digest().
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  Sha256& update(const std::uint8_t* data, std::size_t len);
  Sha256& update(const util::Bytes& data) {
    return update(data.data(), data.size());
  }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards.
  util::Bytes digest();

  /// One-shot convenience.
  static util::Bytes hash(const util::Bytes& data);

 private:
  void process_blocks(const std::uint8_t* blocks, std::size_t n);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace mustaple::crypto
