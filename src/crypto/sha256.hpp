// SHA-256 (FIPS 180-4), implemented from scratch. Used for certificate
// fingerprints, OCSP CertID hashes, RSA signature digests, and the
// simulation-grade keyed-hash signer.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace mustaple::crypto {

/// Incremental SHA-256. Typical use: Sha256().update(a).update(b).digest().
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  Sha256& update(const std::uint8_t* data, std::size_t len);
  Sha256& update(const util::Bytes& data) {
    return update(data.data(), data.size());
  }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards.
  util::Bytes digest();

  /// One-shot convenience.
  static util::Bytes hash(const util::Bytes& data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace mustaple::crypto
