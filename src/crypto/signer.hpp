// Unified signing interface over two algorithms:
//
//  * kRsaSha256 — real RSA-with-SHA-256 over the from-scratch BigInt. Used in
//    unit tests, examples, and small-scale experiments.
//  * kSimHashSig — simulation-grade keyed-hash "signature":
//    HMAC-SHA256(public key bytes, message). Anyone holding the public key
//    could forge it, which is fine inside a closed simulation; what matters
//    for the study is that verification deterministically FAILS when the
//    message was tampered with or the wrong key is used — exactly the
//    "Incorrect signature" classification of paper §5.3 — while costing
//    nanoseconds instead of milliseconds at fleet scale.
//
// The algorithm travels inside the key material, so a mixed ecosystem works.
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace mustaple::crypto {

enum class SignatureAlgorithm : std::uint8_t {
  kRsaSha256 = 1,
  kSimHashSig = 2,
};

const char* to_string(SignatureAlgorithm alg);

/// A verification key. Carries its algorithm tag plus algorithm-specific key
/// bytes (RSAPublicKey DER, or the 32-byte sim key id).
class PublicKey {
 public:
  PublicKey() = default;
  PublicKey(SignatureAlgorithm alg, util::Bytes key_bytes)
      : alg_(alg), key_bytes_(std::move(key_bytes)) {}

  SignatureAlgorithm algorithm() const { return alg_; }
  const util::Bytes& key_bytes() const { return key_bytes_; }

  /// Wire form: one algorithm byte followed by the key bytes. Embedded in
  /// certificates' SubjectPublicKeyInfo BIT STRING.
  util::Bytes encode() const;
  static util::Result<PublicKey> decode(const util::Bytes& wire);

  /// Checks a signature over `message`.
  bool verify(const util::Bytes& message, const util::Bytes& signature) const;

  bool empty() const { return key_bytes_.empty(); }

  friend bool operator==(const PublicKey& a, const PublicKey& b) {
    return a.alg_ == b.alg_ && a.key_bytes_ == b.key_bytes_;
  }

 private:
  SignatureAlgorithm alg_ = SignatureAlgorithm::kSimHashSig;
  util::Bytes key_bytes_;
};

/// A signing key (public + private halves).
class KeyPair {
 public:
  /// Real RSA keypair; `modulus_bits` >= 256.
  static KeyPair generate_rsa(std::size_t modulus_bits, util::Rng& rng);
  /// Simulation-grade keyed-hash keypair (instant).
  static KeyPair generate_sim(util::Rng& rng);

  const PublicKey& public_key() const { return public_key_; }
  SignatureAlgorithm algorithm() const { return public_key_.algorithm(); }

  util::Bytes sign(const util::Bytes& message) const;

 private:
  KeyPair() = default;
  PublicKey public_key_;
  // Exactly one of the following is populated, per the algorithm tag.
  std::shared_ptr<const RsaKeyPair> rsa_;  // shared: KeyPair is copied into CA registries
  util::Bytes sim_secret_;
};

}  // namespace mustaple::crypto
