#include "crypto/sha1.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace mustaple::crypto {

namespace {
std::uint32_t rotl(std::uint32_t x, int n) { return std::rotl(x, n); }
}  // namespace

Sha1::Sha1()
    : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0} {}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1& Sha1::update(const std::uint8_t* data, std::size_t len) {
  if (finalized_) throw std::logic_error("Sha1::update after digest()");
  total_bytes_ += len;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  return *this;
}

util::Bytes Sha1::digest() {
  if (finalized_) throw std::logic_error("Sha1::digest called twice");
  finalized_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  auto feed = [&](const std::uint8_t* p, std::size_t n) {
    while (n > 0) {
      const std::size_t take = std::min(n, buffer_.size() - buffered_);
      std::memcpy(buffer_.data() + buffered_, p, take);
      buffered_ += take;
      p += take;
      n -= take;
      if (buffered_ == buffer_.size()) {
        process_block(buffer_.data());
        buffered_ = 0;
      }
    }
  };
  feed(pad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  feed(len_bytes, 8);

  util::Bytes out(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

util::Bytes Sha1::hash(const util::Bytes& data) {
  return Sha1().update(data).digest();
}

}  // namespace mustaple::crypto
