// HMAC-SHA256 (RFC 2104). Backs the simulation-grade HashSigner.
#pragma once

#include "util/bytes.hpp"

namespace mustaple::crypto {

/// Computes HMAC-SHA256(key, message).
util::Bytes hmac_sha256(const util::Bytes& key, const util::Bytes& message);

}  // namespace mustaple::crypto
