// SHA-1 (FIPS 180-4). Present because RFC 6960 CertID issuer hashes are
// conventionally SHA-1; not used for anything that needs collision
// resistance inside the simulation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace mustaple::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1();
  Sha1& update(const std::uint8_t* data, std::size_t len);
  Sha1& update(const util::Bytes& data) { return update(data.data(), data.size()); }
  util::Bytes digest();
  static util::Bytes hash(const util::Bytes& data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

}  // namespace mustaple::crypto
