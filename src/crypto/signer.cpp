#include "crypto/signer.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace mustaple::crypto {

const char* to_string(SignatureAlgorithm alg) {
  switch (alg) {
    case SignatureAlgorithm::kRsaSha256:
      return "rsa-sha256";
    case SignatureAlgorithm::kSimHashSig:
      return "sim-hash-sig";
  }
  return "unknown";
}

util::Bytes PublicKey::encode() const {
  util::Bytes out;
  out.reserve(key_bytes_.size() + 1);
  out.push_back(static_cast<std::uint8_t>(alg_));
  util::append(out, key_bytes_);
  return out;
}

util::Result<PublicKey> PublicKey::decode(const util::Bytes& wire) {
  if (wire.empty()) {
    return util::Result<PublicKey>::failure("pubkey.empty");
  }
  const auto alg = static_cast<SignatureAlgorithm>(wire[0]);
  if (alg != SignatureAlgorithm::kRsaSha256 &&
      alg != SignatureAlgorithm::kSimHashSig) {
    return util::Result<PublicKey>::failure("pubkey.unknown_algorithm");
  }
  return PublicKey(alg, util::Bytes(wire.begin() + 1, wire.end()));
}

bool PublicKey::verify(const util::Bytes& message,
                       const util::Bytes& signature) const {
  switch (alg_) {
    case SignatureAlgorithm::kRsaSha256: {
      RsaPublicKey key;
      try {
        key = RsaPublicKey::decode_der(key_bytes_);
      } catch (const std::invalid_argument&) {
        return false;
      }
      return rsa_verify_sha256(key, message, signature);
    }
    case SignatureAlgorithm::kSimHashSig: {
      const util::Bytes expected = hmac_sha256(key_bytes_, message);
      return util::equal_constant_time(expected, signature);
    }
  }
  return false;
}

KeyPair KeyPair::generate_rsa(std::size_t modulus_bits, util::Rng& rng) {
  KeyPair kp;
  auto rsa = std::make_shared<RsaKeyPair>(RsaKeyPair::generate(modulus_bits, rng));
  kp.public_key_ =
      PublicKey(SignatureAlgorithm::kRsaSha256, rsa->public_key.encode_der());
  kp.rsa_ = std::move(rsa);
  return kp;
}

KeyPair KeyPair::generate_sim(util::Rng& rng) {
  KeyPair kp;
  util::Bytes id(32);
  rng.fill(id.data(), id.size());
  kp.public_key_ = PublicKey(SignatureAlgorithm::kSimHashSig, id);
  kp.sim_secret_ = std::move(id);
  return kp;
}

util::Bytes KeyPair::sign(const util::Bytes& message) const {
  switch (algorithm()) {
    case SignatureAlgorithm::kRsaSha256:
      return rsa_sign_sha256(*rsa_, message);
    case SignatureAlgorithm::kSimHashSig:
      return hmac_sha256(public_key_.key_bytes(), message);
  }
  throw std::logic_error("KeyPair::sign: unreachable");
}

}  // namespace mustaple::crypto
