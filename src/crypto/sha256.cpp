#include "crypto/sha256.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MUSTAPLE_SHA256_X86 1
#include <immintrin.h>
#endif

namespace mustaple::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline std::uint32_t big_sigma0(std::uint32_t x) {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
inline std::uint32_t big_sigma1(std::uint32_t x) {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
inline std::uint32_t small_sigma0(std::uint32_t x) {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
inline std::uint32_t small_sigma1(std::uint32_t x) {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}
inline std::uint32_t ch(std::uint32_t e, std::uint32_t f, std::uint32_t g) {
  return (e & f) ^ (~e & g);
}
inline std::uint32_t maj(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return (a & b) ^ (a & c) ^ (b & c);
}

// --------------------------------------------------------------- scalar --

// Reference implementation: the FIPS 180-4 pseudocode, transcribed. Kept as
// the always-available baseline the faster paths are tested (and benchmarked)
// against.
void compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t n) {
  for (; n > 0; --n, blocks += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    for (int i = 16; i < 64; ++i) {
      w[i] = w[i - 16] + small_sigma0(w[i - 15]) + w[i - 7] +
             small_sigma1(w[i - 2]);
    }
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t t1 = h + big_sigma1(e) + ch(e, f, g) + kK[i] + w[i];
      const std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

// ------------------------------------------------------------- unrolled --

// One round with the working variables named positionally; callers rotate
// the names instead of shuffling eight registers per round.
#define MUSTAPLE_SHA256_ROUND(a, b, c, d, e, f, g, h, kw)          \
  do {                                                             \
    const std::uint32_t t1 = (h) + big_sigma1(e) + ch(e, f, g) + (kw); \
    (d) += t1;                                                     \
    (h) = t1 + big_sigma0(a) + maj(a, b, c);                       \
  } while (0)

// Unrolled scalar: rolling 16-word schedule (recomputed in place, so the
// whole schedule stays in registers/L1) and name-rotated rounds. Portable
// default when no SIMD unit is available.
void compress_unrolled(std::uint32_t* state, const std::uint8_t* blocks,
                       std::size_t n) {
  for (; n > 0; --n, blocks += 64) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(blocks + 4 * i);
    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int chunk = 0; chunk < 64; chunk += 16) {
      if (chunk != 0) {
        for (int j = 0; j < 16; ++j) {
          w[j] += small_sigma0(w[(j + 1) & 15]) + w[(j + 9) & 15] +
                  small_sigma1(w[(j + 14) & 15]);
        }
      }
      MUSTAPLE_SHA256_ROUND(a, b, c, d, e, f, g, h, kK[chunk + 0] + w[0]);
      MUSTAPLE_SHA256_ROUND(h, a, b, c, d, e, f, g, kK[chunk + 1] + w[1]);
      MUSTAPLE_SHA256_ROUND(g, h, a, b, c, d, e, f, kK[chunk + 2] + w[2]);
      MUSTAPLE_SHA256_ROUND(f, g, h, a, b, c, d, e, kK[chunk + 3] + w[3]);
      MUSTAPLE_SHA256_ROUND(e, f, g, h, a, b, c, d, kK[chunk + 4] + w[4]);
      MUSTAPLE_SHA256_ROUND(d, e, f, g, h, a, b, c, kK[chunk + 5] + w[5]);
      MUSTAPLE_SHA256_ROUND(c, d, e, f, g, h, a, b, kK[chunk + 6] + w[6]);
      MUSTAPLE_SHA256_ROUND(b, c, d, e, f, g, h, a, kK[chunk + 7] + w[7]);
      MUSTAPLE_SHA256_ROUND(a, b, c, d, e, f, g, h, kK[chunk + 8] + w[8]);
      MUSTAPLE_SHA256_ROUND(h, a, b, c, d, e, f, g, kK[chunk + 9] + w[9]);
      MUSTAPLE_SHA256_ROUND(g, h, a, b, c, d, e, f, kK[chunk + 10] + w[10]);
      MUSTAPLE_SHA256_ROUND(f, g, h, a, b, c, d, e, kK[chunk + 11] + w[11]);
      MUSTAPLE_SHA256_ROUND(e, f, g, h, a, b, c, d, kK[chunk + 12] + w[12]);
      MUSTAPLE_SHA256_ROUND(d, e, f, g, h, a, b, c, kK[chunk + 13] + w[13]);
      MUSTAPLE_SHA256_ROUND(c, d, e, f, g, h, a, b, kK[chunk + 14] + w[14]);
      MUSTAPLE_SHA256_ROUND(b, c, d, e, f, g, h, a, kK[chunk + 15] + w[15]);
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if defined(MUSTAPLE_SHA256_X86)

// ----------------------------------------------------------------- AVX2 --

// The message schedule is the data-parallel half of SHA-256: each W[i]
// depends on lanes 2, 7, 15 and 16 back, so four consecutive W's can be
// produced per vector step. sigma1 is the wrinkle — W[i+2]/W[i+3] need the
// W[i]/W[i+1] just computed — solved by running sigma1 twice over
// half-vectors and exploiting sigma1(0) == 0 for the masked lanes. Rounds
// themselves stay scalar (they are a strict dependency chain).

__attribute__((target("avx2"))) inline __m128i avx2_sigma0(__m128i x) {
  const __m128i r7 = _mm_or_si128(_mm_srli_epi32(x, 7), _mm_slli_epi32(x, 25));
  const __m128i r18 =
      _mm_or_si128(_mm_srli_epi32(x, 18), _mm_slli_epi32(x, 14));
  return _mm_xor_si128(_mm_xor_si128(r7, r18), _mm_srli_epi32(x, 3));
}

__attribute__((target("avx2"))) inline __m128i avx2_sigma1(__m128i x) {
  const __m128i r17 =
      _mm_or_si128(_mm_srli_epi32(x, 17), _mm_slli_epi32(x, 15));
  const __m128i r19 =
      _mm_or_si128(_mm_srli_epi32(x, 19), _mm_slli_epi32(x, 13));
  return _mm_xor_si128(_mm_xor_si128(r17, r19), _mm_srli_epi32(x, 10));
}

// W0..W3 hold W[i-16..i-1]; returns W[i..i+3].
__attribute__((target("avx2"))) inline __m128i avx2_schedule(__m128i w0,
                                                             __m128i w1,
                                                             __m128i w2,
                                                             __m128i w3) {
  const __m128i w_m15 = _mm_alignr_epi8(w1, w0, 4);  // W[i-15..i-12]
  const __m128i w_m7 = _mm_alignr_epi8(w3, w2, 4);   // W[i-7..i-4]
  const __m128i t =
      _mm_add_epi32(_mm_add_epi32(w0, avx2_sigma0(w_m15)), w_m7);
  // Low two lanes first: they only need sigma1(W[i-2..i-1]).
  const __m128i lo = _mm_add_epi32(t, avx2_sigma1(_mm_srli_si128(w3, 8)));
  // High two lanes need sigma1 of the W[i..i+1] just produced.
  return _mm_add_epi32(lo, avx2_sigma1(_mm_slli_si128(lo, 8)));
}

__attribute__((target("avx2"))) void compress_avx2(std::uint32_t* state,
                                                   const std::uint8_t* blocks,
                                                   std::size_t n) {
  const __m128i bswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL,
                                       0x0405060700010203LL);
  for (; n > 0; --n, blocks += 64) {
    alignas(16) std::uint32_t w[64];
    __m128i w0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), bswap);
    __m128i w1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), bswap);
    __m128i w2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), bswap);
    __m128i w3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), bswap);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 0), w0);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 4), w1);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 8), w2);
    _mm_store_si128(reinterpret_cast<__m128i*>(w + 12), w3);
    for (int i = 16; i < 64; i += 4) {
      const __m128i next = avx2_schedule(w0, w1, w2, w3);
      _mm_store_si128(reinterpret_cast<__m128i*>(w + i), next);
      w0 = w1;
      w1 = w2;
      w2 = w3;
      w3 = next;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; i += 8) {
      MUSTAPLE_SHA256_ROUND(a, b, c, d, e, f, g, h, kK[i + 0] + w[i + 0]);
      MUSTAPLE_SHA256_ROUND(h, a, b, c, d, e, f, g, kK[i + 1] + w[i + 1]);
      MUSTAPLE_SHA256_ROUND(g, h, a, b, c, d, e, f, kK[i + 2] + w[i + 2]);
      MUSTAPLE_SHA256_ROUND(f, g, h, a, b, c, d, e, kK[i + 3] + w[i + 3]);
      MUSTAPLE_SHA256_ROUND(e, f, g, h, a, b, c, d, kK[i + 4] + w[i + 4]);
      MUSTAPLE_SHA256_ROUND(d, e, f, g, h, a, b, c, kK[i + 5] + w[i + 5]);
      MUSTAPLE_SHA256_ROUND(c, d, e, f, g, h, a, b, kK[i + 6] + w[i + 6]);
      MUSTAPLE_SHA256_ROUND(b, c, d, e, f, g, h, a, kK[i + 7] + w[i + 7]);
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

// --------------------------------------------------------------- SHA-NI --

// The SHA extensions do two rounds per sha256rnds2 and provide dedicated
// message-schedule helpers; the register choreography below (ABEF/CDGH state
// packing, msg1 + alignr + msg2 schedule pipeline) is the canonical pattern
// for these instructions.
__attribute__((target("sha,sse4.1"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t n) {
  const __m128i bswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL,
                                       0x0405060700010203LL);
  // Repack {a,b,c,d} {e,f,g,h} into the ABEF/CDGH layout the instructions
  // expect.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 0));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  for (; n > 0; --n, blocks += 64) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg;

    // Rounds 0-15: load + byte-swap the message, start the msg1 pipeline.
    __m128i msgs[4];
    msgs[0] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), bswap);
    msg = _mm_add_epi32(
        msgs[0], _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 0)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    msgs[1] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), bswap);
    msg = _mm_add_epi32(
        msgs[1], _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 4)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msgs[0] = _mm_sha256msg1_epu32(msgs[0], msgs[1]);

    msgs[2] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), bswap);
    msg = _mm_add_epi32(
        msgs[2], _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 8)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msgs[1] = _mm_sha256msg1_epu32(msgs[1], msgs[2]);

    msgs[3] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), bswap);
    msg = _mm_add_epi32(
        msgs[3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 12)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgs[0] = _mm_add_epi32(msgs[0], _mm_alignr_epi8(msgs[3], msgs[2], 4));
    msgs[0] = _mm_sha256msg2_epu32(msgs[0], msgs[3]);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msgs[2] = _mm_sha256msg1_epu32(msgs[2], msgs[3]);

    // Rounds 16-59: steady-state schedule pipeline (msg1 two vectors back,
    // alignr+msg2 completing the current one).
    for (int j = 4; j < 15; ++j) {
      const __m128i cur = msgs[j & 3];
      const __m128i prev = msgs[(j + 3) & 3];
      msg = _mm_add_epi32(
          cur, _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 4 * j)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msgs[(j + 1) & 3] =
          _mm_add_epi32(msgs[(j + 1) & 3], _mm_alignr_epi8(cur, prev, 4));
      msgs[(j + 1) & 3] = _mm_sha256msg2_epu32(msgs[(j + 1) & 3], cur);
      state0 =
          _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
      msgs[(j + 3) & 3] = _mm_sha256msg1_epu32(prev, cur);
    }

    // Rounds 60-63.
    msg = _mm_add_epi32(
        msgs[3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 60)));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Unpack ABEF/CDGH back to {a..d} {e..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 0), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#endif  // MUSTAPLE_SHA256_X86

#undef MUSTAPLE_SHA256_ROUND

// ------------------------------------------------------------- dispatch --

using BlockFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);

bool impl_available(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kScalar:
    case Sha256Impl::kUnrolled:
      return true;
    case Sha256Impl::kAvx2:
#if defined(MUSTAPLE_SHA256_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Sha256Impl::kShaNi:
#if defined(MUSTAPLE_SHA256_X86)
      return __builtin_cpu_supports("sha") != 0 &&
             __builtin_cpu_supports("sse4.1") != 0;
#else
      return false;
#endif
  }
  return false;
}

BlockFn impl_fn(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kScalar:
      return &compress_scalar;
    case Sha256Impl::kUnrolled:
      return &compress_unrolled;
#if defined(MUSTAPLE_SHA256_X86)
    case Sha256Impl::kAvx2:
      return &compress_avx2;
    case Sha256Impl::kShaNi:
      return &compress_shani;
#else
    case Sha256Impl::kAvx2:
    case Sha256Impl::kShaNi:
      return &compress_unrolled;
#endif
  }
  return &compress_unrolled;
}

Sha256Impl pick_best() {
  if (impl_available(Sha256Impl::kShaNi)) return Sha256Impl::kShaNi;
  if (impl_available(Sha256Impl::kAvx2)) return Sha256Impl::kAvx2;
  return Sha256Impl::kUnrolled;
}

// Atomics so a concurrent first-use from several scan workers is a benign
// idempotent race, not a data race (the TSan CI job hashes from 4 threads).
std::atomic<BlockFn> g_block_fn{nullptr};
std::atomic<Sha256Impl> g_impl{Sha256Impl::kScalar};

BlockFn current_fn() {
  BlockFn fn = g_block_fn.load(std::memory_order_acquire);
  if (fn == nullptr) {
    const Sha256Impl best = pick_best();
    fn = impl_fn(best);
    g_impl.store(best, std::memory_order_relaxed);
    g_block_fn.store(fn, std::memory_order_release);
  }
  return fn;
}

}  // namespace

const char* to_string(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kScalar:
      return "scalar";
    case Sha256Impl::kUnrolled:
      return "unrolled";
    case Sha256Impl::kAvx2:
      return "avx2";
    case Sha256Impl::kShaNi:
      return "sha-ni";
  }
  return "unknown";
}

Sha256Impl sha256_active_impl() {
  current_fn();  // force first-use selection
  return g_impl.load(std::memory_order_relaxed);
}

std::vector<Sha256Impl> sha256_available_impls() {
  std::vector<Sha256Impl> out;
  for (Sha256Impl impl : {Sha256Impl::kScalar, Sha256Impl::kUnrolled,
                          Sha256Impl::kAvx2, Sha256Impl::kShaNi}) {
    if (impl_available(impl)) out.push_back(impl);
  }
  return out;
}

bool sha256_set_impl(Sha256Impl impl) {
  if (!impl_available(impl)) return false;
  g_impl.store(impl, std::memory_order_relaxed);
  g_block_fn.store(impl_fn(impl), std::memory_order_release);
  return true;
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_blocks(const std::uint8_t* blocks, std::size_t n) {
  current_fn()(state_.data(), blocks, n);
}

Sha256& Sha256::update(const std::uint8_t* data, std::size_t len) {
  if (finalized_) throw std::logic_error("Sha256::update after digest()");
  total_bytes_ += len;
  // Top up a partially filled staging buffer first.
  if (buffered_ > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == buffer_.size()) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Fast path: whole blocks are hashed straight from the caller's buffer —
  // no staging memcpy, and multi-block runs amortize the dispatch call.
  const std::size_t whole = len / buffer_.size();
  if (whole > 0) {
    process_blocks(data, whole);
    data += whole * buffer_.size();
    len -= whole * buffer_.size();
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), data, len);
    buffered_ = len;
  }
  return *this;
}

util::Bytes Sha256::digest() {
  if (finalized_) throw std::logic_error("Sha256::digest called twice");
  finalized_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  // update() would bump total_bytes_; feed blocks manually.
  auto feed = [&](const std::uint8_t* p, std::size_t n) {
    while (n > 0) {
      const std::size_t take = std::min(n, buffer_.size() - buffered_);
      std::memcpy(buffer_.data() + buffered_, p, take);
      buffered_ += take;
      p += take;
      n -= take;
      if (buffered_ == buffer_.size()) {
        process_blocks(buffer_.data(), 1);
        buffered_ = 0;
      }
    }
  };
  feed(pad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  feed(len_bytes, 8);

  util::Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

util::Bytes Sha256::hash(const util::Bytes& data) {
  return Sha256().update(data).digest();
}

}  // namespace mustaple::crypto
