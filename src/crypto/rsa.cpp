#include "crypto/rsa.hpp"

#include <stdexcept>

#include "asn1/der.hpp"
#include "crypto/sha256.hpp"

namespace mustaple::crypto {

namespace {

// DigestInfo prefix for SHA-256 per RFC 8017 §9.2 (the fixed DER blob).
const util::Bytes& sha256_digest_info_prefix() {
  static const util::Bytes prefix = util::from_hex(
      "3031300d060960864801650304020105000420");
  return prefix;
}

util::Bytes build_em(const util::Bytes& message, std::size_t em_len) {
  util::Bytes t = sha256_digest_info_prefix();
  util::append(t, Sha256::hash(message));
  if (em_len < t.size() + 11) {
    throw std::length_error("rsa: modulus too small for SHA-256 DigestInfo");
  }
  util::Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t.size() - 3, 0xff);
  em.push_back(0x00);
  util::append(em, t);
  return em;
}

}  // namespace

util::Bytes RsaPublicKey::encode_der() const {
  asn1::Writer w;
  w.sequence([&](asn1::Writer& seq) {
    seq.integer_bytes(modulus.to_bytes_be());
    seq.integer_bytes(public_exponent.to_bytes_be());
  });
  return w.take();
}

RsaPublicKey RsaPublicKey::decode_der(const util::Bytes& der) {
  asn1::Reader reader(der);
  auto seq = reader.expect(asn1::Tag::kSequence);
  if (!seq.ok()) throw std::invalid_argument("RsaPublicKey: " + seq.error().to_string());
  asn1::Reader body(seq.value().content);
  auto n = body.read_integer_bytes();
  if (!n.ok()) throw std::invalid_argument("RsaPublicKey: " + n.error().to_string());
  auto e = body.read_integer_bytes();
  if (!e.ok()) throw std::invalid_argument("RsaPublicKey: " + e.error().to_string());
  return RsaPublicKey{BigInt::from_bytes_be(n.value()),
                      BigInt::from_bytes_be(e.value())};
}

RsaKeyPair RsaKeyPair::generate(std::size_t modulus_bits, util::Rng& rng) {
  if (modulus_bits < 256) {
    throw std::invalid_argument("RsaKeyPair::generate: modulus too small");
  }
  const BigInt e(65537);
  const BigInt one(1);
  for (;;) {
    const BigInt p = BigInt::generate_prime(modulus_bits / 2, rng);
    const BigInt q = BigInt::generate_prime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt phi = (p - one) * (q - one);
    if (!(BigInt::gcd(e, phi) == one)) continue;
    const BigInt d = BigInt::mod_inverse(e, phi);
    if (d.is_zero()) continue;
    return RsaKeyPair{RsaPublicKey{n, e}, d};
  }
}

util::Bytes rsa_sign_sha256(const RsaKeyPair& key, const util::Bytes& message) {
  const std::size_t k = key.public_key.modulus_bytes();
  const util::Bytes em = build_em(message, k);
  const BigInt m = BigInt::from_bytes_be(em);
  const BigInt s = BigInt::mod_exp(m, key.private_exponent, key.public_key.modulus);
  return s.to_bytes_be_padded(k);
}

bool rsa_verify_sha256(const RsaPublicKey& key, const util::Bytes& message,
                       const util::Bytes& signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (!(s < key.modulus)) return false;
  const BigInt m = BigInt::mod_exp(s, key.public_exponent, key.modulus);
  util::Bytes em;
  try {
    em = m.to_bytes_be_padded(k);
  } catch (const std::length_error&) {
    return false;
  }
  util::Bytes expected;
  try {
    expected = build_em(message, k);
  } catch (const std::length_error&) {
    return false;
  }
  return util::equal_constant_time(em, expected);
}

}  // namespace mustaple::crypto
