#include "asn1/oid.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace mustaple::asn1 {

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

util::Result<Oid> Oid::parse(const std::string& dotted) {
  const auto parts = util::split(dotted, '.');
  if (parts.size() < 2) {
    return util::Result<Oid>::failure("oid.too_few_arcs", dotted);
  }
  std::vector<std::uint32_t> arcs;
  arcs.reserve(parts.size());
  for (const auto& p : parts) {
    if (p.empty()) return util::Result<Oid>::failure("oid.empty_arc", dotted);
    std::uint64_t v = 0;
    for (char c : p) {
      if (c < '0' || c > '9') {
        return util::Result<Oid>::failure("oid.non_digit", dotted);
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > 0xffffffffULL) {
        return util::Result<Oid>::failure("oid.arc_overflow", dotted);
      }
    }
    arcs.push_back(static_cast<std::uint32_t>(v));
  }
  if (arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39)) {
    return util::Result<Oid>::failure("oid.invalid_first_arcs", dotted);
  }
  return Oid(std::move(arcs));
}

util::Bytes Oid::encode_content() const {
  util::Bytes out;
  if (arcs_.size() < 2) return out;  // caller validates; empty = invalid
  auto put_base128 = [&out](std::uint64_t v) {
    std::uint8_t tmp[10];
    int n = 0;
    do {
      tmp[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v != 0);
    for (int i = n - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(tmp[i] | (i ? 0x80 : 0x00)));
    }
  };
  put_base128(static_cast<std::uint64_t>(arcs_[0]) * 40 + arcs_[1]);
  for (std::size_t i = 2; i < arcs_.size(); ++i) put_base128(arcs_[i]);
  return out;
}

util::Result<Oid> Oid::decode_content(util::BytesView content) {
  if (content.empty()) {
    return util::Result<Oid>::failure("oid.empty_content");
  }
  std::vector<std::uint32_t> arcs;
  std::uint64_t acc = 0;
  bool in_arc = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const std::uint8_t b = content[i];
    if (!in_arc && b == 0x80) {
      return util::Result<Oid>::failure("oid.leading_zero_septet");
    }
    acc = (acc << 7) | (b & 0x7f);
    if (acc > 0xffffffffULL) {
      return util::Result<Oid>::failure("oid.arc_overflow");
    }
    in_arc = (b & 0x80) != 0;
    if (!in_arc) {
      if (arcs.empty()) {
        // First encoded value packs the first two arcs.
        if (acc < 40) {
          arcs.push_back(0);
          arcs.push_back(static_cast<std::uint32_t>(acc));
        } else if (acc < 80) {
          arcs.push_back(1);
          arcs.push_back(static_cast<std::uint32_t>(acc - 40));
        } else {
          arcs.push_back(2);
          arcs.push_back(static_cast<std::uint32_t>(acc - 80));
        }
      } else {
        arcs.push_back(static_cast<std::uint32_t>(acc));
      }
      acc = 0;
    }
  }
  if (in_arc) {
    return util::Result<Oid>::failure("oid.truncated_arc");
  }
  return Oid(std::move(arcs));
}

namespace oids {

// Each accessor owns a function-local static (thread-safe init, no global
// init-order hazards).
#define MUSTAPLE_DEFINE_OID(name, ...)      \
  const Oid& name() {                       \
    static const Oid oid{__VA_ARGS__};      \
    return oid;                             \
  }

MUSTAPLE_DEFINE_OID(tls_feature, 1, 3, 6, 1, 5, 5, 7, 1, 24)
MUSTAPLE_DEFINE_OID(authority_info_access, 1, 3, 6, 1, 5, 5, 7, 1, 1)
MUSTAPLE_DEFINE_OID(aia_ocsp, 1, 3, 6, 1, 5, 5, 7, 48, 1)
MUSTAPLE_DEFINE_OID(aia_ca_issuers, 1, 3, 6, 1, 5, 5, 7, 48, 2)
MUSTAPLE_DEFINE_OID(crl_distribution_points, 2, 5, 29, 31)
MUSTAPLE_DEFINE_OID(basic_constraints, 2, 5, 29, 19)
MUSTAPLE_DEFINE_OID(subject_alt_name, 2, 5, 29, 17)
MUSTAPLE_DEFINE_OID(key_usage, 2, 5, 29, 15)
MUSTAPLE_DEFINE_OID(crl_reason, 2, 5, 29, 21)
MUSTAPLE_DEFINE_OID(common_name, 2, 5, 4, 3)
MUSTAPLE_DEFINE_OID(organization, 2, 5, 4, 10)
MUSTAPLE_DEFINE_OID(country, 2, 5, 4, 6)
MUSTAPLE_DEFINE_OID(sha256_with_rsa, 1, 2, 840, 113549, 1, 1, 11)
MUSTAPLE_DEFINE_OID(sha256, 2, 16, 840, 1, 101, 3, 4, 2, 1)
MUSTAPLE_DEFINE_OID(sha1, 1, 3, 14, 3, 2, 26)
MUSTAPLE_DEFINE_OID(rsa_encryption, 1, 2, 840, 113549, 1, 1, 1)
MUSTAPLE_DEFINE_OID(ocsp_basic, 1, 3, 6, 1, 5, 5, 7, 48, 1, 1)
MUSTAPLE_DEFINE_OID(ocsp_nonce, 1, 3, 6, 1, 5, 5, 7, 48, 1, 2)
// 1.3.6.1.4.1.99999.1: private-enterprise arc used to tag simulation-grade
// keyed-hash signatures so they can never be confused with RSA.
MUSTAPLE_DEFINE_OID(sim_hash_sig, 1, 3, 6, 1, 4, 1, 99999, 1)

#undef MUSTAPLE_DEFINE_OID

}  // namespace oids

}  // namespace mustaple::asn1
