// DER (Distinguished Encoding Rules) writer and reader.
//
// This is the load-bearing substrate for the study: X.509 certificates, CRLs,
// and OCSP messages are all encoded/decoded through it, and the measurement
// client's "Malformed structure" classification (paper §5.3) is precisely a
// Reader failure on a responder's body.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "asn1/oid.hpp"
#include "util/bytes.hpp"
#include "util/bytes_view.hpp"
#include "util/result.hpp"
#include "util/sim_time.hpp"

namespace mustaple::asn1 {

/// Universal-class tags (complete set used by this library).
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kEnumerated = 0x0a,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Context-specific tag byte: [n] EXPLICIT/constructed (0xA0|n) or
/// IMPLICIT/primitive (0x80|n).
std::uint8_t context_tag(unsigned n, bool constructed);

/// Builds DER bottom-up. Nested structures are written through the
/// `sequence`/`explicit_context` callbacks, which encode children into a
/// scratch writer and emit a definite-length TLV.
class Writer {
 public:
  const util::Bytes& bytes() const { return out_; }
  util::Bytes take() { return std::move(out_); }

  void raw(const util::Bytes& der);  ///< splices pre-encoded DER
  void boolean(bool v);
  void integer(std::int64_t v);
  /// INTEGER from unsigned big-endian magnitude (adds a leading 0x00 when the
  /// high bit is set, strips redundant leading zeros). Used for serial
  /// numbers and RSA parameters.
  void integer_bytes(const util::Bytes& magnitude);
  void null();
  void oid(const Oid& oid);
  void octet_string(const util::Bytes& content);
  void bit_string(const util::Bytes& content, unsigned unused_bits = 0);
  void utf8_string(const std::string& text);
  void printable_string(const std::string& text);
  void ia5_string(const std::string& text);
  void generalized_time(util::SimTime t);
  void enumerated(std::int64_t v);

  /// SEQUENCE whose body is produced by `body`.
  void sequence(const std::function<void(Writer&)>& body);
  /// SET whose body is produced by `body` (caller is responsible for DER
  /// element ordering).
  void set(const std::function<void(Writer&)>& body);
  /// [n] EXPLICIT wrapping of `body`.
  void explicit_context(unsigned n, const std::function<void(Writer&)>& body);
  /// [n] IMPLICIT primitive with raw content octets.
  void implicit_context(unsigned n, const util::Bytes& content);

  /// Emits an arbitrary TLV (tag byte + definite length + content).
  void tlv(std::uint8_t tag, const util::Bytes& content);
  /// Zero-copy overload: splices a borrowed content view (e.g. re-wrapping
  /// a parsed TBS without materializing it first).
  void tlv(std::uint8_t tag, util::BytesView content);

 private:
  void length(std::size_t n);
  util::Bytes out_;
};

/// A decoded TLV: tag byte plus content octets.
struct Tlv {
  std::uint8_t tag = 0;
  util::Bytes content;

  bool is(Tag t) const { return tag == static_cast<std::uint8_t>(t); }
  bool is_context(unsigned n, bool constructed) const {
    return tag == context_tag(n, constructed);
  }
};

/// A decoded TLV whose content BORROWS from the Reader's buffer — the
/// zero-copy counterpart of Tlv. The view is valid only while the source
/// buffer lives (DESIGN.md §9); copy with to_tlv()/content.to_bytes() for
/// anything retained past the parse.
struct TlvView {
  std::uint8_t tag = 0;
  util::BytesView content;

  bool is(Tag t) const { return tag == static_cast<std::uint8_t>(t); }
  bool is_context(unsigned n, bool constructed) const {
    return tag == context_tag(n, constructed);
  }
  Tlv to_tlv() const { return Tlv{tag, content.to_bytes()}; }
};

/// Sequential DER reader over a byte buffer. All methods return Result so
/// malformed input is a classified outcome, never UB or an exception.
///
/// Two read families share one decoder:
///  - owning (`read_any`, `read_octet_string`, ...) copy content out —
///    unchanged legacy API;
///  - view (`read_any_view`, `read_octet_string_view`, ...) return borrows
///    into the Reader's buffer. The parse hot paths (certificates, OCSP,
///    CRLs) traverse via views so only retained fields allocate.
class Reader {
 public:
  explicit Reader(const util::Bytes& data)
      : base_(data.data()), end_(data.size()) {}
  Reader(const util::Bytes& data, std::size_t begin, std::size_t end)
      : base_(data.data()), pos_(begin), end_(end) {}
  /// Reads over a borrowed view (typically a TlvView's content). The view's
  /// source buffer must outlive the Reader.
  explicit Reader(util::BytesView view)
      : base_(view.data()), end_(view.size()) {}
  // The Reader references the buffer; binding a temporary would dangle.
  explicit Reader(util::Bytes&&) = delete;
  Reader(util::Bytes&&, std::size_t, std::size_t) = delete;

  bool at_end() const { return pos_ >= end_; }
  std::size_t remaining() const { return end_ - pos_; }

  /// Reads the next TLV of any tag.
  util::Result<Tlv> read_any();
  /// Zero-copy read: the returned view borrows from this Reader's buffer.
  util::Result<TlvView> read_any_view();
  /// Peeks the next tag byte without consuming (0 if at end/truncated).
  std::uint8_t peek_tag() const;

  /// Reads a TLV and checks its tag.
  util::Result<Tlv> expect(Tag tag);
  util::Result<Tlv> expect_context(unsigned n, bool constructed);
  util::Result<TlvView> expect_view(Tag tag);
  util::Result<TlvView> expect_context_view(unsigned n, bool constructed);

  // Typed readers (tag check + content decoding).
  util::Result<bool> read_boolean();
  util::Result<std::int64_t> read_integer();
  util::Result<util::Bytes> read_integer_bytes();  ///< unsigned magnitude
  util::Result<Oid> read_oid();
  util::Result<util::Bytes> read_octet_string();
  util::Result<util::Bytes> read_bit_string();  ///< content minus unused-bits byte
  util::Result<std::string> read_string();      ///< UTF8/Printable/IA5
  util::Result<util::SimTime> read_generalized_time();
  util::Result<std::int64_t> read_enumerated();

  // Zero-copy typed readers: same tag checks and error codes as the owning
  // versions, but the bytes stay in place.
  util::Result<util::BytesView> read_octet_string_view();
  util::Result<util::BytesView> read_bit_string_view();
  util::Result<util::BytesView> read_integer_bytes_view();  ///< unsigned magnitude

 private:
  const std::uint8_t* base_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

/// Opens a constructed TLV's content as a fresh Reader-friendly buffer.
inline Reader reader_over(const Tlv& tlv) {
  // NOTE: Tlv owns its content, so returning a Reader over it is safe as
  // long as the Tlv outlives the Reader — the universal usage pattern here.
  return Reader(tlv.content);
}

/// View counterpart: the Reader borrows from the view's source buffer.
inline Reader reader_over(const TlvView& tlv) { return Reader(tlv.content); }

}  // namespace mustaple::asn1
