// DER (Distinguished Encoding Rules) writer and reader.
//
// This is the load-bearing substrate for the study: X.509 certificates, CRLs,
// and OCSP messages are all encoded/decoded through it, and the measurement
// client's "Malformed structure" classification (paper §5.3) is precisely a
// Reader failure on a responder's body.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "asn1/oid.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sim_time.hpp"

namespace mustaple::asn1 {

/// Universal-class tags (complete set used by this library).
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kEnumerated = 0x0a,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Context-specific tag byte: [n] EXPLICIT/constructed (0xA0|n) or
/// IMPLICIT/primitive (0x80|n).
std::uint8_t context_tag(unsigned n, bool constructed);

/// Builds DER bottom-up. Nested structures are written through the
/// `sequence`/`explicit_context` callbacks, which encode children into a
/// scratch writer and emit a definite-length TLV.
class Writer {
 public:
  const util::Bytes& bytes() const { return out_; }
  util::Bytes take() { return std::move(out_); }

  void raw(const util::Bytes& der);  ///< splices pre-encoded DER
  void boolean(bool v);
  void integer(std::int64_t v);
  /// INTEGER from unsigned big-endian magnitude (adds a leading 0x00 when the
  /// high bit is set, strips redundant leading zeros). Used for serial
  /// numbers and RSA parameters.
  void integer_bytes(const util::Bytes& magnitude);
  void null();
  void oid(const Oid& oid);
  void octet_string(const util::Bytes& content);
  void bit_string(const util::Bytes& content, unsigned unused_bits = 0);
  void utf8_string(const std::string& text);
  void printable_string(const std::string& text);
  void ia5_string(const std::string& text);
  void generalized_time(util::SimTime t);
  void enumerated(std::int64_t v);

  /// SEQUENCE whose body is produced by `body`.
  void sequence(const std::function<void(Writer&)>& body);
  /// SET whose body is produced by `body` (caller is responsible for DER
  /// element ordering).
  void set(const std::function<void(Writer&)>& body);
  /// [n] EXPLICIT wrapping of `body`.
  void explicit_context(unsigned n, const std::function<void(Writer&)>& body);
  /// [n] IMPLICIT primitive with raw content octets.
  void implicit_context(unsigned n, const util::Bytes& content);

  /// Emits an arbitrary TLV (tag byte + definite length + content).
  void tlv(std::uint8_t tag, const util::Bytes& content);

 private:
  void length(std::size_t n);
  util::Bytes out_;
};

/// A decoded TLV: tag byte plus content octets.
struct Tlv {
  std::uint8_t tag = 0;
  util::Bytes content;

  bool is(Tag t) const { return tag == static_cast<std::uint8_t>(t); }
  bool is_context(unsigned n, bool constructed) const {
    return tag == context_tag(n, constructed);
  }
};

/// Sequential DER reader over a byte buffer. All methods return Result so
/// malformed input is a classified outcome, never UB or an exception.
class Reader {
 public:
  explicit Reader(const util::Bytes& data) : data_(&data) {}
  Reader(const util::Bytes& data, std::size_t begin, std::size_t end)
      : data_(&data), pos_(begin), end_(end) {}
  // The Reader references the buffer; binding a temporary would dangle.
  explicit Reader(util::Bytes&&) = delete;
  Reader(util::Bytes&&, std::size_t, std::size_t) = delete;

  bool at_end() const { return pos_ >= end(); }
  std::size_t remaining() const { return end() - pos_; }

  /// Reads the next TLV of any tag.
  util::Result<Tlv> read_any();
  /// Peeks the next tag byte without consuming (0 if at end/truncated).
  std::uint8_t peek_tag() const;

  /// Reads a TLV and checks its tag.
  util::Result<Tlv> expect(Tag tag);
  util::Result<Tlv> expect_context(unsigned n, bool constructed);

  // Typed readers (tag check + content decoding).
  util::Result<bool> read_boolean();
  util::Result<std::int64_t> read_integer();
  util::Result<util::Bytes> read_integer_bytes();  ///< unsigned magnitude
  util::Result<Oid> read_oid();
  util::Result<util::Bytes> read_octet_string();
  util::Result<util::Bytes> read_bit_string();  ///< content minus unused-bits byte
  util::Result<std::string> read_string();      ///< UTF8/Printable/IA5
  util::Result<util::SimTime> read_generalized_time();
  util::Result<std::int64_t> read_enumerated();

 private:
  const util::Bytes* data_;
  std::size_t pos_ = 0;
  std::optional<std::size_t> end_;

  std::size_t end() const { return end_.value_or(data_->size()); }
};

/// Opens a constructed TLV's content as a fresh Reader-friendly buffer.
/// (Content is copied; DER objects in this study are small.)
inline Reader reader_over(const Tlv& tlv) {
  // NOTE: Tlv owns its content, so returning a Reader over it is safe as
  // long as the Tlv outlives the Reader — the universal usage pattern here.
  return Reader(tlv.content);
}

}  // namespace mustaple::asn1
