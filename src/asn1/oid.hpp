// ASN.1 OBJECT IDENTIFIER, plus the registry of OIDs this study cares about —
// most importantly the OCSP Must-Staple (TLS Feature) extension,
// 1.3.6.1.5.5.7.1.24, whose deployment the paper measures.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/bytes_view.hpp"
#include "util/result.hpp"

namespace mustaple::asn1 {

/// An object identifier as a list of arcs, e.g. {1,3,6,1,5,5,7,1,24}.
class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  bool empty() const { return arcs_.empty(); }

  /// Dotted-decimal form, "1.3.6.1.5.5.7.1.24".
  std::string to_string() const;

  /// Parses dotted-decimal; returns an error for malformed text or fewer
  /// than two arcs.
  static util::Result<Oid> parse(const std::string& dotted);

  /// DER content octets (without the tag/length header).
  util::Bytes encode_content() const;

  /// Decodes DER content octets. The view overload is the implementation;
  /// the const-ref overload keeps temporaries (e.g. brace literals) legal —
  /// they live for the full call, unlike a view bound to an rvalue.
  static util::Result<Oid> decode_content(util::BytesView content);
  static util::Result<Oid> decode_content(const util::Bytes& content) {
    return decode_content(util::BytesView(content));
  }

  friend bool operator==(const Oid& a, const Oid& b) { return a.arcs_ == b.arcs_; }
  friend auto operator<=>(const Oid& a, const Oid& b) { return a.arcs_ <=> b.arcs_; }

 private:
  std::vector<std::uint32_t> arcs_;
};

/// Well-known OIDs used throughout the study.
namespace oids {
const Oid& tls_feature();            ///< 1.3.6.1.5.5.7.1.24 (OCSP Must-Staple)
const Oid& authority_info_access(); ///< 1.3.6.1.5.5.7.1.1 (AIA)
const Oid& aia_ocsp();               ///< 1.3.6.1.5.5.7.48.1 (id-ad-ocsp)
const Oid& aia_ca_issuers();         ///< 1.3.6.1.5.5.7.48.2
const Oid& crl_distribution_points(); ///< 2.5.29.31
const Oid& basic_constraints();      ///< 2.5.29.19
const Oid& subject_alt_name();       ///< 2.5.29.17
const Oid& key_usage();              ///< 2.5.29.15
const Oid& crl_reason();             ///< 2.5.29.21
const Oid& common_name();            ///< 2.5.4.3
const Oid& organization();           ///< 2.5.4.10
const Oid& country();                ///< 2.5.4.6
const Oid& sha256_with_rsa();        ///< 1.2.840.113549.1.1.11
const Oid& sha256();                 ///< 2.16.840.1.101.3.4.2.1
const Oid& sha1();                   ///< 1.3.14.3.2.26
const Oid& rsa_encryption();         ///< 1.2.840.113549.1.1.1
const Oid& ocsp_basic();             ///< 1.3.6.1.5.5.7.48.1.1
const Oid& ocsp_nonce();             ///< 1.3.6.1.5.5.7.48.1.2
const Oid& sim_hash_sig();           ///< private-arc OID for the simulation-grade signer
}  // namespace oids

}  // namespace mustaple::asn1
