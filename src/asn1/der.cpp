#include "asn1/der.hpp"

namespace mustaple::asn1 {

namespace {

using util::Bytes;
using util::Result;

template <typename T>
Result<T> fail(std::string code, std::string detail = {}) {
  return Result<T>::failure(std::move(code), std::move(detail));
}

}  // namespace

std::uint8_t context_tag(unsigned n, bool constructed) {
  return static_cast<std::uint8_t>(0x80u | (constructed ? 0x20u : 0x00u) |
                                   (n & 0x1fu));
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::length(std::size_t n) {
  if (n < 0x80) {
    out_.push_back(static_cast<std::uint8_t>(n));
    return;
  }
  std::uint8_t tmp[sizeof(std::size_t)];
  int count = 0;
  while (n != 0) {
    tmp[count++] = static_cast<std::uint8_t>(n & 0xff);
    n >>= 8;
  }
  out_.push_back(static_cast<std::uint8_t>(0x80 | count));
  for (int i = count - 1; i >= 0; --i) out_.push_back(tmp[i]);
}

void Writer::tlv(std::uint8_t tag, const Bytes& content) {
  tlv(tag, util::BytesView(content));
}

void Writer::tlv(std::uint8_t tag, util::BytesView content) {
  out_.push_back(tag);
  length(content.size());
  util::append(out_, content);
}

void Writer::raw(const Bytes& der) { util::append(out_, der); }

void Writer::boolean(bool v) {
  tlv(static_cast<std::uint8_t>(Tag::kBoolean), Bytes{v ? std::uint8_t{0xff} : std::uint8_t{0x00}});
}

void Writer::integer(std::int64_t v) {
  // Two's-complement big-endian, minimal length.
  Bytes content;
  bool more = true;
  while (more) {
    const auto byte = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;  // arithmetic shift keeps the sign
    more = !((v == 0 && (byte & 0x80) == 0) || (v == -1 && (byte & 0x80) != 0));
    content.insert(content.begin(), byte);
  }
  tlv(static_cast<std::uint8_t>(Tag::kInteger), content);
}

void Writer::integer_bytes(const Bytes& magnitude) {
  Bytes content = magnitude;
  // Strip redundant leading zeros.
  std::size_t i = 0;
  while (i + 1 < content.size() && content[i] == 0) ++i;
  content.erase(content.begin(),
                content.begin() + static_cast<std::ptrdiff_t>(i));
  if (content.empty()) content.push_back(0);
  // Non-negative: prepend 0x00 if the high bit would read as a sign.
  if (content[0] & 0x80) content.insert(content.begin(), 0x00);
  tlv(static_cast<std::uint8_t>(Tag::kInteger), content);
}

void Writer::null() {
  tlv(static_cast<std::uint8_t>(Tag::kNull), util::BytesView{});
}

void Writer::oid(const Oid& o) {
  tlv(static_cast<std::uint8_t>(Tag::kOid), o.encode_content());
}

void Writer::octet_string(const Bytes& content) {
  tlv(static_cast<std::uint8_t>(Tag::kOctetString), content);
}

void Writer::bit_string(const Bytes& content, unsigned unused_bits) {
  Bytes body;
  body.reserve(content.size() + 1);
  body.push_back(static_cast<std::uint8_t>(unused_bits & 0x07));
  util::append(body, content);
  tlv(static_cast<std::uint8_t>(Tag::kBitString), body);
}

void Writer::utf8_string(const std::string& text) {
  tlv(static_cast<std::uint8_t>(Tag::kUtf8String), util::bytes_of(text));
}

void Writer::printable_string(const std::string& text) {
  tlv(static_cast<std::uint8_t>(Tag::kPrintableString), util::bytes_of(text));
}

void Writer::ia5_string(const std::string& text) {
  tlv(static_cast<std::uint8_t>(Tag::kIa5String), util::bytes_of(text));
}

void Writer::generalized_time(util::SimTime t) {
  tlv(static_cast<std::uint8_t>(Tag::kGeneralizedTime),
      util::bytes_of(util::to_generalized_time(t)));
}

void Writer::enumerated(std::int64_t v) {
  Writer scratch;
  scratch.integer(v);
  Bytes encoded = scratch.take();
  encoded[0] = static_cast<std::uint8_t>(Tag::kEnumerated);
  raw(encoded);
}

void Writer::sequence(const std::function<void(Writer&)>& body) {
  Writer inner;
  body(inner);
  tlv(static_cast<std::uint8_t>(Tag::kSequence), inner.bytes());
}

void Writer::set(const std::function<void(Writer&)>& body) {
  Writer inner;
  body(inner);
  tlv(static_cast<std::uint8_t>(Tag::kSet), inner.bytes());
}

void Writer::explicit_context(unsigned n,
                              const std::function<void(Writer&)>& body) {
  Writer inner;
  body(inner);
  tlv(context_tag(n, /*constructed=*/true), inner.bytes());
}

void Writer::implicit_context(unsigned n, const Bytes& content) {
  tlv(context_tag(n, /*constructed=*/false), content);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

std::uint8_t Reader::peek_tag() const {
  if (pos_ >= end_) return 0;
  return base_[pos_];
}

Result<TlvView> Reader::read_any_view() {
  const std::size_t limit = end_;
  if (pos_ >= limit) return fail<TlvView>("asn1.truncated", "no TLV header");
  TlvView out;
  out.tag = base_[pos_++];
  if (pos_ >= limit) return fail<TlvView>("asn1.truncated", "no length octet");
  std::size_t len = base_[pos_++];
  if (len == 0x80) {
    return fail<TlvView>("asn1.indefinite_length",
                         "indefinite length is not DER");
  }
  if (len & 0x80) {
    const std::size_t n_octets = len & 0x7f;
    if (n_octets > sizeof(std::size_t)) {
      return fail<TlvView>("asn1.bad_length", "length of length too large");
    }
    if (pos_ + n_octets > limit) {
      return fail<TlvView>("asn1.truncated", "length octets run past end");
    }
    if (base_[pos_] == 0) {
      // DER requires the minimal number of length octets; a leading zero
      // octet means a shorter long form (or the short form) would have done.
      return fail<TlvView>("asn1.non_minimal_length",
                           "leading zero in long-form length");
    }
    len = 0;
    for (std::size_t i = 0; i < n_octets; ++i) {
      len = (len << 8) | base_[pos_++];
    }
    if (len < 0x80) {
      return fail<TlvView>("asn1.non_minimal_length",
                           "long form for short length");
    }
  }
  if (len > limit - pos_) {
    return fail<TlvView>("asn1.truncated", "content runs past end");
  }
  out.content = util::BytesView(base_ + pos_, len);
  pos_ += len;
  return out;
}

Result<Tlv> Reader::read_any() {
  auto view = read_any_view();
  if (!view.ok()) return fail<Tlv>(view.error().code, view.error().detail);
  return view.value().to_tlv();
}

Result<Tlv> Reader::expect(Tag tag) {
  auto tlv = expect_view(tag);
  if (!tlv.ok()) return fail<Tlv>(tlv.error().code, tlv.error().detail);
  return tlv.value().to_tlv();
}

Result<Tlv> Reader::expect_context(unsigned n, bool constructed) {
  auto tlv = expect_context_view(n, constructed);
  if (!tlv.ok()) return fail<Tlv>(tlv.error().code, tlv.error().detail);
  return tlv.value().to_tlv();
}

Result<TlvView> Reader::expect_view(Tag tag) {
  auto tlv = read_any_view();
  if (!tlv.ok()) return tlv;
  if (!tlv.value().is(tag)) {
    return fail<TlvView>("asn1.unexpected_tag",
                         "got 0x" + std::to_string(tlv.value().tag));
  }
  return tlv;
}

Result<TlvView> Reader::expect_context_view(unsigned n, bool constructed) {
  auto tlv = read_any_view();
  if (!tlv.ok()) return tlv;
  if (!tlv.value().is_context(n, constructed)) {
    return fail<TlvView>("asn1.unexpected_tag", "expected context tag");
  }
  return tlv;
}

Result<bool> Reader::read_boolean() {
  auto tlv = expect_view(Tag::kBoolean);
  if (!tlv.ok()) return fail<bool>(tlv.error().code, tlv.error().detail);
  if (tlv.value().content.size() != 1) {
    return fail<bool>("asn1.bad_boolean", "boolean must be one octet");
  }
  return tlv.value().content[0] != 0;
}

Result<std::int64_t> Reader::read_integer() {
  auto tlv = expect_view(Tag::kInteger);
  if (!tlv.ok()) return fail<std::int64_t>(tlv.error().code, tlv.error().detail);
  const util::BytesView c = tlv.value().content;
  if (c.empty()) return fail<std::int64_t>("asn1.bad_integer", "empty integer");
  if (c.size() > 8) {
    return fail<std::int64_t>("asn1.integer_overflow", "wider than int64");
  }
  std::int64_t v = (c[0] & 0x80) ? -1 : 0;
  for (std::uint8_t byte : c) v = (v << 8) | byte;
  return v;
}

Result<util::BytesView> Reader::read_integer_bytes_view() {
  auto tlv = expect_view(Tag::kInteger);
  if (!tlv.ok()) {
    return fail<util::BytesView>(tlv.error().code, tlv.error().detail);
  }
  util::BytesView c = tlv.value().content;
  if (c.empty()) return fail<util::BytesView>("asn1.bad_integer", "empty integer");
  if (c[0] & 0x80) {
    return fail<util::BytesView>("asn1.negative_integer",
                                 "expected non-negative");
  }
  // A single 0x00 pad octet marks a magnitude with the high bit set.
  if (c.size() > 1 && c[0] == 0x00) c = c.drop_front(1);
  return c;
}

Result<Bytes> Reader::read_integer_bytes() {
  auto view = read_integer_bytes_view();
  if (!view.ok()) return fail<Bytes>(view.error().code, view.error().detail);
  return view.value().to_bytes();
}

Result<Oid> Reader::read_oid() {
  auto tlv = expect_view(Tag::kOid);
  if (!tlv.ok()) return fail<Oid>(tlv.error().code, tlv.error().detail);
  return Oid::decode_content(tlv.value().content);
}

Result<util::BytesView> Reader::read_octet_string_view() {
  auto tlv = expect_view(Tag::kOctetString);
  if (!tlv.ok()) {
    return fail<util::BytesView>(tlv.error().code, tlv.error().detail);
  }
  return tlv.value().content;
}

Result<Bytes> Reader::read_octet_string() {
  auto view = read_octet_string_view();
  if (!view.ok()) return fail<Bytes>(view.error().code, view.error().detail);
  return view.value().to_bytes();
}

Result<util::BytesView> Reader::read_bit_string_view() {
  auto tlv = expect_view(Tag::kBitString);
  if (!tlv.ok()) {
    return fail<util::BytesView>(tlv.error().code, tlv.error().detail);
  }
  const util::BytesView c = tlv.value().content;
  if (c.empty()) {
    return fail<util::BytesView>("asn1.bad_bit_string", "missing unused-bits");
  }
  if (c[0] > 7) {
    return fail<util::BytesView>("asn1.bad_bit_string", "unused bits > 7");
  }
  return c.drop_front(1);
}

Result<Bytes> Reader::read_bit_string() {
  auto view = read_bit_string_view();
  if (!view.ok()) return fail<Bytes>(view.error().code, view.error().detail);
  return view.value().to_bytes();
}

Result<std::string> Reader::read_string() {
  auto tlv = read_any_view();
  if (!tlv.ok()) return fail<std::string>(tlv.error().code, tlv.error().detail);
  if (!tlv.value().is(Tag::kUtf8String) &&
      !tlv.value().is(Tag::kPrintableString) &&
      !tlv.value().is(Tag::kIa5String)) {
    return fail<std::string>("asn1.unexpected_tag", "expected a string type");
  }
  return util::text_of(tlv.value().content);
}

Result<util::SimTime> Reader::read_generalized_time() {
  auto tlv = expect_view(Tag::kGeneralizedTime);
  if (!tlv.ok()) {
    return fail<util::SimTime>(tlv.error().code, tlv.error().detail);
  }
  try {
    return util::from_generalized_time(util::text_of(tlv.value().content));
  } catch (const std::invalid_argument& e) {
    return fail<util::SimTime>("asn1.bad_time", e.what());
  }
}

Result<std::int64_t> Reader::read_enumerated() {
  auto tlv = expect_view(Tag::kEnumerated);
  if (!tlv.ok()) return fail<std::int64_t>(tlv.error().code, tlv.error().detail);
  const util::BytesView c = tlv.value().content;
  if (c.empty() || c.size() > 8) {
    return fail<std::int64_t>("asn1.bad_enumerated", "bad width");
  }
  std::int64_t v = (c[0] & 0x80) ? -1 : 0;
  for (std::uint8_t byte : c) v = (v << 8) | byte;
  return v;
}

}  // namespace mustaple::asn1
