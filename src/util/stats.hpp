// Small statistics toolkit used by the analysis layer: online summary stats,
// empirical CDFs (the paper's favourite presentation), and time-binned series.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mustaple::util {

/// Welford-style online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical CDF over a finite sample. Supports +infinity samples (the paper
/// treats blank nextUpdate as an infinite validity period).
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_infinite() { add(std::numeric_limits<double>::infinity()); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x. Sorts lazily.
  double fraction_at_most(double x) const;

  /// Smallest sample value v with fraction_at_most(v) >= q, for q in (0,1].
  /// Returns +inf if the quantile falls in the infinite mass.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  /// Fraction of samples that are +infinity.
  double infinite_fraction() const;

  /// Sorted finite samples (for plotting). Infinite samples are excluded.
  std::vector<double> sorted_finite() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// A labelled (x, y) series, e.g. success rate per simulated hour.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
};

/// Counts per fixed-width bin over a range of x (e.g. Alexa rank bins of
/// 10,000). Tracks numerator/denominator so callers get percentages.
class BinnedRatio {
 public:
  BinnedRatio(double x_min, double x_max, std::size_t bins);

  void add(double x, bool hit);
  std::size_t bins() const { return hits_.size(); }
  double bin_center(std::size_t i) const;
  /// Percentage (0..100) of hits in bin i; 0 when the bin is empty.
  double percentage(std::size_t i) const;
  std::size_t total(std::size_t i) const { return totals_[i]; }

 private:
  double x_min_;
  double width_;
  std::vector<std::size_t> hits_;
  std::vector<std::size_t> totals_;
};

}  // namespace mustaple::util
