// Minimal Result<T> for recoverable errors (parse failures, protocol errors).
// Exceptions remain for programming errors and constructor failures, per the
// Core Guidelines; Result is used where a failure is an expected outcome the
// measurement code must classify rather than abort on.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mustaple::util {

/// Error payload: a machine-readable code plus human-readable detail.
struct Error {
  std::string code;    ///< stable identifier, e.g. "asn1.bad_length"
  std::string detail;  ///< free-form context for diagnostics

  std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }
};

/// A value-or-error holder. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string code, std::string detail = {}) {
    return Result(Error{std::move(code), std::move(detail)});
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(storage_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(storage_);
  }
  T&& take() && {
    require_ok();
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on success");
    return std::get<Error>(storage_);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Error>(storage_).to_string());
    }
  }

  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status success() { return Status(); }
  static Status failure(std::string code, std::string detail = {}) {
    return Status(Error{std::move(code), std::move(detail)});
  }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() called on success");
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace mustaple::util
