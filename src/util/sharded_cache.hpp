// Lock-striped hash cache for the scanner's parallel fan-out.
//
// One global mutex around a cache turns the probe fan-out into a convoy at
// higher thread counts: every worker serializes on the same lock even though
// nearly all lookups touch distinct keys. ShardedCache splits the key space
// over a power-of-two number of independently locked shards (shard = key &
// mask — keys here are already splitmix64-mixed, see util/hash.hpp, so the
// low bits are well distributed). Workers contend only when they land on the
// same shard.
//
// Semantics match the single-map caches it replaces:
//  - values are copied out on hit (entries stay verifiable: the caller
//    re-checks body size/SHA-256 and counts a mismatch via note_collision);
//  - each shard clears itself when it grows past capacity/shard_count,
//    preserving the old clear-on-limit bound;
//  - the cache only avoids recomputation of pure functions, so sharding can
//    never change campaign outputs (DESIGN.md "Deterministic parallel scan
//    campaigns").
//
// Stats discipline: every lookup() increments exactly one of hits/misses,
// so for each shard — and for any sum over shards — hits + misses ==
// lookups. That conservation law is thread-count-invariant (asserted in
// tests) even though the individual hit/miss split is not: two workers can
// both miss the same key before either inserts.
// Allocation accounting: an optional AllocCounter charges every map-node
// allocation (and credits every free, including clear-on-limit resets), so
// campaigns can report bytes-outstanding per cache via the obs resource
// pillar. Payload-internal buffers (a Value's own heap) are not traversed —
// the counter tracks the cache structure itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/alloc.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::util {

/// Per-shard (and aggregated) counters. All monotone except `size`.
struct ShardedCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t collisions = 0;  ///< caller-reported key collisions
  std::uint64_t clears = 0;      ///< capacity-triggered shard resets
  std::size_t size = 0;          ///< current entry count (snapshot)
};

template <typename Value>
class ShardedCache {
 public:
  /// `shard_count` is rounded up to a power of two (minimum 1). `capacity`
  /// bounds the TOTAL entry count: each shard clears itself upon exceeding
  /// capacity / shard_count entries. `counter`, when given, is charged for
  /// every node the shard maps allocate (must outlive the cache; the
  /// process-lifetime cells from util::alloc_counter qualify).
  explicit ShardedCache(std::size_t shard_count, std::size_t capacity,
                        AllocCounter* counter = nullptr)
      : mask_(round_up_pow2(shard_count) - 1),
        shard_capacity_(capacity / (mask_ + 1)) {
    if (shard_capacity_ == 0) shard_capacity_ = 1;
    shards_.reserve(mask_ + 1);
    for (std::size_t i = 0; i <= mask_; ++i) {
      shards_.push_back(std::make_unique<Shard>(counter));
    }
  }

  std::size_t shard_count() const { return mask_ + 1; }

  /// Returns a copy of the cached value, or nullopt on miss. Counts exactly
  /// one of hits/misses.
  std::optional<Value> lookup(std::uint64_t key) {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mu);
    ++shard.stats.lookups;
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    ++shard.stats.hits;
    return it->second;
  }

  /// Inserts (or overwrites) `key`. Clears the owning shard first when it is
  /// at capacity, preserving the legacy clear-on-limit bound.
  void insert(std::uint64_t key, Value value) {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mu);
    if (shard.map.size() >= shard_capacity_ &&
        shard.map.find(key) == shard.map.end()) {
      shard.map.clear();
      ++shard.stats.clears;
    }
    shard.map.insert_or_assign(key, std::move(value));
    ++shard.stats.insertions;
  }

  /// Records that a hit's entry failed the caller's identity check (64-bit
  /// key collision); the caller then recomputes as if it had missed.
  void note_collision(std::uint64_t key) {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mu);
    ++shard.stats.collisions;
  }

  /// Snapshot of one shard's counters (shard < shard_count()).
  ShardedCacheStats shard_stats(std::size_t shard) const {
    Shard& s = *shards_[shard & mask_];
    MutexLock lock(s.mu);
    ShardedCacheStats out = s.stats;
    out.size = s.map.size();
    return out;
  }

  /// Sum of all shards' counters. Conservation (hits + misses == lookups)
  /// holds on the total because it holds per shard.
  ShardedCacheStats totals() const {
    ShardedCacheStats out;
    for (std::size_t i = 0; i <= mask_; ++i) {
      const ShardedCacheStats s = shard_stats(i);
      out.lookups += s.lookups;
      out.hits += s.hits;
      out.misses += s.misses;
      out.insertions += s.insertions;
      out.collisions += s.collisions;
      out.clears += s.clears;
      out.size += s.size;
    }
    return out;
  }

  std::size_t size() const { return totals().size; }

 private:
  using MapAllocator =
      CountingAllocator<std::pair<const std::uint64_t, Value>>;
  using Map =
      std::unordered_map<std::uint64_t, Value, std::hash<std::uint64_t>,
                         std::equal_to<std::uint64_t>, MapAllocator>;

  // Individually heap-allocated (shards hold a mutex, so they cannot live
  // in a resizable vector directly) and cache-line aligned so adjacent
  // shards' mutexes do not false-share.
  struct alignas(64) Shard {
    explicit Shard(AllocCounter* counter)
        : map(/*bucket_count=*/0, typename Map::hasher(),
              typename Map::key_equal(), MapAllocator(counter)) {}
    mutable Mutex mu;
    Map map MUSTAPLE_GUARDED_BY(mu);
    ShardedCacheStats stats MUSTAPLE_GUARDED_BY(mu);
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n && p < (std::size_t{1} << 20)) p <<= 1;
    return p;
  }

  Shard& shard_for(std::uint64_t key) { return *shards_[key & mask_]; }

  std::size_t mask_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mustaple::util
