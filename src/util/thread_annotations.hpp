// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These drive clang's `-Wthread-safety` compile-time lock-discipline
// checker (enabled as -Werror in the clang-thread-safety CI job; see
// docs/STATIC_ANALYSIS.md). Annotate shared fields with
// MUSTAPLE_GUARDED_BY(mu_) and private helpers that expect the lock held
// with MUSTAPLE_REQUIRES(mu_); the analysis then proves every access site
// holds the right capability, over all code paths, at compile time.
//
// The macros follow the stock abseil/LLVM naming so the semantics are the
// documented upstream ones:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// GCC (the local toolchain) does not implement these attributes, so they
// expand to nothing there — the annotations are free on every non-clang
// build.
#pragma once

#if defined(__clang__)
#define MUSTAPLE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MUSTAPLE_THREAD_ANNOTATION(x)  // no-op
#endif

// Type attribute: this class is a lockable capability ("mutex").
#define MUSTAPLE_CAPABILITY(x) MUSTAPLE_THREAD_ANNOTATION(capability(x))

// Type attribute: RAII object that acquires in ctor / releases in dtor.
#define MUSTAPLE_SCOPED_CAPABILITY MUSTAPLE_THREAD_ANNOTATION(scoped_lockable)

// Field attribute: reads/writes require holding `x`.
#define MUSTAPLE_GUARDED_BY(x) MUSTAPLE_THREAD_ANNOTATION(guarded_by(x))

// Field attribute: the pointed-to data requires holding `x` (the pointer
// itself may be read freely).
#define MUSTAPLE_PT_GUARDED_BY(x) MUSTAPLE_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attribute: caller must already hold the capability/ies.
#define MUSTAPLE_REQUIRES(...) \
  MUSTAPLE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function attribute: acquires the capability/ies (not held on entry).
#define MUSTAPLE_ACQUIRE(...) \
  MUSTAPLE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function attribute: releases the capability/ies (held on entry).
#define MUSTAPLE_RELEASE(...) \
  MUSTAPLE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function attribute: acquires iff the return value equals the first arg.
#define MUSTAPLE_TRY_ACQUIRE(...) \
  MUSTAPLE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function attribute: caller must NOT hold the capability/ies (deadlock
// guard for non-reentrant locks).
#define MUSTAPLE_EXCLUDES(...) \
  MUSTAPLE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function attribute: the returned reference is the given capability.
#define MUSTAPLE_RETURN_CAPABILITY(x) \
  MUSTAPLE_THREAD_ANNOTATION(lock_returned(x))

// Function attribute: opt this function out of the analysis. Reserved for
// (a) documented quiesced-reader accessors whose safety precondition —
// "all writers joined/stopped" — is temporal, not lock-shaped, and
// (b) lock-juggling internals (condition-variable adopt/release dances)
// the analysis cannot follow. Every use carries a comment saying why.
#define MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS \
  MUSTAPLE_THREAD_ANNOTATION(no_thread_safety_analysis)
