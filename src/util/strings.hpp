// String helpers used across HTTP parsing, DNS names, and report rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace mustaple::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// RFC 3986 percent-decoding with strict escape validation: every '%' must
/// be followed by exactly two hex digits ("%GZ" and a truncated "%A" both
/// fail with "strings.bad_percent_escape"). All other bytes — including '+',
/// which is NOT form-decoded to a space in a URL path — pass through
/// unchanged, and decoded bytes may be anything, NUL included ("%00" decodes
/// to a NUL byte; whether that byte is acceptable is the caller's problem).
Result<std::string> percent_decode(std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mustaple::util
