#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace mustaple::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, to mix a child-stream name into the parent seed.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) const {
  // Mix current state and label into a fresh seed; does not advance *this.
  std::uint64_t mixed = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3];
  return Rng(mixed ^ hash_label(label));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniform01();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

double Rng::normal_approx(double mean, double stddev) {
  // Sum of 4 uniforms has mean 2, variance 4/12; rescale.
  double s = uniform01() + uniform01() + uniform01() + uniform01();
  return mean + (s - 2.0) * stddev * 1.7320508075688772;  // sqrt(12/4)
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: zero total");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::fill(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t r = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(r >> (8 * b));
  }
  if (i < n) {
    std::uint64_t r = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(r);
      r >>= 8;
    }
  }
}

}  // namespace mustaple::util
