#include "util/base64.hpp"

#include <array>

namespace mustaple::util {

namespace {

constexpr char kStandard[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kUrlSafe[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string encode_with(const Bytes& data, const char* alphabet, bool pad) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    out.push_back(alphabet[(v >> 6) & 0x3f]);
    out.push_back(alphabet[v & 0x3f]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    if (pad) {
      out.push_back('=');
      out.push_back('=');
    }
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(alphabet[(v >> 18) & 0x3f]);
    out.push_back(alphabet[(v >> 12) & 0x3f]);
    out.push_back(alphabet[(v >> 6) & 0x3f]);
    if (pad) out.push_back('=');
  }
  return out;
}

std::array<std::int8_t, 256> make_table(const char* alphabet) {
  std::array<std::int8_t, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<std::size_t>(
        static_cast<unsigned char>(alphabet[i]))] = static_cast<std::int8_t>(i);
  }
  return table;
}

Result<Bytes> decode_with(const std::string& text,
                          const std::array<std::int8_t, 256>& table) {
  using R = Result<Bytes>;
  // Strip padding.
  std::size_t length = text.size();
  while (length > 0 && text[length - 1] == '=') --length;
  if (length % 4 == 1) return R::failure("base64.bad_length");

  Bytes out;
  out.reserve(length / 4 * 3 + 2);
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::size_t i = 0; i < length; ++i) {
    const std::int8_t v =
        table[static_cast<std::size_t>(static_cast<unsigned char>(text[i]))];
    if (v < 0) return R::failure("base64.bad_character", std::string(1, text[i]));
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(acc >> bits));
    }
  }
  // Leftover bits must be zero (canonical encoding).
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    return R::failure("base64.nonzero_trailing_bits");
  }
  return out;
}

}  // namespace

std::string base64_encode(const Bytes& data) {
  return encode_with(data, kStandard, /*pad=*/true);
}

Result<Bytes> base64_decode(const std::string& text) {
  static const auto table = make_table(kStandard);
  return decode_with(text, table);
}

std::string base64url_encode(const Bytes& data) {
  return encode_with(data, kUrlSafe, /*pad=*/false);
}

Result<Bytes> base64url_decode(const std::string& text) {
  static const auto table = make_table(kUrlSafe);
  return decode_with(text, table);
}

}  // namespace mustaple::util
