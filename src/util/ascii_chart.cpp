#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace mustaple::util {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

std::string fmt_num(double v) {
  char buf[32];
  if (std::abs(v) >= 100000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buf, sizeof(buf), "%.2e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opt) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    if (s.x.size() != s.y.size()) continue;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double xv = s.x[i];
      if (opt.log_x) {
        if (xv <= 0) continue;
        xv = std::log10(xv);
      }
      if (!std::isfinite(xv) || !std::isfinite(s.y[i])) continue;
      x_min = std::min(x_min, xv);
      x_max = std::max(x_max, xv);
      y_min = std::min(y_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
      any = true;
    }
  }
  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << "\n";
  if (!any) {
    out << "(no data)\n";
    return out.str();
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  const int w = std::max(opt.width, 10);
  const int h = std::max(opt.height, 4);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    if (s.x.size() != s.y.size()) continue;
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double xv = s.x[i];
      if (opt.log_x) {
        if (xv <= 0) continue;
        xv = std::log10(xv);
      }
      if (!std::isfinite(xv) || !std::isfinite(s.y[i])) continue;
      int col = static_cast<int>(std::lround((xv - x_min) / (x_max - x_min) *
                                             (w - 1)));
      int row = static_cast<int>(std::lround((s.y[i] - y_min) /
                                             (y_max - y_min) * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  const std::string y_hi = fmt_num(y_max);
  const std::string y_lo = fmt_num(y_min);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size()) + 1;
  for (int r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = y_hi + std::string(margin - y_hi.size(), ' ');
    if (r == h - 1) label = y_lo + std::string(margin - y_lo.size(), ' ');
    out << label << "|" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << std::string(margin, ' ') << "+" << std::string(static_cast<std::size_t>(w), '-')
      << "\n";
  const std::string x_lo = opt.log_x ? ("10^" + fmt_num(x_min)) : fmt_num(x_min);
  const std::string x_hi = opt.log_x ? ("10^" + fmt_num(x_max)) : fmt_num(x_max);
  out << std::string(margin + 1, ' ') << x_lo
      << std::string(
             std::max<std::size_t>(
                 1, static_cast<std::size_t>(w) - x_lo.size() - x_hi.size()),
             ' ')
      << x_hi << "\n";
  if (!opt.x_label.empty() || !opt.y_label.empty()) {
    out << std::string(margin + 1, ' ') << "x: " << opt.x_label
        << "   y: " << opt.y_label << "\n";
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].label
        << "\n";
  }
  return out.str();
}

std::string render_cdf(const Cdf& cdf, const ChartOptions& options) {
  Series s;
  s.label = "CDF";
  const auto values = cdf.sorted_finite();
  const auto n = static_cast<double>(cdf.count());
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.add(values[i], static_cast<double>(i + 1) / n);
  }
  std::string body = render_chart({s}, options);
  if (cdf.infinite_fraction() > 0.0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  (plus %.1f%% of mass at +infinity, not plotted)\n",
                  cdf.infinite_fraction() * 100.0);
    body += buf;
  }
  return body;
}

std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < headers.size() && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < headers.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < headers.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + line(headers) + sep;
  for (const auto& row : rows) out += line(row);
  out += sep;
  return out;
}

std::string sparkline(const std::vector<double>& values, double lo,
                      double hi) {
  if (values.empty()) return "";
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (lo > hi) {
    lo = values.front();
    hi = values.front();
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double span = hi - lo;
  std::string out;
  for (double v : values) {
    int level = 3;  // flat series: mid-height
    if (span > 0.0) {
      level = static_cast<int>((v - lo) / span * 7.0 + 0.5);
      level = std::max(0, std::min(7, level));
    }
    out += kBlocks[level];
  }
  return out;
}

}  // namespace mustaple::util
