// A small persistent worker pool for barrier-style index fan-out. The
// hourly scanner's per-step probe fan-out runs thousands of independent
// probes per simulated step across hundreds-to-thousands of steps; spawning
// threads per step would dominate small steps, so the pool keeps its
// workers parked on a condition variable between jobs.
//
// Scheduling is dynamic (workers grab contiguous index chunks from an
// atomic cursor), which means WHICH thread runs a given index is
// nondeterministic — callers that need deterministic output must make the
// per-index work free of order-dependent side effects and do any
// order-sensitive accumulation after parallel_for_index returns (see
// DESIGN.md "Deterministic parallel scan campaigns").
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mustaple::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller's thread participates in
  /// every job, so `threads` is total parallelism. threads <= 1 spawns
  /// nothing and parallel_for_index degrades to a plain loop.
  explicit ThreadPool(std::size_t threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, count) and returns when all calls have
  /// completed (a barrier). The first exception thrown by fn is rethrown on
  /// the calling thread after the barrier; remaining indices of the chunk
  /// that threw are skipped, other chunks still run.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn);

  /// Suggested pool width: the MUSTAPLE_SCAN_THREADS environment variable
  /// when set to a positive integer, otherwise `fallback`.
  static std::size_t env_threads(std::size_t fallback = 1);

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  const std::function<void(std::size_t)>* job_ MUSTAPLE_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_count_ MUSTAPLE_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ MUSTAPLE_GUARDED_BY(mutex_) = 0;
  std::size_t workers_running_ MUSTAPLE_GUARDED_BY(mutex_) = 0;
  bool shutdown_ MUSTAPLE_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ MUSTAPLE_GUARDED_BY(mutex_);

  std::atomic<std::size_t> cursor_{0};
};

}  // namespace mustaple::util
