#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mustaple::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace mustaple::util
