#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mustaple::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<std::string> percent_decode(std::string_view text) {
  using R = Result<std::string>;
  const auto hex_nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) {  // fewer than two chars remain after '%'
      return R::failure("strings.bad_percent_escape",
                        "truncated escape at offset " + std::to_string(i));
    }
    const int hi = hex_nibble(text[i + 1]);
    const int lo = hex_nibble(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return R::failure("strings.bad_percent_escape",
                        std::string(text.substr(i, 3)));
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace mustaple::util
