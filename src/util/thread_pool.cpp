#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

namespace mustaple::util {

namespace {
// Chunked index claiming: large enough to amortize the atomic, small enough
// to balance uneven per-index cost (e.g. cache-miss probes that re-verify).
constexpr std::size_t kChunk = 16;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_chunks() {
  const std::function<void(std::size_t)>* job;
  std::size_t count;
  {
    MutexLock lock(mutex_);
    job = job_;
    count = job_count_;
  }
  for (;;) {
    const std::size_t begin = cursor_.fetch_add(kChunk);
    if (begin >= count) return;
    const std::size_t end = begin + kChunk < count ? begin + kChunk : count;
    try {
      for (std::size_t i = begin; i < end; ++i) (*job)(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop (not a lambda) so the guarded reads stay
      // visible to the thread-safety analysis.
      while (!(shutdown_ || generation_ != seen_generation)) {
        start_cv_.wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_chunks();
    {
      MutexLock lock(mutex_);
      --workers_running_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_running_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunks();  // the calling thread participates
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (workers_running_ != 0) done_cv_.wait(mutex_);
    job_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::env_threads(std::size_t fallback) {
  const char* env = std::getenv("MUSTAPLE_SCAN_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 1) return fallback;
  return static_cast<std::size_t>(parsed);
}

}  // namespace mustaple::util
