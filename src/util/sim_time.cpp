#include "util/sim_time.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace mustaple::util {

namespace {

bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

// Days from 1970-01-01 to year-month-day (civil), via the classic
// days-from-civil algorithm (Howard Hinnant's formulation).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

SimTime from_civil(const CivilTime& c) {
  if (c.month < 1 || c.month > 12 || c.day < 1 ||
      c.day > days_in_month(c.year, c.month) || c.hour < 0 || c.hour > 23 ||
      c.minute < 0 || c.minute > 59 || c.second < 0 || c.second > 60) {
    throw std::invalid_argument("from_civil: field out of range");
  }
  const std::int64_t days = days_from_civil(c.year, c.month, c.day);
  return SimTime{days * 86400 + c.hour * 3600 + c.minute * 60 + c.second};
}

SimTime make_time(int year, int month, int day, int hour, int minute,
                  int second) {
  return from_civil(CivilTime{year, month, day, hour, minute, second});
}

CivilTime to_civil(SimTime t) {
  std::int64_t days = t.unix_seconds / 86400;
  std::int64_t rem = t.unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  CivilTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem % 3600) / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::string format_time(SimTime t) {
  const CivilTime c = to_civil(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string to_generalized_time(SimTime t) {
  const CivilTime c = to_civil(t);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02dZ", c.year, c.month,
                c.day, c.hour, c.minute, c.second);
  return buf;
}

SimTime from_generalized_time(const std::string& text) {
  if (text.size() != 15 || text.back() != 'Z') {
    throw std::invalid_argument("from_generalized_time: bad shape: " + text);
  }
  for (std::size_t i = 0; i < 14; ++i) {
    if (text[i] < '0' || text[i] > '9') {
      throw std::invalid_argument("from_generalized_time: non-digit");
    }
  }
  auto num = [&](std::size_t pos, std::size_t len) {
    int v = 0;
    for (std::size_t i = 0; i < len; ++i) v = v * 10 + (text[pos + i] - '0');
    return v;
  };
  return from_civil(CivilTime{num(0, 4), num(4, 2), num(6, 2), num(8, 2),
                              num(10, 2), num(12, 2)});
}

}  // namespace mustaple::util
