// Byte-buffer helpers shared by every wire-format module.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mustaple::util {

/// The library-wide owning byte buffer. DER objects, OCSP bodies, HTTP
/// payloads, and signatures are all carried as `Bytes`.
using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hex ("deadbeef").
std::string to_hex(const Bytes& data);

/// Decodes a hex string (case-insensitive, no separators). Throws
/// std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes into a buffer (no NUL terminator).
Bytes bytes_of(std::string_view text);

/// Interprets a buffer as text (lossy for non-ASCII payloads; intended for
/// diagnostics and for HTTP bodies known to be textual).
std::string text_of(const Bytes& data);

/// Appends `src` to `dst`.
void append(Bytes& dst, const Bytes& src);

/// Constant-time equality; used for signature/MAC comparison so simulated
/// verification mirrors real-world practice.
bool equal_constant_time(const Bytes& a, const Bytes& b);

}  // namespace mustaple::util
