// Annotated mutex primitives for clang thread-safety analysis.
//
// util::Mutex / util::MutexLock / util::CondVar wrap their std::
// counterparts with the capability attributes from thread_annotations.hpp
// so that `-Wthread-safety` can prove lock discipline at compile time.
// Every std::mutex in src/ lives behind these wrappers (machine-checked
// by tools/srclint rule sl_raw_std_mutex); on GCC they compile to the
// plain std types with zero overhead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mustaple::util {

// A std::mutex carrying the clang "capability" attribute so fields can be
// declared MUSTAPLE_GUARDED_BY(mu_) and functions MUSTAPLE_REQUIRES(mu_).
class MUSTAPLE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MUSTAPLE_ACQUIRE() { mu_.lock(); }
  void unlock() MUSTAPLE_RELEASE() { mu_.unlock(); }
  bool try_lock() MUSTAPLE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for APIs that need the underlying std::mutex (condition
  // variables). Callers are responsible for keeping the lock state the
  // analysis believes in sync with reality — see CondVar below.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock holder, understood by the analysis as a scoped capability:
// constructing one acquires the mutex, destruction releases it.
class MUSTAPLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MUSTAPLE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MUSTAPLE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with util::Mutex. wait()/wait_for_ms() keep
// the capability "held" from the analysis's point of view (the wait
// releases and re-acquires internally, which is exactly the semantics the
// REQUIRES annotation models). Callers write explicit predicate loops:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
//
// rather than predicate lambdas, so guarded-field reads in the predicate
// stay visible to the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically release `mu`, sleep, re-acquire before returning.
  void wait(Mutex& mu) MUSTAPLE_REQUIRES(mu) MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS {
    // The adopt/release dance below juggles ownership in a way the
    // analysis cannot follow; the net effect (held on entry, held on
    // exit) is what REQUIRES declares.
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  // As wait(), but also wakes after `ms` milliseconds.
  void wait_for_ms(Mutex& mu, std::uint64_t ms)
      MUSTAPLE_REQUIRES(mu) MUSTAPLE_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait_for(lk, std::chrono::milliseconds(ms));
    lk.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mustaple::util
