// Portable, implementation-independent hashing. std::hash is
// implementation-defined, so anything derived from it (auto-assigned DNS
// addresses, cache keys) would make campaigns non-reproducible across
// standard libraries. Everything here is fixed-algorithm and header-only:
// FNV-1a for byte/string keys and the splitmix64 finalizer for mixing
// structured keys (seed, region, time, ordinal) into one well-distributed
// 64-bit value — the basis of the simulator's counter-based RNG sampling.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"
#include "util/bytes_view.hpp"

namespace mustaple::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a string (the repo-wide label/host hash).
constexpr std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = kFnvOffsetBasis;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over raw bytes (Bytes converts implicitly, so owning buffers and
/// zero-copy views hash through the same code).
inline std::uint64_t fnv1a64(BytesView data) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// splitmix64 finalizer: bijective avalanche over one 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Folds `value` into an accumulated hash. Order-sensitive, so
/// hash_combine(hash_combine(s, a), b) != hash_combine(hash_combine(s, b), a)
/// — structured keys keep every field's position significant.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t value) {
  return mix64(h ^ (value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

}  // namespace mustaple::util
