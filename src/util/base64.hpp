// Base64 (RFC 4648), standard and URL-safe alphabets. Needed for OCSP
// GET requests (RFC 6960 Appendix A.1: the request is base64-encoded into
// the URL path).
#pragma once

#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace mustaple::util {

/// Standard alphabet with '=' padding.
std::string base64_encode(const Bytes& data);

/// Decodes standard-alphabet base64 (padding required for partial groups).
Result<Bytes> base64_decode(const std::string& text);

/// URL-safe alphabet ('-', '_'), no padding — used in URL path segments.
std::string base64url_encode(const Bytes& data);

Result<Bytes> base64url_decode(const std::string& text);

}  // namespace mustaple::util
