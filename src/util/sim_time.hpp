// Simulated wall-clock time. The whole study runs on a virtual clock so a
// four-month measurement campaign executes in milliseconds and replays
// deterministically. Times are seconds since the Unix epoch (UTC), matching
// the paper's requirement that OCSP/X.509 times be expressed in Zulu time.
#pragma once

#include <cstdint>
#include <string>

namespace mustaple::util {

/// A span of simulated time, in seconds. Strongly typed to avoid mixing
/// durations with absolute instants.
struct Duration {
  std::int64_t seconds = 0;

  static constexpr Duration secs(std::int64_t s) { return Duration{s}; }
  static constexpr Duration minutes(std::int64_t m) { return Duration{m * 60}; }
  static constexpr Duration hours(std::int64_t h) { return Duration{h * 3600}; }
  static constexpr Duration days(std::int64_t d) { return Duration{d * 86400}; }

  constexpr Duration operator+(Duration o) const { return Duration{seconds + o.seconds}; }
  constexpr Duration operator-(Duration o) const { return Duration{seconds - o.seconds}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{seconds * k}; }
  constexpr auto operator<=>(const Duration&) const = default;
};

/// An absolute instant on the simulated clock (seconds since epoch, UTC).
struct SimTime {
  std::int64_t unix_seconds = 0;

  constexpr SimTime operator+(Duration d) const { return SimTime{unix_seconds + d.seconds}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{unix_seconds - d.seconds}; }
  constexpr Duration operator-(SimTime o) const {
    return Duration{unix_seconds - o.unix_seconds};
  }
  constexpr auto operator<=>(const SimTime&) const = default;
};

/// Broken-down UTC time.
struct CivilTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;
};

/// Converts a civil UTC timestamp to SimTime. Validates field ranges.
SimTime from_civil(const CivilTime& civil);

/// Convenience: from_civil({y, m, d, hh, mm, ss}).
SimTime make_time(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0);

/// Converts SimTime back to broken-down UTC.
CivilTime to_civil(SimTime t);

/// "YYYY-MM-DD HH:MM:SS" (UTC), for reports and logs.
std::string format_time(SimTime t);

/// ASN.1 GeneralizedTime: "YYYYMMDDHHMMSSZ".
std::string to_generalized_time(SimTime t);

/// Parses "YYYYMMDDHHMMSSZ"; throws std::invalid_argument on malformed input.
SimTime from_generalized_time(const std::string& text);

}  // namespace mustaple::util
