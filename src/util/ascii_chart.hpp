// Terminal rendering for benchmark output: the bench binaries print the
// paper's figures as ASCII line charts / CDFs so the "shape" comparison can
// be made without a plotting stack.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace mustaple::util {

struct ChartOptions {
  int width = 72;        ///< plot area columns
  int height = 16;       ///< plot area rows
  bool log_x = false;    ///< log10 x axis (paper uses it for CDF tails)
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders one or more series on shared axes. Each series gets a distinct
/// glyph; a legend is appended. Series with mismatched x/y sizes are skipped.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options);

/// Renders an empirical CDF (y is the cumulative fraction 0..1).
std::string render_cdf(const Cdf& cdf, const ChartOptions& options);

/// Renders a fixed-width text table. `rows` must all have `headers.size()`
/// cells (short rows are padded).
std::string render_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

/// One-line block-glyph sparkline ("▁▂▃▄▅▆▇█") of `values` scaled between
/// `lo` and `hi`; with the defaults (lo > hi) the data's own min/max are
/// used. Values are clamped; an all-equal series renders mid-height.
/// Empty input -> empty string.
std::string sparkline(const std::vector<double>& values, double lo = 1.0,
                      double hi = 0.0);

}  // namespace mustaple::util
