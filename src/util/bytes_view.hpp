// Non-owning view over a byte buffer — the zero-copy counterpart of
// util::Bytes. Parsers traverse DER through views so a parse allocates only
// for the fields that outlive the input buffer.
//
// Lifetime rule (DESIGN.md §9): a BytesView NEVER outlives the Bytes (or
// other storage) it was taken from. Views are for traversal and transient
// inspection; anything retained past the parse is copied via to_bytes().
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace mustaple::util {

class BytesView {
 public:
  constexpr BytesView() = default;
  constexpr BytesView(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  // Implicit on purpose: every Bytes is trivially viewable, and the
  // conversion keeps call sites (equality checks, hashing, parsing) free of
  // adapter noise.
  BytesView(const Bytes& bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.data()), size_(bytes.size()) {}
  // A view into a temporary would dangle the moment the statement ends.
  BytesView(Bytes&&) = delete;

  constexpr const std::uint8_t* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr std::uint8_t operator[](std::size_t i) const { return data_[i]; }
  constexpr const std::uint8_t* begin() const { return data_; }
  constexpr const std::uint8_t* end() const { return data_ + size_; }
  constexpr std::uint8_t front() const { return data_[0]; }
  constexpr std::uint8_t back() const { return data_[size_ - 1]; }

  /// Subview [pos, pos+count); clamped to the underlying range.
  constexpr BytesView subview(std::size_t pos,
                              std::size_t count = SIZE_MAX) const {
    const std::size_t p = std::min(pos, size_);
    return BytesView(data_ + p, std::min(count, size_ - p));
  }
  /// Drops the first `n` bytes (clamped).
  constexpr BytesView drop_front(std::size_t n) const {
    return subview(n);
  }

  /// Materializes an owning copy — the ONLY way view contents escape the
  /// source buffer's lifetime.
  Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  friend bool operator==(BytesView a, BytesView b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// View counterpart of text_of(const Bytes&).
inline std::string text_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

/// Appends a view's contents to an owning buffer.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace mustaple::util
