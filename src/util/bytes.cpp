#include "util/bytes.hpp"

#include <stdexcept>

namespace mustaple::util {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(const Bytes& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string text_of(const Bytes& data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

bool equal_constant_time(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace mustaple::util
