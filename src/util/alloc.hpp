// Allocation accounting for the campaign-scale memory story. The ROADMAP's
// full-scale item is gated on "peak RSS bounded and reported by obs" —
// which needs to know WHERE the bytes live, not just how many the kernel
// charged the process. Three pieces:
//
//  * AllocCounter — a set of monotone atomic tallies (bytes/calls allocated
//    and freed, plus an outstanding-bytes high-water mark) cheap enough to
//    sit on a container hot path. Conservation law: allocated_bytes -
//    freed_bytes == outstanding() at every quiescent point (asserted in
//    tests at every thread count).
//  * CountingAllocator<T> — a std-compatible allocator that reports every
//    allocate/deallocate to an AllocCounter. A null counter makes it a
//    plain std::allocator, so containers can be typed for counting and
//    wired up only where a subsystem opts in.
//  * a process-wide named registry (alloc_counter("scan.validation_cache"))
//    so subsystems tally under stable names and exporters (ResourceMonitor,
//    perf_suite, /statusz) can walk every subsystem generically.
//
// This is util, not obs: the accounting stays available (and the wired
// containers keep their types) under MUSTAPLE_OBS_OFF; only the obs-layer
// EXPORT of these numbers compiles out. Counting never changes what a
// container stores, so it can never change campaign outputs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace mustaple::util {

/// One subsystem's allocation tallies. All counters are relaxed atomics:
/// totals are exact at quiescent points (barriers, campaign end); the
/// outstanding high-water mark is maintained with a CAS loop so it never
/// loses an update even under contention.
class AllocCounter {
 public:
  void record_alloc(std::size_t bytes) {
    allocated_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    update_peak();
  }
  void record_free(std::size_t bytes) {
    freed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    free_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t allocated_bytes() const {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_bytes() const {
    return freed_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t alloc_calls() const {
    return alloc_calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t free_calls() const {
    return free_calls_.load(std::memory_order_relaxed);
  }
  /// Bytes currently live: allocated - freed. Signed-safe: transient
  /// interleavings can make freed read ahead of allocated mid-update, so
  /// clamp at zero rather than wrapping.
  std::uint64_t outstanding_bytes() const {
    const std::uint64_t a = allocated_bytes();
    const std::uint64_t f = freed_bytes();
    return a > f ? a - f : 0;
  }
  /// High-water mark of outstanding_bytes over the counter's lifetime.
  std::uint64_t peak_outstanding_bytes() const {
    return peak_outstanding_.load(std::memory_order_relaxed);
  }

  /// Test/bench support: zero every tally.
  void reset() {
    allocated_bytes_.store(0, std::memory_order_relaxed);
    freed_bytes_.store(0, std::memory_order_relaxed);
    alloc_calls_.store(0, std::memory_order_relaxed);
    free_calls_.store(0, std::memory_order_relaxed);
    peak_outstanding_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_peak() {
    const std::uint64_t now = outstanding_bytes();
    std::uint64_t seen = peak_outstanding_.load(std::memory_order_relaxed);
    while (now > seen && !peak_outstanding_.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> allocated_bytes_{0};
  std::atomic<std::uint64_t> freed_bytes_{0};
  std::atomic<std::uint64_t> alloc_calls_{0};
  std::atomic<std::uint64_t> free_calls_{0};
  std::atomic<std::uint64_t> peak_outstanding_{0};
};

/// Process-wide named counter. The reference stays valid forever (counters
/// are never destroyed); repeated calls with the same name return the same
/// cell. Names follow the subsystem convention used by metrics labels:
/// "scan.validation_cache", "ecosystem.certs", "ca.response_cache", ...
AllocCounter& alloc_counter(const std::string& name);

/// Read-only walk over every registered counter, in name order (so exports
/// are deterministic).
void visit_alloc_counters(
    const std::function<void(const std::string& name, const AllocCounter&)>&
        fn);

/// Test/bench support: reset every registered counter's tallies (the
/// counters themselves stay registered — references remain valid).
void reset_alloc_counters();

/// std-compatible allocator charging a named AllocCounter. With a null
/// counter it degrades to std::allocator semantics; either way the VALUES
/// allocated are identical, so wiring a container for counting can never
/// change behaviour — only visibility.
template <typename T>
class CountingAllocator {
 public:
  using value_type = T;

  CountingAllocator() = default;
  explicit CountingAllocator(AllocCounter* counter) : counter_(counter) {}
  template <typename U>
  CountingAllocator(const CountingAllocator<U>& other)  // NOLINT(*-explicit-*)
      : counter_(other.counter()) {}

  T* allocate(std::size_t n) {
    if (counter_ != nullptr) counter_->record_alloc(n * sizeof(T));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (counter_ != nullptr) counter_->record_free(n * sizeof(T));
    ::operator delete(p);
  }

  AllocCounter* counter() const { return counter_; }

  // Counting is observability, not identity: two instances can always swap
  // storage, so all instances compare equal (the std::allocator contract
  // containers rely on for moves/swaps).
  friend bool operator==(const CountingAllocator&, const CountingAllocator&) {
    return true;
  }
  friend bool operator!=(const CountingAllocator&, const CountingAllocator&) {
    return false;
  }

 private:
  AllocCounter* counter_ = nullptr;
};

/// Manual accounting for buffers allocated through plain containers (the
/// ecosystem's generated DER, the responder's response cache): record(n)
/// charges the counter now, and the tally releases EVERYTHING it charged on
/// destruction, so the conservation law survives subsystems that free en
/// masse in their destructor.
class AllocTally {
 public:
  explicit AllocTally(AllocCounter& counter) : counter_(&counter) {}
  AllocTally(const AllocTally&) = delete;
  AllocTally& operator=(const AllocTally&) = delete;
  ~AllocTally() { release_all(); }

  void record(std::size_t bytes) {
    counter_->record_alloc(bytes);
    total_ += bytes;
  }
  void release(std::size_t bytes) {
    counter_->record_free(bytes);
    total_ -= bytes;
  }
  void release_all() {
    if (total_ > 0) {
      counter_->record_free(total_);
      total_ = 0;
    }
  }
  std::size_t total() const { return total_; }

 private:
  AllocCounter* counter_;
  std::size_t total_ = 0;
};

}  // namespace mustaple::util
