#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mustaple::util {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty CDF");
  if (q <= 0.0 || q > 1.0) throw std::invalid_argument("Cdf::quantile: q out of range");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::infinite_fraction() const {
  if (samples_.empty()) return 0.0;
  std::size_t inf = 0;
  for (double s : samples_) {
    if (std::isinf(s)) ++inf;
  }
  return static_cast<double>(inf) / static_cast<double>(samples_.size());
}

std::vector<double> Cdf::sorted_finite() const {
  ensure_sorted();
  std::vector<double> out;
  out.reserve(samples_.size());
  for (double s : samples_) {
    if (!std::isinf(s)) out.push_back(s);
  }
  return out;
}

BinnedRatio::BinnedRatio(double x_min, double x_max, std::size_t bins)
    : x_min_(x_min),
      width_((x_max - x_min) / static_cast<double>(bins)),
      hits_(bins, 0),
      totals_(bins, 0) {
  if (bins == 0 || x_max <= x_min) {
    throw std::invalid_argument("BinnedRatio: bad range or zero bins");
  }
}

void BinnedRatio::add(double x, bool hit) {
  if (x < x_min_) return;
  auto idx = static_cast<std::size_t>((x - x_min_) / width_);
  if (idx >= totals_.size()) {
    if (x <= x_min_ + width_ * static_cast<double>(totals_.size())) {
      idx = totals_.size() - 1;  // right edge belongs to the last bin
    } else {
      return;
    }
  }
  ++totals_[idx];
  if (hit) ++hits_[idx];
}

double BinnedRatio::bin_center(std::size_t i) const {
  return x_min_ + width_ * (static_cast<double>(i) + 0.5);
}

double BinnedRatio::percentage(std::size_t i) const {
  if (totals_[i] == 0) return 0.0;
  return 100.0 * static_cast<double>(hits_[i]) / static_cast<double>(totals_[i]);
}

}  // namespace mustaple::util
