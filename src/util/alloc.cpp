#include "util/alloc.hpp"

#include <map>

#include "util/mutex.hpp"

namespace mustaple::util {

namespace {

// Function-local singletons: construction on first use, never destroyed
// (counters may be touched by detached exporter threads at shutdown).
// The mutex guards the registry map's structure; the AllocCounter values
// themselves are all-atomic and are deliberately handed out as stable
// references mutated without the lock.
Mutex& registry_mutex() {
  static Mutex mu;
  return mu;
}

std::map<std::string, AllocCounter>& registry() {
  static auto* counters = new std::map<std::string, AllocCounter>();
  return *counters;
}

}  // namespace

AllocCounter& alloc_counter(const std::string& name) {
  MutexLock lock(registry_mutex());
  return registry()[name];  // std::map nodes are stable
}

void visit_alloc_counters(
    const std::function<void(const std::string&, const AllocCounter&)>& fn) {
  MutexLock lock(registry_mutex());
  for (const auto& [name, counter] : registry()) fn(name, counter);
}

void reset_alloc_counters() {
  MutexLock lock(registry_mutex());
  for (auto& [name, counter] : registry()) counter.reset();
}

}  // namespace mustaple::util
