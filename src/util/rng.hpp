// Deterministic pseudo-random generation. Every stochastic element of the
// simulation (ecosystem synthesis, fault schedules, latency jitter) derives
// from a single seed so that whole experiments replay bit-identically.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mustaple::util {

/// xoshiro256** seeded via splitmix64. Small, fast, and reproducible across
/// platforms (unlike std::mt19937 distributions, whose mapping functions are
/// implementation-defined — we implement our own mappings below).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream, keyed by a label. Used to give each
  /// subsystem (faults, latency, ecosystem, ...) its own stream so adding
  /// draws in one subsystem does not perturb another.
  Rng fork(std::string_view label) const;

  std::uint64_t next_u64();

  /// Uniform in [0, bound) with rejection sampling; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Gaussian-ish value (sum of 4 uniforms, CLT approximation) with the given
  /// mean/stddev. Adequate for latency jitter; avoids transcendental calls.
  double normal_approx(double mean, double stddev);

  /// Picks an index according to non-negative weights (at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fills a buffer with random bytes.
  void fill(std::uint8_t* out, std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace mustaple::util
