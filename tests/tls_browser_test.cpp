// TLS handshake + browser policy tests: the status_request contract, staple
// validation, and the verdict matrix behind Table 2.
#include <gtest/gtest.h>

#include "browser/browser.hpp"
#include "ca/authority.hpp"
#include "ca/responder.hpp"
#include "tls/handshake.hpp"
#include "webserver/webserver.hpp"

namespace mustaple {
namespace {

using util::Duration;
using util::SimTime;

const SimTime kNow = util::make_time(2018, 5, 15);

struct World {
  util::Rng rng{31337};
  net::EventLoop loop{kNow - Duration::days(1)};
  net::Network network{loop, 31337};
  ca::CertificateAuthority authority{"WorldCA", kNow - Duration::days(900), rng};
  ca::OcspResponder responder{authority, ca::ResponderBehavior{},
                              "ocsp.world.example", rng};
  x509::RootStore roots;
  tls::TlsDirectory directory;
  std::vector<std::unique_ptr<webserver::WebServer>> servers;

  World() {
    roots.add(authority.root_cert());
    responder.install(network);
  }

  x509::Certificate issue(const std::string& domain, bool must_staple) {
    ca::LeafRequest request;
    request.domain = domain;
    request.not_before = kNow - Duration::days(10);
    request.lifetime = Duration::days(90);
    request.must_staple = must_staple;
    request.ocsp_urls = {"http://ocsp.world.example/"};
    return authority.issue(request, rng);
  }

  webserver::WebServer& serve(const std::string& domain, bool must_staple,
                              bool stapling_enabled,
                              webserver::Software software =
                                  webserver::Software::kApache) {
    webserver::WebServerConfig config;
    config.software = software;
    config.stapling_enabled = stapling_enabled;
    servers.push_back(std::make_unique<webserver::WebServer>(
        domain, authority.chain_for(issue(domain, must_staple)), config,
        network));
    servers.back()->install(directory);
    servers.back()->start(kNow - Duration::hours(1));
    return *servers.back();
  }

  // The observation's `leaf` points into the ServerHello's chain, so the
  // hello must outlive the returned observation: it lives here, valid until
  // the next observe() call.
  tls::ServerHello last_server_hello;

  tls::HandshakeObservation observe(const std::string& domain,
                                    bool status_request) {
    loop.run_until(kNow);
    tls::ClientHello hello;
    hello.server_name = domain;
    hello.status_request = status_request;
    last_server_hello = tls::ServerHello{};
    return tls::observe_handshake(directory, hello, roots, kNow,
                                  last_server_hello);
  }
};

// ------------------------------------------------------------- handshake --

TEST(TlsDirectory, UnknownHostFailsToConnect) {
  World w;
  const auto obs = w.observe("ghost.example", true);
  EXPECT_FALSE(obs.connected);
}

TEST(TlsDirectory, BindAndSize) {
  World w;
  EXPECT_EQ(w.directory.size(), 0u);
  w.serve("one.example", false, true);
  EXPECT_EQ(w.directory.size(), 1u);
  EXPECT_TRUE(w.directory.has("one.example"));
  EXPECT_FALSE(w.directory.has("two.example"));
}

TEST(Handshake, ValidChainObserved) {
  World w;
  w.serve("site.example", false, true);
  const auto obs = w.observe("site.example", true);
  EXPECT_TRUE(obs.connected);
  EXPECT_TRUE(obs.certificate_valid);
  EXPECT_FALSE(obs.must_staple);
  ASSERT_NE(obs.leaf, nullptr);
  EXPECT_EQ(obs.leaf->subject().common_name, "site.example");
}

TEST(Handshake, MustStapleFlagSurfaces) {
  World w;
  w.serve("ms.example", true, true);
  EXPECT_TRUE(w.observe("ms.example", true).must_staple);
}

TEST(Handshake, StapleDeliveredAndValidated) {
  World w;
  w.serve("stapled.example", true, true);
  // First handshake warms Apache's cache (it pauses and fetches).
  w.observe("stapled.example", true);
  const auto obs = w.observe("stapled.example", true);
  EXPECT_TRUE(obs.staple_present);
  ASSERT_TRUE(obs.staple_check.has_value());
  EXPECT_TRUE(obs.staple_check->usable());
  EXPECT_EQ(obs.staple_check->status, ocsp::CertStatus::kGood);
}

TEST(Handshake, NoStapleWhenClientDoesNotAsk) {
  World w;
  w.serve("quiet.example", true, true);
  w.observe("quiet.example", true);  // warm cache
  const auto obs = w.observe("quiet.example", false);
  EXPECT_TRUE(obs.connected);
  EXPECT_FALSE(obs.staple_present);  // RFC 6066 contract
}

TEST(Handshake, ExpiredCertificateDetected) {
  World w;
  ca::LeafRequest request;
  request.domain = "old.example";
  request.not_before = kNow - Duration::days(400);
  request.lifetime = Duration::days(90);  // long expired
  const auto leaf = w.authority.issue(request, w.rng);
  webserver::WebServerConfig config;
  auto server = std::make_unique<webserver::WebServer>(
      "old.example", w.authority.chain_for(leaf), config, w.network);
  server->install(w.directory);
  w.servers.push_back(std::move(server));
  const auto obs = w.observe("old.example", true);
  EXPECT_TRUE(obs.connected);
  EXPECT_FALSE(obs.certificate_valid);
  EXPECT_EQ(obs.chain_error, x509::ChainError::kExpired);
}

// --------------------------------------------------------------- browser --

TEST(BrowserProfiles, Table2Shape) {
  const auto& profiles = browser::standard_profiles();
  EXPECT_EQ(profiles.size(), 16u);  // Table 2's browser/OS combinations
  std::size_t respecting = 0;
  for (const auto& profile : profiles) {
    EXPECT_TRUE(profile.sends_status_request);  // row 1: all check
    EXPECT_FALSE(profile.sends_own_ocsp);       // row 3: none do
    if (profile.respects_must_staple) ++respecting;
  }
  // Row 2: Firefox on OS X / Linux / Windows / Android only.
  EXPECT_EQ(respecting, 4u);
}

TEST(BrowserProfiles, FirefoxIosDoesNotRespect) {
  for (const auto& profile : browser::standard_profiles()) {
    if (profile.name == "Firefox" && profile.os == "iOS") {
      EXPECT_FALSE(profile.respects_must_staple);
      return;
    }
  }
  FAIL() << "Firefox iOS profile missing";
}

browser::BrowserProfile firefox_desktop() {
  for (const auto& profile : browser::standard_profiles()) {
    if (profile.name == "Firefox 60" && profile.os == "Linux") return profile;
  }
  throw std::logic_error("no firefox profile");
}

browser::BrowserProfile chrome_desktop() {
  for (const auto& profile : browser::standard_profiles()) {
    if (profile.name == "Chrome 66" && profile.os == "Linux") return profile;
  }
  throw std::logic_error("no chrome profile");
}

TEST(BrowserVisit, AcceptWithValidStaple) {
  World w;
  w.serve("ok.example", true, true);
  w.observe("ok.example", true);  // warm
  const auto result = browser::visit(chrome_desktop(), w.directory,
                                     "ok.example", w.roots, kNow);
  EXPECT_EQ(result.verdict, browser::Verdict::kAccept);
  EXPECT_TRUE(result.received_staple);
  EXPECT_TRUE(result.staple_valid);
}

TEST(BrowserVisit, FirefoxHardFailsUnstapledMustStaple) {
  World w;
  w.serve("unstapled.example", true, /*stapling_enabled=*/false);
  const auto result = browser::visit(firefox_desktop(), w.directory,
                                     "unstapled.example", w.roots, kNow);
  EXPECT_EQ(result.verdict, browser::Verdict::kHardFail);
  EXPECT_FALSE(result.received_staple);
}

TEST(BrowserVisit, ChromeSoftFailsUnstapledMustStaple) {
  World w;
  w.serve("unstapled2.example", true, false);
  const auto result = browser::visit(chrome_desktop(), w.directory,
                                     "unstapled2.example", w.roots, kNow,
                                     &w.network);
  EXPECT_EQ(result.verdict, browser::Verdict::kAcceptSoftFail);
  EXPECT_FALSE(result.sent_own_ocsp_request);  // Table 2 row 3
}

TEST(BrowserVisit, NonMustStapleSoftFailIsQuiet) {
  World w;
  w.serve("plain.example", false, false);
  for (const auto& profile : browser::standard_profiles()) {
    const auto result =
        browser::visit(profile, w.directory, "plain.example", w.roots, kNow);
    EXPECT_EQ(result.verdict, browser::Verdict::kAcceptSoftFail)
        << profile.display_name();
  }
}

TEST(BrowserVisit, RevokedStapleRejected) {
  World w;
  auto& server = w.serve("revoked.example", true, true);
  w.authority.revoke(server.leaf().serial(), kNow - Duration::days(1),
                     crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});
  w.observe("revoked.example", true);  // warm cache with REVOKED staple
  const auto result = browser::visit(chrome_desktop(), w.directory,
                                     "revoked.example", w.roots, kNow);
  EXPECT_EQ(result.verdict, browser::Verdict::kRejectRevoked);
}

TEST(BrowserVisit, ConnectionFailedVerdict) {
  World w;
  const auto result = browser::visit(chrome_desktop(), w.directory,
                                     "nonexistent.example", w.roots, kNow);
  EXPECT_EQ(result.verdict, browser::Verdict::kConnectionFailed);
}

TEST(BrowserVisit, HypotheticalOwnOcspFallback) {
  // A "future browser" that falls back to its own OCSP query picks up the
  // revocation even without a staple.
  World w;
  auto& server = w.serve("fallback.example", false, false);
  w.authority.revoke(server.leaf().serial(), kNow - Duration::days(1),
                     crl::ReasonCode::kKeyCompromise, ca::RevocationPolicy{});
  browser::BrowserProfile diligent = chrome_desktop();
  diligent.name = "Diligent";
  diligent.sends_own_ocsp = true;
  w.loop.run_until(kNow);
  const auto result = browser::visit(diligent, w.directory, "fallback.example",
                                     w.roots, kNow, &w.network);
  EXPECT_TRUE(result.sent_own_ocsp_request);
  EXPECT_EQ(result.verdict, browser::Verdict::kRejectRevoked);
}

TEST(BrowserVisit, OwnOcspFallbackAcceptsGood) {
  World w;
  w.serve("goodfallback.example", false, false);
  browser::BrowserProfile diligent = chrome_desktop();
  diligent.sends_own_ocsp = true;
  w.loop.run_until(kNow);
  const auto result =
      browser::visit(diligent, w.directory, "goodfallback.example", w.roots,
                     kNow, &w.network);
  EXPECT_TRUE(result.sent_own_ocsp_request);
  EXPECT_EQ(result.verdict, browser::Verdict::kAccept);
}

TEST(VerdictStrings, AllNamed) {
  for (auto verdict :
       {browser::Verdict::kAccept, browser::Verdict::kAcceptSoftFail,
        browser::Verdict::kHardFail, browser::Verdict::kRejectRevoked,
        browser::Verdict::kCertificateInvalid,
        browser::Verdict::kConnectionFailed}) {
    EXPECT_STRNE(browser::to_string(verdict), "?");
  }
}

}  // namespace
}  // namespace mustaple
