// Tests for the obs subsystem: logger level filtering and sinks, metric
// counter/gauge/histogram semantics, Prometheus/JSON export golden strings,
// and span nesting/timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace mustaple::obs {
namespace {

// ---------------------------------------------------------------- logger --

TEST(Logger, LevelFiltering) {
  Logger logger;
  auto ring = std::make_shared<RingBufferSink>();
  logger.add_sink(ring);
  logger.set_level(Level::kWarn);

  EXPECT_FALSE(logger.enabled(Level::kDebug));
  EXPECT_FALSE(logger.enabled(Level::kInfo));
  EXPECT_TRUE(logger.enabled(Level::kWarn));
  EXPECT_TRUE(logger.enabled(Level::kError));

  logger.log(Level::kInfo, "t", "filtered out");
  logger.log(Level::kWarn, "t", "kept");
  logger.log(Level::kError, "t", "also kept");
  ASSERT_EQ(ring->records().size(), 2u);
  EXPECT_EQ(ring->records()[0].message, "kept");
  EXPECT_EQ(ring->records()[1].message, "also kept");
}

TEST(Logger, SinklessLoggerIsDisabled) {
  Logger logger;
  EXPECT_FALSE(logger.enabled(Level::kError));
  logger.log(Level::kError, "t", "goes nowhere");  // must not crash
}

TEST(Logger, RingBufferEvictsOldest) {
  Logger logger;
  auto ring = std::make_shared<RingBufferSink>(3);
  logger.add_sink(ring);
  for (int i = 0; i < 5; ++i) {
    logger.log(Level::kInfo, "t", "m" + std::to_string(i));
  }
  ASSERT_EQ(ring->records().size(), 3u);
  EXPECT_EQ(ring->records().front().message, "m2");
  EXPECT_EQ(ring->records().back().message, "m4");
  EXPECT_EQ(ring->dropped(), 2u);
  ring->clear();
  EXPECT_TRUE(ring->records().empty());
  EXPECT_EQ(ring->dropped(), 0u);
}

TEST(Logger, RecordsCarryBothClocks) {
  Logger logger;
  auto ring = std::make_shared<RingBufferSink>();
  logger.add_sink(ring);
  logger.set_sim_clock([] { return util::make_time(2018, 5, 1, 12, 0, 0); });
  logger.log(Level::kInfo, "scan", "probe", {field("host", "ocsp.example")});
  ASSERT_EQ(ring->records().size(), 1u);
  const LogRecord& record = ring->records().front();
  ASSERT_TRUE(record.sim_time.has_value());
  EXPECT_EQ(record.sim_time->unix_seconds,
            util::make_time(2018, 5, 1, 12, 0, 0).unix_seconds);
  EXPECT_GT(record.wall_time.time_since_epoch().count(), 0);

  const std::string text = record.to_text();
  EXPECT_NE(text.find("info [scan] probe host=ocsp.example"),
            std::string::npos);
  EXPECT_NE(text.find("sim=\"2018-05-01 12:00:00\""), std::string::npos);

  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"sim\":\"2018-05-01 12:00:00\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_unix\":1525176000"), std::string::npos);
  EXPECT_NE(json.find("\"wall\":\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_unix_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"host\":\"ocsp.example\""), std::string::npos);

  // Without a sim clock the sim stamp disappears.
  logger.set_sim_clock(nullptr);
  logger.log(Level::kInfo, "scan", "probe2");
  EXPECT_FALSE(ring->records().back().sim_time.has_value());
  EXPECT_EQ(ring->records().back().to_json().find("\"sim\":"),
            std::string::npos);
}

TEST(Logger, JsonEscapesSpecials) {
  LogRecord record;
  record.message = "quote \" backslash \\ newline \n";
  const std::string json = record.to_json();
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n"),
            std::string::npos);
}

TEST(Logger, FieldHelpersFormatValues) {
  EXPECT_EQ(field("k", "v").value, "v");
  EXPECT_EQ(field("k", std::string("s")).value, "s");
  EXPECT_EQ(field("k", 42).value, "42");
  EXPECT_EQ(field("k", std::size_t{7}).value, "7");
  EXPECT_EQ(field("k", -3).value, "-3");
  EXPECT_EQ(field("k", 2.5).value, "2.5");
  EXPECT_EQ(field("k", true).value, "true");
  EXPECT_EQ(field("k", false).value, "false");
}

TEST(Logger, EnabledTracksSinkSetWithoutLocking) {
  // Regression: enabled() is the per-call-site fast path and reads only
  // atomics; has_sinks_ must mirror every mutation of the sink list.
  Logger logger;
  logger.set_level(Level::kDebug);
  EXPECT_FALSE(logger.enabled(Level::kError));  // sinkless
  auto ring = std::make_shared<RingBufferSink>();
  logger.add_sink(ring);
  EXPECT_TRUE(logger.enabled(Level::kDebug));
  logger.remove_sink(ring);
  EXPECT_FALSE(logger.enabled(Level::kError));
  logger.add_sink(ring);
  logger.clear_sinks();
  EXPECT_FALSE(logger.enabled(Level::kError));
}

TEST(Logger, ConcurrentSinkChurnAndLoggingIsSafe) {
  // Regression: sinks_ and sim_clock_ are read under the logger mutex while
  // other threads mutate them; enabled() stays lock-free throughout. The
  // assertions are minimal — the value of this test is under TSan.
  Logger logger;
  auto ring = std::make_shared<RingBufferSink>();
  logger.add_sink(ring);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      logger.set_sim_clock([] { return util::make_time(2018, 6, 1); });
      logger.set_sim_clock(nullptr);
      logger.clear_sinks();
      logger.add_sink(ring);
    }
  });
  std::thread reader([&] {
    while (!stop.load()) (void)logger.enabled(Level::kInfo);
  });
  for (int i = 0; i < 500; ++i) {
    logger.log(Level::kInfo, "churn", "msg " + std::to_string(i));
  }
  stop.store(true);
  churn.join();
  reader.join();
  logger.clear_sinks();
  logger.add_sink(ring);
  logger.log(Level::kInfo, "churn", "final");
  EXPECT_FALSE(ring->records().empty());
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, CounterSemantics) {
  Registry registry;
  Counter& c = registry.counter("mustaple_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name+labels -> same cell; different labels -> different cell.
  EXPECT_EQ(&registry.counter("mustaple_test_total"), &c);
  Counter& labelled =
      registry.counter("mustaple_test_total", {{"kind", "dns"}});
  EXPECT_NE(&labelled, &c);
  labelled.inc();
  EXPECT_EQ(registry.counter_value("mustaple_test_total"), 5u);
  EXPECT_EQ(registry.counter_value("mustaple_test_total", {{"kind", "dns"}}),
            1u);
  EXPECT_EQ(registry.counter_value("absent_total"), 0u);
}

TEST(Metrics, LabelOrderIsCanonical) {
  Registry registry;
  Counter& a = registry.counter("m", {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(canonical_labels({{"b", "2"}, {"a", "1"}}),
            "{a=\"1\",b=\"2\"}");
  EXPECT_EQ(canonical_labels({}), "");
}

TEST(Metrics, GaugeSemantics) {
  Registry registry;
  Gauge& g = registry.gauge("mustaple_test_depth");
  g.set(5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set_max(3);  // below current -> no change
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set_max(10);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("mustaple_test_depth"), 10.0);
}

TEST(Metrics, GaugeSetMaxTakesFirstSampleUnconditionally) {
  Registry registry;
  Gauge& g = registry.gauge("mustaple_test_floor");
  // A fresh gauge reads 0, but 0 is not a sample: an all-negative series
  // must report its true maximum, not stick at the initial 0.
  g.set_max(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  g.set_max(-9.0);
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  g.set_max(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);

  // set() counts as a sample too: a later smaller set_max is a no-op.
  Gauge& h = registry.gauge("mustaple_test_floor2");
  h.set(-1.0);
  h.set_max(-4.0);
  EXPECT_DOUBLE_EQ(h.value(), -1.0);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Registry registry;
  Histogram& h = registry.histogram("mustaple_test_ms", {1.0, 10.0, 100.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (le is inclusive)
  h.observe(5.0);   // <= 10
  h.observe(50.0);  // <= 100
  h.observe(500.0); // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.stats().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.stats().max(), 500.0);
  // Second lookup keeps the original bounds.
  EXPECT_EQ(&registry.histogram("mustaple_test_ms", std::vector<double>{7.0}),
            &h);
  EXPECT_EQ(h.bounds().size(), 3u);
}

TEST(Metrics, HistogramQuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0});
  for (double x : {2.0, 4.0, 6.0, 8.0}) h.observe(x);      // first bucket
  for (double x : {12.0, 14.0, 16.0, 18.0}) h.observe(x);  // second bucket
  h.observe(25.0);                                         // +Inf bucket
  h.observe(30.0);
  // rank 5 of 10 lands 1/4 into the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 12.5);
  EXPECT_DOUBLE_EQ(h.p50(), 12.5);
  // Ranks in the +Inf bucket have no upper bound: the observed max.
  EXPECT_DOUBLE_EQ(h.p95(), 30.0);
  EXPECT_DOUBLE_EQ(h.p99(), 30.0);
  // Extremes pin to the observed range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
}

TEST(Metrics, HistogramQuantilesClampAndHandleEmpty) {
  Histogram empty({10.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // One sample at 4 in a (0, 10] bucket: interpolation toward the bound
  // must not exceed the observed max.
  Histogram single({10.0});
  single.observe(4.0);
  EXPECT_DOUBLE_EQ(single.p50(), 4.0);
  EXPECT_DOUBLE_EQ(single.p99(), 4.0);
}

TEST(Metrics, PrometheusGolden) {
  Registry registry;
  registry.counter("mustaple_demo_total").inc(3);
  registry.counter("mustaple_demo_errors_total", {{"kind", "dns"}}).inc();
  registry.counter("mustaple_demo_errors_total", {{"kind", "tcp"}}).inc(2);
  registry.gauge("mustaple_demo_depth").set(7);
  Histogram& h = registry.histogram("mustaple_demo_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(99.0);
  EXPECT_EQ(registry.render_prometheus(),
            "# TYPE mustaple_demo_errors_total counter\n"
            "mustaple_demo_errors_total{kind=\"dns\"} 1\n"
            "mustaple_demo_errors_total{kind=\"tcp\"} 2\n"
            "# TYPE mustaple_demo_total counter\n"
            "mustaple_demo_total 3\n"
            "# TYPE mustaple_demo_depth gauge\n"
            "mustaple_demo_depth 7\n"
            "# TYPE mustaple_demo_ms histogram\n"
            "mustaple_demo_ms_bucket{le=\"1\"} 1\n"
            "mustaple_demo_ms_bucket{le=\"10\"} 2\n"
            "mustaple_demo_ms_bucket{le=\"+Inf\"} 3\n"
            "mustaple_demo_ms_sum 101.5\n"
            "mustaple_demo_ms_count 3\n"
            "mustaple_demo_ms_p50 5.5\n"
            "mustaple_demo_ms_p95 99\n"
            "mustaple_demo_ms_p99 99\n");
}

TEST(Metrics, PrometheusHistogramWithLabels) {
  Registry registry;
  registry.histogram("m_ms", {1.0}, {{"region", "paris"}}).observe(0.5);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("m_ms_bucket{region=\"paris\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("m_ms_sum{region=\"paris\"} 0.5"), std::string::npos);
  EXPECT_NE(text.find("m_ms_count{region=\"paris\"} 1"), std::string::npos);
}

TEST(Metrics, JsonGolden) {
  Registry registry;
  registry.counter("a_total").inc(2);
  registry.counter("b_total", {{"kind", "dns"}}).inc();
  registry.gauge("depth").set(1.5);
  registry.histogram("lat_ms", std::vector<double>{10.0}).observe(4.0);
  EXPECT_EQ(registry.render_json(),
            "{\"counters\":{\"a_total\":2,\"b_total{kind=\\\"dns\\\"}\":1},"
            "\"gauges\":{\"depth\":1.5},"
            "\"histograms\":{\"lat_ms\":{\"count\":1,\"sum\":4,\"mean\":4,"
            "\"min\":4,\"max\":4,\"p50\":4,\"p95\":4,\"p99\":4,"
            "\"buckets\":[{\"le\":10,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":1}]}}}");
}

TEST(Metrics, ResetClearsEverything) {
  Registry registry;
  registry.counter("x_total").inc();
  registry.reset();
  EXPECT_EQ(registry.counter_value("x_total"), 0u);
  EXPECT_EQ(registry.render_prometheus(), "");
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  Registry registry;
  // Raw value: a\b"c<newline>d — each special must come out escaped per the
  // exposition format (backslash, quote, literal backslash-n).
  registry.counter("esc_total", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
  // No raw newline may survive inside a sample line.
  EXPECT_EQ(text.find("c\nd"), std::string::npos) << text;
}

TEST(Metrics, EscapingKeepsDistinctRawValuesDistinct) {
  Registry registry;
  // "a<newline>b" vs the two-character sequence "a\nb": escaping must be
  // injective or these would merge into one series.
  registry.counter("amb_total", {{"k", "a\nb"}}).inc();
  registry.counter("amb_total", {{"k", "a\\nb"}}).inc(2);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("amb_total{k=\"a\\nb\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("amb_total{k=\"a\\\\nb\"} 2"), std::string::npos)
      << text;
}

TEST(Metrics, NonFiniteValuesUseExpositionSpellings) {
  Registry registry;
  registry.gauge("g_nan").set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("g_pos").set(std::numeric_limits<double>::infinity());
  registry.gauge("g_neg").set(-std::numeric_limits<double>::infinity());
  const std::string text = registry.render_prometheus();
  // printf's "nan"/"inf" are rejected by Prometheus parsers; the exporter
  // must spell these NaN / +Inf / -Inf.
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan\n"), std::string::npos) << text;
  EXPECT_EQ(text.find(" inf"), std::string::npos) << text;
}

TEST(Metrics, NonFiniteValuesRenderAsJsonNull) {
  Registry registry;
  registry.gauge("g_undefined").set(std::numeric_limits<double>::quiet_NaN());
  registry.gauge("g_unbounded").set(std::numeric_limits<double>::infinity());
  const std::string json = registry.render_json();
  // JSON has no NaN/Infinity literals; null keeps the document parseable.
  EXPECT_NE(json.find("\"g_undefined\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g_unbounded\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("NaN"), std::string::npos) << json;
  EXPECT_EQ(json.find("nf"), std::string::npos) << json;  // Inf / Infinity
}

TEST(Metrics, HistogramSnapshotIsInternallyConsistent) {
  Registry registry;
  Histogram& histogram =
      registry.histogram("snap_ms", std::vector<double>{1.0, 10.0});
  histogram.observe(0.5);
  histogram.observe(2.0);
  histogram.observe(99.0);
  const HistogramSnapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0}));
  // Buckets are per-bucket (non-cumulative) with the +Inf overflow last.
  ASSERT_EQ(snap.buckets,
            (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 101.5);
  EXPECT_DOUBLE_EQ(snap.mean, snap.sum / static_cast<double>(snap.count));
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
  EXPECT_LE(snap.min, snap.p50);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(Metrics, EmptyHistogramSnapshotIsAllZero) {
  Registry registry;
  const HistogramSnapshot snap =
      registry.histogram("never_ms", std::vector<double>{5.0}).snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets[0] + snap.buckets[1], 0u);
}

// ----------------------------------------------------------------- spans --

TEST(Spans, NestingBuildsPaths) {
  Tracer tracer;
  {
    Span outer("study", tracer);
    {
      Span inner("scan", tracer);
      { Span leaf("step", tracer); }
      { Span leaf("step", tracer); }
    }
    EXPECT_EQ(tracer.open_depth(), 1);
  }
  EXPECT_EQ(tracer.open_depth(), 0);
  ASSERT_EQ(tracer.nodes().size(), 3u);
  EXPECT_EQ(tracer.nodes()[0].path, "study");
  EXPECT_EQ(tracer.nodes()[0].depth, 0);
  EXPECT_EQ(tracer.nodes()[0].count, 1u);
  EXPECT_EQ(tracer.nodes()[1].path, "study/scan");
  EXPECT_EQ(tracer.nodes()[1].depth, 1);
  EXPECT_EQ(tracer.nodes()[2].path, "study/scan/step");
  EXPECT_EQ(tracer.nodes()[2].depth, 2);
  EXPECT_EQ(tracer.nodes()[2].count, 2u);  // aggregated, not duplicated
}

TEST(Spans, TimingIsMonotoneOverNesting) {
  Tracer tracer;
  {
    Span outer("outer", tracer);
    {
      Span inner("inner", tracer);
      // Burn a little time so the leaf duration is strictly positive.
      volatile double sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
      (void)sink;
    }
  }
  ASSERT_EQ(tracer.nodes().size(), 2u);
  const double outer_ms = tracer.nodes()[0].total_ms;
  const double inner_ms = tracer.nodes()[1].total_ms;
  EXPECT_GT(inner_ms, 0.0);
  // A parent fully encloses its child on the steady clock.
  EXPECT_GE(outer_ms, inner_ms);
}

TEST(Spans, SummaryRendersIndentedTree) {
  Tracer tracer;
  {
    Span outer("study", tracer);
    { Span inner("scan", tracer); }
  }
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("span summary"), std::string::npos);
  EXPECT_NE(summary.find("study"), std::string::npos);
  EXPECT_NE(summary.find("  scan"), std::string::npos);
  tracer.reset();
  EXPECT_EQ(tracer.summary(), "");
  EXPECT_TRUE(tracer.nodes().empty());
}

TEST(Spans, SiblingsAfterNestedSpanKeepTopLevelDepth) {
  Tracer tracer;
  { Span a("a", tracer); }
  { Span b("b", tracer); }
  ASSERT_EQ(tracer.nodes().size(), 2u);
  EXPECT_EQ(tracer.nodes()[1].path, "b");
  EXPECT_EQ(tracer.nodes()[1].depth, 0);
}

// ----------------------------------------------------------------- trace --

TEST(Trace, ScopeSavesAndRestoresLifo) {
  EXPECT_FALSE(current_trace().active());
  {
    TraceScope outer(TraceContext{7, 1});
    EXPECT_EQ(current_trace().trace_id, 7u);
    {
      TraceScope inner(TraceContext{8, 2});
      EXPECT_EQ(current_trace().trace_id, 8u);
      EXPECT_EQ(current_trace().probe_id, 2u);
    }
    EXPECT_EQ(current_trace().trace_id, 7u);
    EXPECT_EQ(current_trace().probe_id, 1u);
  }
  EXPECT_FALSE(current_trace().active());
}

TEST(Trace, NextTraceIdNeverReturnsZero) {
  const std::uint64_t a = next_trace_id();
  const std::uint64_t b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST(Trace, DisabledLogRecordsNothing) {
  TraceLog log;
  log.instant("x", "c", util::make_time(2018, 4, 25), 0);
  log.complete("y", "c", util::make_time(2018, 4, 25), 1.0, 0);
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(Trace, CapacityBoundsCollectionAndCountsDrops) {
  TraceLog log;
  log.set_capacity(2);
  log.enable(util::make_time(2018, 4, 24));
  for (int i = 0; i < 5; ++i) {
    log.instant("e" + std::to_string(i), "c", util::make_time(2018, 4, 25), 0);
  }
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  log.reset();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.capacity(), 2u);  // reset keeps capacity
}

TEST(Trace, CapacityIsSafeToChangeWhileCollecting) {
  // Regression: capacity_ moved under the log mutex — set_capacity() used
  // to race add() reading it. Every event must be accounted for as either
  // kept (within whatever capacity was current) or dropped.
  TraceLog log;
  log.set_capacity(64);  // the resizer only ever lowers/restores this bound
  log.enable(util::make_time(2018, 4, 24));
  constexpr int kEvents = 2000;
  std::thread resizer([&] {
    for (int i = 0; i < 200; ++i) {
      log.set_capacity(i % 2 == 0 ? 16 : 64);
      (void)log.capacity();
    }
  });
  for (int i = 0; i < kEvents; ++i) {
    log.instant("e", "c", util::make_time(2018, 4, 25), 0);
  }
  resizer.join();
  log.disable();
  EXPECT_EQ(log.events().size() + log.dropped(),
            static_cast<std::size_t>(kEvents));
  EXPECT_LE(log.events().size(), 64u);
}

TEST(Trace, ChromeTraceGolden) {
  TraceLog log;
  log.enable(util::make_time(2018, 4, 24));
  log.set_track_name(0, "vantage:Oregon");
  {
    TraceScope scope(TraceContext{7, 42});
    log.complete("ocsp.example", "net", util::make_time(2018, 4, 25), 250.0,
                 0, {{"region", "Oregon"}});
  }
  log.instant("scan-step", "scan", util::make_time(2018, 4, 25, 0, 0, 1),
              TraceLog::kControlTrack, {{"step", "1"}});
  EXPECT_EQ(
      log.render_chrome_trace(),
      "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"mustaple campaign (simulated clock)\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"vantage:Oregon\"}},\n"
      "{\"name\":\"ocsp.example\",\"cat\":\"net\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":0,\"ts\":86400000000,\"dur\":250000,"
      "\"args\":{\"trace\":7,\"probe\":42,\"region\":\"Oregon\"}},\n"
      "{\"name\":\"scan-step\",\"cat\":\"scan\",\"ph\":\"i\",\"pid\":1,"
      "\"tid\":99,\"ts\":86401000000,\"s\":\"t\","
      "\"args\":{\"step\":\"1\"}}]\n");
}

TEST(Trace, SubMillisecondSpansKeepVisibleWidth) {
  TraceLog log;
  log.enable(util::make_time(2018, 4, 24));
  log.complete("fast", "net", util::make_time(2018, 4, 24), 0.0, 0);
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].dur_us, 1);
}

// -------------------------------------------------------------- timeline --

TEST(Timeline, WindowsRecordCounterDeltas) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);

  timeline.advance_to(start);  // baseline
  registry.counter("probes_total").inc(3);
  timeline.advance_to(start + util::Duration::hours(1));  // closes window 0
  registry.counter("probes_total").inc(5);
  timeline.flush(start + util::Duration::hours(2));

  ASSERT_EQ(timeline.windows().size(), 2u);
  EXPECT_EQ(timeline.windows()[0].start.unix_seconds, start.unix_seconds);
  EXPECT_DOUBLE_EQ(
      Timeline::counter_delta(timeline.windows()[0], "probes_total", ""), 3.0);
  EXPECT_DOUBLE_EQ(
      Timeline::counter_delta(timeline.windows()[1], "probes_total", ""), 5.0);
}

TEST(Timeline, BaselineExcludesActivityBeforeStart) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);

  // Warm-up activity happens before the clock reaches `start`.
  registry.counter("probes_total").inc(100);
  timeline.advance_to(start - util::Duration::hours(12));  // before start: no-op
  timeline.advance_to(start);                              // takes the baseline
  registry.counter("probes_total").inc(2);
  timeline.flush(start + util::Duration::hours(1));

  ASSERT_EQ(timeline.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(
      Timeline::counter_delta(timeline.windows()[0], "probes_total", ""), 2.0);
}

TEST(Timeline, IdleWindowsAreSkipped) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);
  timeline.advance_to(start);
  registry.counter("probes_total").inc();
  // Jump four hours: only the first window saw activity.
  timeline.advance_to(start + util::Duration::hours(4));
  ASSERT_EQ(timeline.windows().size(), 1u);
  EXPECT_EQ(timeline.windows()[0].end.unix_seconds,
            (start + util::Duration::hours(1)).unix_seconds);
}

TEST(Timeline, SeriesAndRatioSeries) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);
  timeline.advance_to(start);

  Counter& requests = registry.counter("req_total", {{"region", "Oregon"}});
  Counter& successes = registry.counter("ok_total", {{"region", "Oregon"}});
  requests.inc(10);
  successes.inc(9);
  timeline.advance_to(start + util::Duration::hours(1));
  requests.inc(10);
  successes.inc(5);
  timeline.flush(start + util::Duration::hours(2));

  const util::Series s =
      timeline.series("req_total", {{"region", "Oregon"}});
  ASSERT_EQ(s.x.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x[0], static_cast<double>(start.unix_seconds));
  EXPECT_DOUBLE_EQ(s.y[0], 10.0);
  EXPECT_DOUBLE_EQ(s.y[1], 10.0);

  const util::Series ratio = timeline.ratio_series(
      "ok_total", "req_total", {{"region", "Oregon"}});
  ASSERT_EQ(ratio.y.size(), 2u);
  EXPECT_DOUBLE_EQ(ratio.y[0], 90.0);
  EXPECT_DOUBLE_EQ(ratio.y[1], 50.0);
}

TEST(Timeline, HistogramsContributeCountAndSumDeltas) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);
  timeline.advance_to(start);
  registry.histogram("lat_ms", std::vector<double>{10.0}).observe(4.0);
  registry.histogram("lat_ms", std::vector<double>{10.0}).observe(6.0);
  timeline.flush(start + util::Duration::hours(1));
  ASSERT_EQ(timeline.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(
      Timeline::counter_delta(timeline.windows()[0], "lat_ms_count", ""), 2.0);
  EXPECT_DOUBLE_EQ(
      Timeline::counter_delta(timeline.windows()[0], "lat_ms_sum", ""), 10.0);
}

TEST(Timeline, CsvAndJsonRender) {
  Registry registry;
  const util::SimTime start = util::make_time(2018, 4, 25);
  Timeline timeline(start, util::Duration::hours(1), registry);
  timeline.advance_to(start);
  registry.counter("probes_total", {{"region", "Oregon"}}).inc(3);
  registry.gauge("depth").set(2.5);
  timeline.flush(start + util::Duration::hours(1));

  EXPECT_EQ(timeline.render_csv(),
            "window_start_unix,window_start,window_end_unix,kind,metric,"
            "labels,value\n"
            "1524614400,2018-04-25 00:00:00,1524618000,counter,probes_total,"
            "\"{region=\"\"Oregon\"\"}\",3\n"
            "1524614400,2018-04-25 00:00:00,1524618000,gauge,depth,,2.5\n");
  EXPECT_EQ(timeline.render_json(),
            "{\"window_seconds\":3600,\"start_unix\":1524614400,"
            "\"windows\":[{\"start_unix\":1524614400,"
            "\"start\":\"2018-04-25 00:00:00\",\"end_unix\":1524618000,"
            "\"counters\":{\"probes_total{region=\\\"Oregon\\\"}\":3},"
            "\"gauges\":{\"depth\":2.5}}]}");
}

TEST(Timeline, InstallUninstallRoundTrip) {
  Registry registry;
  Timeline timeline(util::make_time(2018, 4, 25), util::Duration::hours(1),
                    registry);
  Timeline* previous = install_timeline(&timeline);
  EXPECT_EQ(installed_timeline(), &timeline);
  advance_installed_timeline(util::make_time(2018, 4, 25));
  install_timeline(previous);
  EXPECT_EQ(installed_timeline(), previous);
}

// ---------------------------------------------------------------- macros --

TEST(Macros, WriteToDefaults) {
#if MUSTAPLE_OBS_ENABLED
  Registry& registry = default_registry();
  const std::uint64_t before =
      registry.counter_value("mustaple_obs_test_macro_total");
  MUSTAPLE_COUNT("mustaple_obs_test_macro_total");
  MUSTAPLE_COUNT_N("mustaple_obs_test_macro_total", 2);
  EXPECT_EQ(registry.counter_value("mustaple_obs_test_macro_total"),
            before + 3);

  MUSTAPLE_GAUGE_MAX("mustaple_obs_test_macro_gauge", 11);
  EXPECT_GE(registry.gauge_value("mustaple_obs_test_macro_gauge"), 11.0);

  auto ring = std::make_shared<RingBufferSink>();
  default_logger().add_sink(ring);
  MUSTAPLE_LOG_WARN("test", "macro message", field("n", 1));
  default_logger().clear_sinks();
  ASSERT_EQ(ring->records().size(), 1u);
  EXPECT_EQ(ring->records().front().component, "test");
#endif
}

// -------------------------------------------------------- thread safety --

TEST(MetricsConcurrency, CountersGaugesHistogramsSurviveContention) {
  // The parallel scanner's workers hammer one shared registry; every inc()
  // and observe() must land. Totals are exact because the writes are
  // commutative — only ordering, not the sums, may vary mid-flight.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("stress_total").inc();
        registry.counter("stress_labeled_total", {{"worker", t % 2 ? "a" : "b"}})
            .inc(2);
        registry.gauge("stress_gauge").set_max(static_cast<double>(i));
        registry.histogram("stress_ms").observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.counter_value("stress_total"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.counter_value("stress_labeled_total", {{"worker", "a"}}) +
                registry.counter_value("stress_labeled_total", {{"worker", "b"}}),
            2ull * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(registry.gauge_value("stress_gauge"), kPerThread - 1);
  const Histogram* hist = registry.find_histogram("stress_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrency, FamilyCreationRacesResolveToOneCell) {
  // First-touch creation of the same (name, labels) cell from many threads
  // must yield exactly one cell, never a lost update.
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("race_total", {{"cell", std::to_string(i)}}).inc();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(registry.counter_value("race_total",
                                     {{"cell", std::to_string(i)}}),
              static_cast<std::uint64_t>(kThreads))
        << "cell " << i;
  }
}

}  // namespace
}  // namespace mustaple::obs
