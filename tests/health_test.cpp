// Tests for the pillar-8 watchdog (obs/health.hpp): invariant checks with
// transition hooks and breach accounting, SLO burn-rate evaluation over
// Timeline windows (including the insufficient-volume guard), the overall
// roll-up, and both render formats. Plain library code: compiles and passes
// under MUSTAPLE_OBS_OFF too.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "util/sim_time.hpp"

namespace mustaple::obs {
namespace {

using util::Duration;
using util::SimTime;

TEST(HealthChecks, EvaluatesCountsAndRollsUp) {
  std::atomic<bool> healthy{true};
  HealthMonitor monitor;
  monitor.add_check("test.flip", HealthSeverity::kCritical, [&healthy] {
    HealthCheckResult result;
    result.ok = healthy.load();
    if (!result.ok) result.detail = "flipped off";
    return result;
  });
  monitor.add_check("test.always_ok", HealthSeverity::kWarning,
                    [] { return HealthCheckResult{}; });

  monitor.evaluate_checks();
  EXPECT_FALSE(monitor.any_breached());
  EXPECT_FALSE(monitor.critical_breached());
  EXPECT_EQ(monitor.overall_status(), "ok");
  EXPECT_EQ(monitor.check_evaluations(), 1u);

  healthy = false;
  monitor.evaluate_checks();
  monitor.evaluate_checks();
  EXPECT_TRUE(monitor.critical_breached());
  EXPECT_EQ(monitor.overall_status(), "critical");

  const auto statuses = monitor.check_statuses();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].name, "test.flip");
  EXPECT_FALSE(statuses[0].ok);
  EXPECT_EQ(statuses[0].detail, "flipped off");
  EXPECT_EQ(statuses[0].evaluations, 3u);
  EXPECT_EQ(statuses[0].breaches, 2u);
  EXPECT_TRUE(statuses[1].ok);

  healthy = true;
  monitor.evaluate_checks();
  EXPECT_FALSE(monitor.any_breached());
  EXPECT_EQ(monitor.overall_status(), "ok");
}

TEST(HealthChecks, WarningBreachIsWarnNotCritical) {
  HealthMonitor monitor;
  monitor.add_check("test.warn", HealthSeverity::kWarning, [] {
    HealthCheckResult result;
    result.ok = false;
    return result;
  });
  monitor.evaluate_checks();
  EXPECT_TRUE(monitor.any_breached());
  EXPECT_FALSE(monitor.critical_breached());
  EXPECT_EQ(monitor.overall_status(), "warn");
}

TEST(HealthChecks, TransitionHookFiresOnlyOnStateChanges) {
  std::atomic<bool> healthy{true};
  HealthMonitor monitor;
  monitor.add_check("test.flip", HealthSeverity::kCritical, [&healthy] {
    HealthCheckResult result;
    result.ok = healthy.load();
    return result;
  });
  std::vector<std::string> events;
  monitor.set_on_transition([&events](const std::string& name,
                                      HealthSeverity severity, bool ok,
                                      const std::string&) {
    events.push_back(name + (ok ? ":recovered" : ":breached") + ":" +
                     to_string(severity));
  });

  monitor.evaluate_checks();  // ok -> ok: no event
  healthy = false;
  monitor.evaluate_checks();  // breach
  monitor.evaluate_checks();  // still breached: no event
  healthy = true;
  monitor.evaluate_checks();  // recovery

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "test.flip:breached:critical");
  EXPECT_EQ(events[1], "test.flip:recovered:critical");
}

/// Drives `requests` probes with `successes` of them succeeding into one
/// closed hour-long window ending at `end`.
void close_window(Registry& registry, Timeline& timeline, SimTime end,
                  std::uint64_t requests, std::uint64_t successes) {
  registry.counter("req_total", {{"region", "va"}}).inc(requests);
  registry.counter("ok_total", {{"region", "va"}}).inc(successes);
  timeline.advance_to(end);
}

TEST(HealthSlos, BurnRateOverTimelineWindows) {
  Registry registry;
  const SimTime start = util::make_time(2018, 4, 1);
  Timeline timeline(start, Duration::hours(1), registry);
  timeline.advance_to(start);  // take the baseline snapshot

  HealthMonitor monitor;
  HealthMonitor::SloRule rule;
  rule.name = "availability";
  rule.numerator = "ok_total";
  rule.denominator = "req_total";
  rule.labels = {{"region", "va"}};
  rule.target_pct = 90.0;
  rule.lookbacks = {Duration::hours(1), Duration::hours(6)};
  rule.min_denominator = 10;
  monitor.add_slo(rule);

  // Five perfect hours, then one bad hour at 50% availability: the 1h
  // lookback sees only the outage and breaches; the 6h lookback absorbs it
  // (550/600 ~ 91.7%) and stays ok.
  for (int h = 1; h <= 5; ++h) {
    close_window(registry, timeline, start + Duration::hours(h), 100, 100);
  }
  close_window(registry, timeline, start + Duration::hours(6), 100, 50);
  monitor.evaluate_slos(timeline);

  const auto slos = monitor.slo_statuses();
  ASSERT_EQ(slos.size(), 2u);
  EXPECT_EQ(slos[0].lookback_seconds, 3600);
  EXPECT_TRUE(slos[0].evaluated);
  EXPECT_FALSE(slos[0].ok);
  EXPECT_DOUBLE_EQ(slos[0].value_pct, 50.0);
  EXPECT_EQ(slos[0].numerator, 50u);
  EXPECT_EQ(slos[0].denominator, 100u);
  EXPECT_EQ(slos[1].lookback_seconds, 6 * 3600);
  EXPECT_TRUE(slos[1].evaluated);
  EXPECT_TRUE(slos[1].ok);
  EXPECT_EQ(slos[1].denominator, 600u);
  EXPECT_TRUE(monitor.critical_breached());  // SloRule defaults to critical

  // A recovered hour rolls the 1h lookback back to ok.
  close_window(registry, timeline, start + Duration::hours(7), 100, 100);
  monitor.evaluate_slos(timeline);
  EXPECT_FALSE(monitor.any_breached());
}

TEST(HealthSlos, InsufficientVolumeNeverBreaches) {
  Registry registry;
  const SimTime start = util::make_time(2018, 4, 1);
  Timeline timeline(start, Duration::hours(1), registry);
  timeline.advance_to(start);

  HealthMonitor monitor;
  HealthMonitor::SloRule rule;
  rule.name = "availability";
  rule.numerator = "ok_total";
  rule.denominator = "req_total";
  rule.labels = {{"region", "va"}};
  rule.target_pct = 90.0;
  rule.lookbacks = {Duration::hours(1)};
  rule.min_denominator = 10;
  monitor.add_slo(rule);

  // 0/5 would be a 0% hour — but five probes are below min_denominator.
  close_window(registry, timeline, start + Duration::hours(1), 5, 0);
  monitor.evaluate_slos(timeline);

  const auto slos = monitor.slo_statuses();
  ASSERT_EQ(slos.size(), 1u);
  EXPECT_FALSE(slos[0].evaluated);
  EXPECT_TRUE(slos[0].ok);
  EXPECT_FALSE(monitor.any_breached());
  EXPECT_EQ(monitor.slo_evaluations(), 1u);
}

TEST(HealthSlos, WindowHookDrivesEvaluation) {
  Registry registry;
  const SimTime start = util::make_time(2018, 4, 1);
  Timeline timeline(start, Duration::hours(1), registry);
  timeline.advance_to(start);

  HealthMonitor monitor;
  HealthMonitor::SloRule rule;
  rule.name = "availability";
  rule.numerator = "ok_total";
  rule.denominator = "req_total";
  rule.labels = {{"region", "va"}};
  rule.lookbacks = {Duration::hours(1)};
  rule.min_denominator = 10;
  monitor.add_slo(rule);
  timeline.set_window_hook(
      [&](const TimelineWindow&) { monitor.evaluate_slos(timeline); });

  close_window(registry, timeline, start + Duration::hours(1), 100, 10);
  EXPECT_EQ(monitor.slo_evaluations(), 1u);
  EXPECT_TRUE(monitor.critical_breached());
  timeline.set_window_hook(nullptr);
}

TEST(HealthRender, JsonAndTextCarryChecksAndSlos) {
  HealthMonitor monitor;
  monitor.add_check("test.bad", HealthSeverity::kWarning, [] {
    HealthCheckResult result;
    result.ok = false;
    result.detail = "said \"no\"";  // exercises JSON escaping
    return result;
  });
  monitor.evaluate_checks();

  const std::string json = monitor.render_json();
  EXPECT_NE(json.find("\"schema\":\"mustaple-health/1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.bad\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"said \\\"no\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"breaches\":1"), std::string::npos);

  const std::string text = monitor.render_text();
  EXPECT_EQ(text.rfind("status: warn\n", 0), 0u);
  EXPECT_NE(text.find("check test.bad [warning] BREACHED"), std::string::npos);
}

}  // namespace
}  // namespace mustaple::obs
